#!/usr/bin/env python3
"""Knob sensitivity screening before tuning.

Gradient-descent epoch cost is 2 x knobs, so knowing which knobs actually
move your metric pays for itself immediately.  This example ranks the
full Listing 1 interface by IPC impact on both cores and shows the
response curve of the top lever.

Usage::

    python examples/knob_sensitivity.py [metric]
"""

import sys

from repro.core.framework import DEFAULT_KNOB_VALUES
from repro.core.platform import PerformancePlatform
from repro.core.report import ascii_chart
from repro.core.usecases.sensitivity import SensitivityAnalysis
from repro.sim import LARGE_CORE, SMALL_CORE
from repro.tuning.knobs import default_cloning_space


def screen(core, metric: str):
    analysis = SensitivityAnalysis(
        platform=PerformancePlatform(core, instructions=8_000),
        knob_space=default_cloning_space(),
        baseline=dict(DEFAULT_KNOB_VALUES),
        metric=metric,
    )
    ranking = analysis.run()
    print(f"\n=== {core.name} core, metric: {metric} ===")
    print(SensitivityAnalysis.format_ranking(ranking, metric=metric))
    return ranking


def main() -> None:
    metric = sys.argv[1] if len(sys.argv) > 1 else "ipc"
    for core in (SMALL_CORE, LARGE_CORE):
        ranking = screen(core, metric)
        top = ranking[0]
        values = [v for v, _ in top.samples]
        curve = [m for _, m in top.samples]
        print()
        print(ascii_chart(
            {top.knob: curve}, width=48, height=8,
            title=(f"top lever on {core.name}: {top.knob} "
                   f"(swing {top.swing:.3f}; x = {values})"),
        ))


if __name__ == "__main__":
    main()
