#!/usr/bin/env python3
"""Bottleneck analysis — the conclusion's future-work use case.

Sweeps one workload characteristic at a time (memory footprint, branch
randomness, dependency distance) and reports where each starts to
bottleneck the core, comparing the Small and Large configurations.

Usage::

    python examples/bottleneck_analysis.py
"""

from repro.core.platform import PerformancePlatform
from repro.core.usecases.bottleneck import BottleneckAnalysis
from repro.sim import LARGE_CORE, SMALL_CORE

BASE_CONFIG = dict(
    ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1, LD=3, LW=1, SD=1, SW=1,
    REG_DIST=6, MEM_SIZE=16, MEM_STRIDE=64, MEM_TEMP1=1, MEM_TEMP2=1,
    B_PATTERN=0.1,
)

SWEEPS = [
    ("MEM_SIZE", [2, 8, 32, 128, 512, 2048], "memory footprint (KB)"),
    ("B_PATTERN", [0.1, 0.3, 0.5, 0.7, 0.9], "branch randomness"),
    ("REG_DIST", [1, 2, 4, 6, 8, 10], "dependency distance"),
]


def sweep_core(core) -> None:
    print(f"\n=== {core.name} core ===")
    platform = PerformancePlatform(core, instructions=10_000)
    for knob, values, label in SWEEPS:
        analysis = BottleneckAnalysis(
            platform=platform,
            base_config=BASE_CONFIG,
            knob=knob,
            values=values,
            metric="ipc",
        )
        analysis.run()
        curve = analysis.response_curve()
        knee = analysis.knee()
        print(f"\n{label} -> IPC")
        for value, ipc in curve:
            marker = "  <- knee" if value == knee.value else ""
            print(f"  {value:>8} : {ipc:5.2f} {'*' * int(ipc * 10)}{marker}")


def main() -> None:
    for core in (SMALL_CORE, LARGE_CORE):
        sweep_core(core)


if __name__ == "__main__":
    main()
