#!/usr/bin/env python3
"""Generation-model comparison: abstract knobs vs instruction level.

Section II-B1 of the paper contrasts the abstract workload model (few
well-defined knobs, MicroGrad's choice) with the instruction-level model
(GeST: per-instruction genomes tuned by a GA).  This example runs both on
the same worst-case-IPC task with an equal evaluation budget and shows
why the paper picked the abstract model.

Usage::

    python examples/instruction_level_stress.py
"""

from repro import MicroGrad, MicroGradConfig
from repro.codegen.instlevel import (
    FixedCodeParams,
    GenomeEvaluator,
    InstructionLevelSpace,
)
from repro.core.platform import PerformancePlatform
from repro.sim import LARGE_CORE
from repro.tuning.brute import CLASS_KNOB_NAMES
from repro.tuning.genetic import GAParams
from repro.tuning.instlevel_ga import InstructionLevelGeneticTuner
from repro.tuning.loss import StressLoss


def run_abstract_model():
    config = MicroGradConfig(
        use_case="stress",
        metrics=("ipc",),
        core="large",
        tuner="gd",
        knobs=CLASS_KNOB_NAMES,
        fixed_knobs={"REG_DIST": 10, "MEM_SIZE": 16, "B_PATTERN": 0.1,
                     "MUL": 0, "FADDD": 0, "BNE": 0, "LW": 0, "SW": 0},
        max_epochs=25,
        loop_size=300,
        instructions=8_000,
        seed=0,
    )
    return MicroGrad(config).run()


def run_instruction_level(evaluation_budget: int):
    platform = PerformancePlatform(LARGE_CORE, instructions=8_000)
    space = InstructionLevelSpace(length=300)
    evaluator = GenomeEvaluator(
        platform.evaluate,
        FixedCodeParams(dependency_distance=10,
                        mem_footprint_bytes=16 * 1024,
                        branch_random_ratio=0.1),
    )
    generations = max(1, evaluation_budget // GAParams().population_size)
    tuner = InstructionLevelGeneticTuner(
        space, evaluator, StressLoss("ipc"),
        GAParams(max_epochs=generations), seed=0,
    )
    return tuner.run()


def main() -> None:
    abstract = run_abstract_model()
    budget = abstract.tuning.requested_evaluations
    instruction_level = run_instruction_level(budget)

    print("worst-case IPC hunt on the Large core, equal evaluation budget")
    print(f"  abstract model + GD : IPC {abstract.metrics['ipc']:.3f} "
          f"({budget} evaluations over {len(CLASS_KNOB_NAMES)} knobs)")
    print(f"  instr-level  + GA   : IPC "
          f"{instruction_level.best_metrics['ipc']:.3f} "
          f"({instruction_level.requested_evaluations} evaluations over "
          f"300-gene genomes)")

    genome = instruction_level.best_config["GENOME"]
    print("\nfirst 20 genes of the best instruction-level genome:")
    print("  " + " ".join(genome[:20]))
    print("\nabstract-model winning knobs:")
    print(f"  {abstract.knobs}")


if __name__ == "__main__":
    main()
