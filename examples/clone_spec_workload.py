#!/usr/bin/env python3
"""Workload cloning walkthrough (the Fig 2/3 workflow).

Characterizes a SPEC-like reference application, clones it with the
gradient-descent tuner, and prints the paper's radar-plot numbers: the
per-metric measured/target ratios.  Optionally clones per simpoint.

Usage::

    python examples/clone_spec_workload.py [benchmark] [--simpoints]

Benchmarks: astar bzip2 gcc hmmer libquantum mcf sjeng xalancbmk
"""

import sys

from repro import MicroGrad, MicroGradConfig
from repro.workloads import benchmark_names, get_benchmark


def clone_whole_application(benchmark: str) -> None:
    config = MicroGradConfig(
        use_case="cloning",
        application=benchmark,
        core="large",
        max_epochs=40,
        seed=0,
    )
    mg = MicroGrad(config)
    result = mg.run()

    print(result.summary())
    print(f"\nradar-plot ratios for {benchmark} (1.0 = perfect clone):")
    for metric, ratio in result.accuracy.items():
        bar = "#" * int(min(ratio, 1.5) * 40)
        print(f"  {metric:<16} {ratio:5.3f}  {bar}")
    print(f"\nclone knobs: {result.knobs}")


def clone_per_simpoint(benchmark: str) -> None:
    config = MicroGradConfig(
        use_case="cloning",
        application=benchmark,
        core="large",
        max_epochs=15,
        use_simpoints=True,
        seed=0,
    )
    results = MicroGrad(config).clone_simpoints(max_k=4)
    print(f"{benchmark}: {len(results)} simpoints")
    for n, result in enumerate(results):
        weight = result.knobs["_simpoint_weight"]
        phase = result.knobs["_simpoint_phase"]
        print(
            f"  simpoint {n} (phase {phase}, weight {weight:.2f}): "
            f"mean accuracy {result.mean_accuracy:.3f} in "
            f"{result.tuning.epochs} epochs"
        )


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    benchmark = args[0] if args else "bzip2"
    if benchmark not in benchmark_names():
        raise SystemExit(f"unknown benchmark {benchmark!r}; "
                         f"pick from {benchmark_names()}")
    print(get_benchmark(benchmark).description)
    if "--simpoints" in sys.argv:
        clone_per_simpoint(benchmark)
    else:
        clone_whole_application(benchmark)


if __name__ == "__main__":
    main()
