#!/usr/bin/env python3
"""Power virus generation (the Fig 6 / Table III workflow).

Maximizes dynamic power on the Large core over the instruction-fraction
knobs, then prints the winning mix next to Table III's distribution and
the per-component power breakdown.

Usage::

    python examples/power_virus.py
"""

from repro import MicroGrad, MicroGradConfig
from repro.codegen import generate_test_case
from repro.power import PowerModel
from repro.sim import LARGE_CORE, Simulator

MIX_KNOBS = ("ADD", "MUL", "FADDD", "FMULD", "BEQ", "BNE",
             "LD", "LW", "SD", "SW")

#: Table III of the paper: the GD power virus instruction distribution.
TABLE_III = {
    "integer": 0.057, "float": 0.228, "branch": 0.143,
    "load": 0.228, "store": 0.328,
}


def main() -> None:
    config = MicroGradConfig(
        use_case="stress",
        metrics=("dynamic_power",),
        maximize=True,
        core="large",
        tuner="gd",
        max_epochs=25,
        knobs=MIX_KNOBS,
        fixed_knobs={"REG_DIST": 10, "B_PATTERN": 0.1, "MEM_SIZE": 16},
        seed=0,
    )
    result = MicroGrad(config).run()

    print(result.summary())
    print(f"\npeak dynamic power: {result.metrics['dynamic_power']:.2f} W")

    print("\ninstruction mix vs Table III of the paper:")
    mix = result.program.group_fractions()
    print(f"  {'class':<8} {'this run':>9} {'Table III':>10}")
    for group in ("integer", "float", "branch", "load", "store"):
        print(f"  {group:<8} {mix.get(group, 0.0):>8.1%} "
              f"{TABLE_III[group]:>9.1%}")

    # Per-component power breakdown of the winning virus.
    program = generate_test_case(result.knobs)
    stats = Simulator(LARGE_CORE).run(program)
    report = PowerModel(LARGE_CORE).estimate(stats)
    print("\npower breakdown (W):")
    for component, watts in sorted(
        report.components.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {component:<14} {watts:6.3f}")
    print(f"  {'leakage':<14} {report.leakage_w:6.3f}")


if __name__ == "__main__":
    main()
