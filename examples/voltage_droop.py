#!/usr/bin/env python3
"""Voltage-droop (dI/dt) stress testing — a future-work use case.

The paper's conclusion singles out "other forms of stress testing like
voltage droops" as a natural MicroGrad extension.  This example wires the
:class:`~repro.core.platform.VoltageDroopPlatform` (candidate test case
alternating with a quiet baseline through a first-order PDN model) into
the standard stress-testing flow and maximizes the supply droop.

Usage::

    python examples/voltage_droop.py
"""

from repro import MicroGrad, MicroGradConfig
from repro.core.platform import VoltageDroopPlatform
from repro.core.report import ascii_chart
from repro.sim import LARGE_CORE

MIX_KNOBS = ("ADD", "MUL", "FADDD", "FMULD", "BEQ", "BNE",
             "LD", "LW", "SD", "SW")


def main() -> None:
    platform = VoltageDroopPlatform(LARGE_CORE, instructions=8_000)
    print(f"baseline (quiet phase) power: {platform.baseline_power_w:.3f} W")

    config = MicroGradConfig(
        use_case="stress",
        metrics=("droop_mv",),
        maximize=True,
        core="large",
        max_epochs=15,
        knobs=MIX_KNOBS,
        fixed_knobs={"REG_DIST": 10, "MEM_SIZE": 16, "B_PATTERN": 0.0},
        seed=0,
    )
    result = MicroGrad(config, platform=platform).run()

    print(result.summary())
    print(f"\npeak droop        : {result.metrics['droop_mv']:.2f} mV")
    print(f"power swing       : {result.metrics['power_swing_w']:.2f} W")
    print(f"current ramp      : {result.metrics['didt_a_per_ns']:.2f} A/ns")
    print("\ndroop-virus instruction mix:")
    for group, fraction in sorted(result.program.group_fractions().items()):
        print(f"  {group:<8} {fraction:6.1%}")

    curve = [-r.best_loss for r in result.tuning.history]
    print()
    print(ascii_chart({"droop_mv": curve}, width=50, height=10,
                      title="best droop vs tuning epoch"))


if __name__ == "__main__":
    main()
