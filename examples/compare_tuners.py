#!/usr/bin/env python3
"""Tuner shoot-out: gradient descent vs genetic algorithm vs random.

Runs the same worst-case-IPC stress task with all three tuners and
prints best-so-far loss curves and the evaluation-cost accounting the
paper highlights (2 x knobs per GD epoch vs population size per GA
epoch).

Usage::

    python examples/compare_tuners.py
"""

from repro import MicroGrad, MicroGradConfig

MIX_KNOBS = ("ADD", "MUL", "FADDD", "FMULD", "BEQ", "BNE",
             "LD", "LW", "SD", "SW")


def run(tuner: str, max_epochs: int):
    config = MicroGradConfig(
        use_case="stress",
        metrics=("ipc",),
        core="large",
        tuner=tuner,
        max_epochs=max_epochs,
        knobs=MIX_KNOBS,
        loop_size=300,
        instructions=8_000,
        seed=1,
    )
    return MicroGrad(config).run()


def main() -> None:
    results = {name: run(name, 12) for name in ("gd", "ga", "random")}

    print(f"{'tuner':<8} {'best IPC':>9} {'epochs':>7} "
          f"{'evals':>7} {'unique':>7}")
    for name, result in results.items():
        tuning = result.tuning
        print(
            f"{name:<8} {result.metrics['ipc']:>9.3f} {tuning.epochs:>7} "
            f"{tuning.requested_evaluations:>7} "
            f"{tuning.unique_evaluations:>7}"
        )

    print("\nbest-so-far loss per epoch (lower = worse IPC found):")
    for name, result in results.items():
        curve = " ".join(f"{v:5.2f}" for v in result.tuning.loss_curve())
        print(f"  {name:<8} {curve}")

    gd = results["gd"].tuning
    ga = results["ga"].tuning
    per_epoch_gd = gd.requested_evaluations / gd.epochs
    per_epoch_ga = ga.requested_evaluations / ga.epochs
    print(
        f"\nevaluations per epoch: GD {per_epoch_gd:.0f} vs GA "
        f"{per_epoch_ga:.0f} ({per_epoch_ga / per_epoch_gd:.1f}x more "
        f"work per GA epoch — the paper's 2.5x cost argument)"
    )


if __name__ == "__main__":
    main()
