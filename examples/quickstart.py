#!/usr/bin/env python3
"""Quickstart: generate an IPC stress test in ~30 lines.

Runs the stress-testing use case on the Large core, tuning only the ten
instruction-fraction knobs (the paper's compute-focused scenario), and
prints the resulting worst-case test case.

Usage::

    python examples/quickstart.py
"""

from repro import MicroGrad, MicroGradConfig

MIX_KNOBS = ("ADD", "MUL", "FADDD", "FMULD", "BEQ", "BNE",
             "LD", "LW", "SD", "SW")


def main() -> None:
    config = MicroGradConfig(
        use_case="stress",
        metrics=("ipc",),          # stress metric: worst-case performance
        maximize=False,            # minimize IPC
        core="large",
        tuner="gd",
        max_epochs=15,
        knobs=MIX_KNOBS,
        seed=0,
    )
    result = MicroGrad(config).run()

    print(result.summary())
    print(f"\nworst-case IPC found: {result.metrics['ipc']:.3f}")
    print("\ninstruction mix of the stress test:")
    for group, fraction in sorted(result.program.group_fractions().items()):
        print(f"  {group:<8} {fraction:6.1%}")
    print("\nfirst lines of the generated test case:")
    print("\n".join(result.assembly.splitlines()[:12]))


if __name__ == "__main__":
    main()
