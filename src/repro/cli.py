"""Command-line interface: ``micrograd <command>``.

Commands:
    clone         run workload cloning from a config file or flags
    stress        run stress testing
    characterize  print a reference workload's characteristics
    simpoints     select simpoints for a reference workload
    cores         list the available core configurations
    serve         run a persistent multi-tenant evaluation cluster
    worker        serve evaluation jobs for a backend=dist coordinator
    status        show live cluster status of a backend=dist coordinator
    lint          run the invariant lint suite (repro.analysis)
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.core.config import MicroGradConfig
from repro.core.framework import MicroGrad
from repro.exec.backend import BACKEND_NAMES
from repro.sim.config import LARGE_CORE, SMALL_CORE, core_by_name
from repro.workloads.characteristics import (
    characterize_workload,
    format_characteristics,
)
from repro.workloads.simpoint import select_simpoints, workload_bbv_trace
from repro.workloads.spec import benchmark_names, get_benchmark


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", help="JSON configuration file")
    parser.add_argument("--core", default="large", choices=["small", "large"])
    parser.add_argument("--tuner", default="gd", choices=["gd", "ga", "random"])
    parser.add_argument("--max-epochs", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", help="directory to save the result into")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="evaluation worker processes (1 serial, 0 all cores)",
    )
    parser.add_argument(
        "--backend", default=None, choices=list(BACKEND_NAMES),
        help="evaluation execution backend (default: auto)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent evaluation result cache directory",
    )
    parser.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="cap the result cache at N entries (LRU compaction)",
    )
    parser.add_argument(
        "--dist-addr", default=None, metavar="HOST:PORT",
        help="external persistent cluster ('serve' command) this run "
             "joins as a client session",
    )
    parser.add_argument(
        "--dist-workers", type=int, default=None, metavar="N",
        help="local worker processes the dist backend spawns "
             "(0: only external workers); dead ones are respawned",
    )
    parser.add_argument(
        "--dist-lease-timeout", type=float, default=None, metavar="S",
        help="seconds a leased dist job may stay unresolved before the "
             "coordinator reschedules it (default: coordinator's; set "
             "above the worst-case single-job runtime)",
    )
    parser.add_argument(
        "--dist-priority", type=float, default=None, metavar="W",
        help="fair-share weight of this run's session on a shared "
             "cluster (default 1.0; a weight-2 session gets twice the "
             "dispatch share of a weight-1 one)",
    )
    parser.add_argument(
        "--dist-secret", default=None, metavar="SECRET",
        help="shared secret of a cluster started with 'serve "
             "--serve-secret' (default: $REPRO_DIST_SECRET)",
    )
    parser.add_argument(
        "--batch-group-min", type=int, default=None, metavar="N",
        help="smallest evaluation chunk shipped to a worker when the "
             "platform supports generation batching (chunks align to "
             "equivalence-group boundaries; 1 restores pure per-jobs "
             "chunking)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the run's merged metrics report (stage time "
             "breakdown, engine-path and cache counters across every "
             "worker) as JSON to FILE",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-epoch tuning progress (best loss, configs/s, "
             "cache-hit rate)",
    )


def _execution_overrides(args: argparse.Namespace) -> dict:
    """The --jobs/--backend/--cache-*/--dist-* flags explicitly set."""
    overrides = {}
    for flag in ("jobs", "backend", "cache_dir", "cache_max_entries",
                 "dist_addr", "dist_workers", "dist_lease_timeout",
                 "dist_priority", "dist_secret",
                 "batch_group_min", "metrics_out"):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[flag] = value
    return overrides


def _config_from(args: argparse.Namespace, **kwargs) -> MicroGradConfig:
    """Build the run config from a JSON file or flags, plus exec flags."""
    overrides = _execution_overrides(args)
    if args.config:
        config = MicroGradConfig.from_json(args.config)
        return replace(config, **overrides) if overrides else config
    kwargs.update(overrides)
    return MicroGradConfig(**kwargs)


def _enable_progress(args: argparse.Namespace) -> None:
    """Turn on per-epoch tuning progress lines for --progress runs."""
    if not getattr(args, "progress", False):
        return
    import logging

    logger = logging.getLogger("repro.tuning.progress")
    logger.setLevel(logging.INFO)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)


def _run_and_report(config: MicroGradConfig, out_dir: str | None) -> int:
    mg = MicroGrad(config)
    try:
        result = mg.run()
    finally:
        mg.close()
    print(result.summary())
    print(json.dumps(result.metrics, indent=2))
    if config.metrics_out:
        print(f"metrics report written to {config.metrics_out}")
    if out_dir:
        path = result.save(out_dir)
        print(f"saved to {path}")
    return 0


def _cmd_clone(args: argparse.Namespace) -> int:
    _enable_progress(args)
    config = _config_from(
        args,
        use_case="cloning",
        application=args.application,
        core=args.core,
        tuner=args.tuner,
        max_epochs=args.max_epochs,
        seed=args.seed,
    )
    return _run_and_report(config, args.out)


def _cmd_stress(args: argparse.Namespace) -> int:
    _enable_progress(args)
    config = _config_from(
        args,
        use_case="stress",
        metrics=(args.metric,),
        maximize=args.maximize,
        core=args.core,
        tuner=args.tuner,
        max_epochs=args.max_epochs,
        seed=args.seed,
        with_power="power" in args.metric,
    )
    return _run_and_report(config, args.out)


def _cmd_characterize(args: argparse.Namespace) -> int:
    workload = get_benchmark(args.application)
    report = characterize_workload(workload, core_by_name(args.core))
    print(format_characteristics(report))
    return 0


def _cmd_simpoints(args: argparse.Namespace) -> int:
    workload = get_benchmark(args.application)
    bbvs, labels = workload_bbv_trace(workload, seed=args.seed)
    for sp in select_simpoints(bbvs, max_k=args.max_k, seed=args.seed):
        print(
            f"interval {sp.interval:3d}  weight {sp.weight:.3f}  "
            f"phase {labels[sp.interval]}"
        )
    return 0


def _cmd_cores(_args: argparse.Namespace) -> int:
    for core in (SMALL_CORE, LARGE_CORE):
        print(json.dumps(core.describe(), indent=2))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.dist.worker import WORKER_HEARTBEAT_S, run_worker

    stop = threading.Event()
    try:
        # SIGTERM drains gracefully: finish the job in hand, send its
        # result, then disconnect — its lease never needs rescheduling.
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
    except ValueError:  # pragma: no cover — not the main thread
        pass
    print(f"worker joining coordinator at {args.addr}", flush=True)
    executed = run_worker(
        args.addr,
        name=args.name,
        cache_dir=args.cache_dir,
        cache_max_entries=args.cache_max_entries,
        connect_retry_s=args.connect_retry,
        max_jobs=args.max_jobs,
        heartbeat_s=(WORKER_HEARTBEAT_S if args.heartbeat is None
                     else args.heartbeat),
        secret=args.secret,
        stop=stop,
    )
    print(f"worker done ({executed} jobs)", flush=True)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from repro.dist.coordinator import Coordinator
    from repro.dist.worker import WorkerPool

    secret = (args.serve_secret
              or os.environ.get("REPRO_DIST_SECRET") or None)
    host, _, port = args.addr.partition(":")
    coordinator = Coordinator(
        host=host or "127.0.0.1",
        port=int(port or 0),
        secret=secret,
        **({} if args.lease_timeout is None
           else {"lease_timeout_s": args.lease_timeout}),
    )
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except ValueError:  # pragma: no cover — not the main thread
            pass
    bound = coordinator.start()
    auth = "secured (HMAC challenge)" if secret else "open (no secret)"
    print(f"serving evaluation cluster on {bound} [{auth}]", flush=True)
    print("clients join with --dist-addr, workers with "
          "'repro.cli worker --addr'", flush=True)
    pool = None
    if args.workers:
        pool = WorkerPool(
            bound, args.workers,
            cache_dir=args.cache_dir,
            cache_max_entries=args.cache_max_entries,
            secret=secret,
        )
        pool.start()
        print(f"started {args.workers} local workers", flush=True)
    try:
        while not stop.wait(0.5):
            pass
    finally:
        if pool is not None:
            pool.stop()
        coordinator.shutdown()
    print("cluster shut down", flush=True)
    return 0


def _cmd_droop(args: argparse.Namespace) -> int:
    from repro.core.platform import VoltageDroopPlatform

    _enable_progress(args)
    config = _config_from(
        args,
        use_case="stress",
        metrics=("droop_mv",),
        maximize=True,
        core=args.core,
        tuner=args.tuner,
        max_epochs=args.max_epochs,
        knobs=("ADD", "MUL", "FADDD", "FMULD", "BEQ", "BNE",
               "LD", "LW", "SD", "SW"),
        seed=args.seed,
    )
    platform = VoltageDroopPlatform(core_by_name(args.core))
    mg = MicroGrad(config, platform=platform)
    try:
        result = mg.run()
    finally:
        mg.close()
    print(result.summary())
    print(f"peak droop : {result.metrics['droop_mv']:.2f} mV")
    print(f"power swing: {result.metrics['power_swing_w']:.2f} W")
    if args.out:
        print(f"saved to {result.save(args.out)}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.dist.status import fetch_cluster_status
    from repro.obs import format_cluster_status

    report = fetch_cluster_status(
        args.addr, timeout=args.timeout, retries=args.retries,
        secret=args.secret,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_cluster_status(report))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.core.framework import DEFAULT_KNOB_VALUES
    from repro.core.platform import PerformancePlatform
    from repro.core.usecases.sensitivity import SensitivityAnalysis
    from repro.tuning.knobs import default_cloning_space

    analysis = SensitivityAnalysis(
        platform=PerformancePlatform(core_by_name(args.core),
                                     instructions=args.instructions),
        knob_space=default_cloning_space(),
        baseline=dict(DEFAULT_KNOB_VALUES),
        metric=args.metric,
    )
    ranking = analysis.run()
    print(SensitivityAnalysis.format_ranking(ranking, metric=args.metric))
    return 0


def _cmd_bottleneck(args: argparse.Namespace) -> int:
    from repro.core.framework import DEFAULT_KNOB_VALUES
    from repro.core.platform import PerformancePlatform
    from repro.core.usecases.bottleneck import BottleneckAnalysis
    from repro.tuning.knobs import default_cloning_space

    space = default_cloning_space()
    try:
        knob = next(k for k in space.knobs if k.name == args.knob)
    except StopIteration:
        raise SystemExit(f"unknown knob {args.knob!r}; "
                         f"choose from {space.names}")
    analysis = BottleneckAnalysis(
        platform=PerformancePlatform(core_by_name(args.core),
                                     instructions=args.instructions),
        base_config=dict(DEFAULT_KNOB_VALUES),
        knob=args.knob,
        values=list(knob.values),
        metric=args.metric,
    )
    analysis.run()
    for value, metric in analysis.response_curve():
        print(f"{args.knob}={value:<8g} {args.metric}={metric:.4f}")
    knee = analysis.knee()
    print(f"knee at {args.knob}={knee.value:g}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import repro
    from pathlib import Path

    from repro.analysis import (
        all_checkers,
        format_report,
        report_to_dict,
        run_lint,
    )

    if args.list_rules:
        for checker in all_checkers():
            print(f"{checker.name:<16} {checker.description}")
        return 0
    paths = args.paths or [str(Path(repro.__file__).parent)]
    try:
        report = run_lint(paths, rules=args.rule or None)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.out:
        Path(args.out).write_text(
            json.dumps(report_to_dict(report), indent=2) + "\n",
            encoding="utf-8",
        )
    if args.json:
        print(json.dumps(report_to_dict(report), indent=2))
    else:
        print(format_report(report))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="micrograd",
        description="Workload cloning and stress testing framework",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    clone = sub.add_parser("clone", help="clone a reference application")
    _add_common(clone)
    clone.add_argument("--application", choices=benchmark_names(),
                       help="reference workload to clone")
    clone.set_defaults(func=_cmd_clone)

    stress = sub.add_parser("stress", help="generate a stress test")
    _add_common(stress)
    stress.add_argument("--metric", default="ipc")
    stress.add_argument("--maximize", action="store_true")
    stress.set_defaults(func=_cmd_stress)

    char = sub.add_parser("characterize", help="characterize a workload")
    char.add_argument("--application", required=True, choices=benchmark_names())
    char.add_argument("--core", default="large", choices=["small", "large"])
    char.set_defaults(func=_cmd_characterize)

    simp = sub.add_parser("simpoints", help="select simpoints")
    simp.add_argument("--application", required=True, choices=benchmark_names())
    simp.add_argument("--max-k", type=int, default=4)
    simp.add_argument("--seed", type=int, default=0)
    simp.set_defaults(func=_cmd_simpoints)

    cores = sub.add_parser("cores", help="list core configurations")
    cores.set_defaults(func=_cmd_cores)

    serve = sub.add_parser(
        "serve",
        help="run a persistent multi-tenant evaluation cluster",
    )
    serve.add_argument("--addr", required=True, metavar="HOST:PORT",
                       help="address the coordinator binds (clients "
                            "point --dist-addr here)")
    serve.add_argument("--serve-secret", default=None, metavar="SECRET",
                       help="require clients and workers to answer an "
                            "HMAC challenge derived from SECRET "
                            "(default: $REPRO_DIST_SECRET; never sent "
                            "over the wire)")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="also keep N local worker processes alive "
                            "(default 0: workers join via the 'worker' "
                            "command)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared cache directory handed to local "
                            "workers (on-disk trace-artifact store)")
    serve.add_argument("--cache-max-entries", type=int, default=None,
                       metavar="N", help="artifact store entry cap")
    serve.add_argument("--lease-timeout", type=float, default=None,
                       metavar="S",
                       help="seconds a leased job may stay unresolved "
                            "before rescheduling (default: "
                            "coordinator's)")
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="serve evaluation jobs for a backend=dist coordinator",
    )
    worker.add_argument("--addr", required=True, metavar="HOST:PORT",
                        help="coordinator address to join")
    worker.add_argument("--name", default=None,
                        help="worker name shown in coordinator logs")
    worker.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared cache directory (enables the "
                             "on-disk trace-artifact store)")
    worker.add_argument("--cache-max-entries", type=int, default=None,
                        metavar="N", help="artifact store entry cap")
    worker.add_argument("--connect-retry", type=float, default=10.0,
                        metavar="S", help="seconds to retry the initial "
                                          "connect (default 10)")
    worker.add_argument("--heartbeat", type=float, default=None,
                        metavar="S",
                        help="ping interval proving liveness mid-job "
                             "(default 2; 0 falls back to the v1 "
                             "idle-polling protocol)")
    worker.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="exit after N jobs (default: run until "
                             "the coordinator shuts down)")
    worker.add_argument("--secret", default=None, metavar="SECRET",
                        help="shared secret of a secured coordinator "
                             "(default: $REPRO_DIST_SECRET)")
    worker.set_defaults(func=_cmd_worker)

    status = sub.add_parser(
        "status",
        help="show live cluster status of a backend=dist coordinator",
    )
    status.add_argument("addr", metavar="HOST:PORT",
                        help="coordinator address to query")
    status.add_argument("--timeout", type=float, default=10.0, metavar="S",
                        help="seconds to wait for the reply (default 10)")
    status.add_argument("--retries", type=int, default=0, metavar="N",
                        help="extra attempts after a timeout or "
                             "connection failure (default 0)")
    status.add_argument("--secret", default=None, metavar="SECRET",
                        help="shared secret of a secured coordinator "
                             "(default: $REPRO_DIST_SECRET)")
    status.add_argument("--json", action="store_true",
                        help="print the raw report as JSON")
    status.set_defaults(func=_cmd_status)

    droop = sub.add_parser("droop", help="generate a voltage-droop virus")
    _add_common(droop)
    droop.set_defaults(func=_cmd_droop)

    sens = sub.add_parser("sensitivity", help="rank knobs by metric impact")
    sens.add_argument("--core", default="large", choices=["small", "large"])
    sens.add_argument("--metric", default="ipc")
    sens.add_argument("--instructions", type=int, default=8_000)
    sens.set_defaults(func=_cmd_sensitivity)

    bottleneck = sub.add_parser("bottleneck", help="sweep one knob")
    bottleneck.add_argument("--core", default="large",
                            choices=["small", "large"])
    bottleneck.add_argument("--knob", required=True)
    bottleneck.add_argument("--metric", default="ipc")
    bottleneck.add_argument("--instructions", type=int, default=8_000)
    bottleneck.set_defaults(func=_cmd_bottleneck)

    lint = sub.add_parser(
        "lint",
        help="run the AST-based invariant lint suite over the source",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: the installed repro package)")
    lint.add_argument("--rule", action="append", metavar="RULE",
                      help="run only this rule (repeatable)")
    lint.add_argument("--json", action="store_true",
                      help="print the report as JSON")
    lint.add_argument("--out", metavar="FILE",
                      help="also write the JSON report to FILE "
                           "(the CI artifact)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the registered rules and exit")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
