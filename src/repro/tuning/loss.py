"""Use-case loss functions (Section III-D step 5, Section IV-A4).

Workload cloning uses *log loss over the metrics of interest*: the squared
log-ratio between measured and target, averaged across metrics, so relative
errors count symmetrically and metrics of different magnitudes (IPC ~ 1,
miss rates ~ 0.01) weigh comparably.  Stress testing maps the single stress
metric to a signed loss so both tuners always minimize.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

_EPS = 1e-4


def _log_ratio(measured: float, target: float) -> float:
    return math.log((abs(measured) + _EPS) / (abs(target) + _EPS))


@dataclass
class CloningLoss:
    """Log loss between measured metrics and clone targets.

    Attributes:
        targets: metric name -> target value (the application's measured
            characteristics).
        weights: optional per-metric weights (default 1).
    """

    targets: dict[str, float]
    weights: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.targets:
            raise ValueError("cloning loss needs at least one target metric")

    def __call__(self, metrics: dict[str, float]) -> float:
        total = 0.0
        weight_sum = 0.0
        for name, target in self.targets.items():
            if name not in metrics:
                raise KeyError(f"metric {name!r} missing from evaluation")
            w = self.weights.get(name, 1.0)
            total += w * _log_ratio(metrics[name], target) ** 2
            weight_sum += w
        return total / weight_sum


@dataclass
class StressLoss:
    """Signed single-metric loss for stress testing.

    ``maximize=True`` (power virus) returns the negated metric;
    ``maximize=False`` (worst-case performance virus) returns the metric
    itself, so minimizing the loss minimizes the metric.
    """

    metric: str = "ipc"
    maximize: bool = False

    def __call__(self, metrics: dict[str, float]) -> float:
        if self.metric not in metrics:
            raise KeyError(f"metric {self.metric!r} missing from evaluation")
        value = metrics[self.metric]
        return -value if self.maximize else value


@dataclass
class CombinedStressLoss:
    """Weighted multi-metric stress loss (Section III-A2's "combination
    of multiple metrics").

    Each metric contributes its (optionally weighted) value; minimizing
    the loss drives every metric toward its worst case in the configured
    direction.  ``normalizers`` rescale metrics of different magnitudes
    (IPC ~ 1, power ~ 2 W) so neither dominates by unit choice.
    """

    metrics: tuple[str, ...]
    maximize: bool = False
    weights: dict[str, float] = field(default_factory=dict)
    normalizers: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.metrics:
            raise ValueError("combined stress loss needs >= 1 metric")

    def __call__(self, metrics: dict[str, float]) -> float:
        total = 0.0
        for name in self.metrics:
            if name not in metrics:
                raise KeyError(f"metric {name!r} missing from evaluation")
            scale = self.normalizers.get(name, 1.0)
            weight = self.weights.get(name, 1.0)
            total += weight * metrics[name] / scale
        return -total if self.maximize else total


def metric_accuracy(measured: float, target: float) -> float:
    """Symmetric accuracy in [0, 1]: 1 when measured == target."""
    lo, hi = sorted((abs(measured), abs(target)))
    if hi < _EPS:
        return 1.0
    return max(0.0, (lo + _EPS) / (hi + _EPS))


def accuracy_report(
    metrics: dict[str, float], targets: dict[str, float]
) -> dict[str, float]:
    """Per-metric *ratio* (measured / target) — the radar-plot axes.

    A value of 1.0 means the clone matches the application exactly on
    that metric (the radial ``1`` circle of Figs 2-4).  Ratios are
    clamped to [0, 3]: near-zero targets otherwise explode the ratio
    without carrying more information than "badly off".
    """
    report = {}
    for name, target in targets.items():
        measured = metrics.get(name, 0.0)
        report[name] = min(3.0, (measured + _EPS) / (target + _EPS))
    return report


def mean_accuracy(metrics: dict[str, float], targets: dict[str, float]) -> float:
    """Mean symmetric accuracy over the target metrics."""
    accs = [metric_accuracy(metrics.get(n, 0.0), t) for n, t in targets.items()]
    return sum(accs) / len(accs) if accs else 1.0
