"""Brute-force search — the oracle of Figs 5 and 6.

The paper's "Minimum" lines come from a brute-force exploration of the
workload space.  For the compute-focused stress scenarios that space is
the instruction-mix simplex; :func:`class_mix_configs` enumerates integer
compositions of the five Table III classes, and :class:`BruteForceSearch`
evaluates any iterable of configurations and keeps the best.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator

from repro.tuning.base import LossFn, Tuner, TuningResult
from repro.tuning.evaluator import Evaluator


def compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All tuples of ``parts`` non-negative ints summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for dividers in combinations(range(total + parts - 1), parts - 1):
        result = []
        prev = -1
        for d in dividers:
            result.append(d - prev - 1)
            prev = d
        result.append(total + parts - 2 - prev)
        yield tuple(result)


#: Knob names carrying each class's weight when enumerating class mixes.
#: One representative mnemonic per class, so a brute-force sweep of the
#: class simplex spans exactly the same code-generation space as a tuner
#: restricted to these five knobs (see CLASS_KNOB_NAMES).
_CLASS_TO_KNOBS = {
    "integer": ("ADD",),
    "float": ("FMULD",),
    "branch": ("BEQ",),
    "load": ("LD",),
    "store": ("SD",),
}

#: The class-level mix knobs of the compute-focused stress scenario.
CLASS_KNOB_NAMES = ("ADD", "FMULD", "BEQ", "LD", "SD")


def class_mix_configs(
    total: int = 10, fixed: dict | None = None
) -> list[dict]:
    """Knob configurations covering the 5-class instruction-mix simplex.

    Each composition of ``total`` across (integer, float, branch, load,
    store) becomes a knob configuration on the representative mnemonic of
    each class.  ``fixed`` supplies the non-mix knobs (REG_DIST etc.).

    With the default granularity this is the 1001-point lattice a
    brute-force sweep of the mix space needs.
    """
    base = {
        "REG_DIST": 10,
        "MEM_SIZE": 16,
        "MEM_STRIDE": 64,
        "MEM_TEMP1": 1,
        "MEM_TEMP2": 1,
        "B_PATTERN": 0.1,
    }
    base.update(fixed or {})
    configs = []
    for mix in compositions(total, len(_CLASS_TO_KNOBS)):
        if all(m == 0 for m in mix):
            continue
        config = dict(base)
        empty = True
        for share, (_, knob_names) in zip(mix, _CLASS_TO_KNOBS.items()):
            per_knob = share / len(knob_names)
            for name in knob_names:
                config[name] = per_knob
            if share:
                empty = False
        if empty:
            continue
        configs.append(config)
    return configs


class BruteForceSearch(Tuner):
    """Exhaustively evaluate an iterable of knob configurations.

    The grid is swept in batches of ``batch_size`` configurations so a
    parallel execution backend keeps every worker busy; history records
    land at the same 50-configuration cadence (and with the same
    cumulative cost counters) as the sequential sweep.

    ``batch_group_min`` floors the batch size: sweeping in batches
    smaller than the group size that keeps generation batching effective
    would hand the execution backend epochs too small to collapse.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        loss: LossFn,
        configs: Iterable[dict],
        seed: int = 0,
        batch_size: int = 50,
        batch_group_min: int = 1,
    ):
        super().__init__(evaluator, loss, seed=seed)
        self.configs = list(configs)
        if not self.configs:
            raise ValueError("brute force needs at least one configuration")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = max(batch_size, max(1, int(batch_group_min)))

    def run(self) -> TuningResult:
        total = len(self.configs)
        for start in range(0, total, self.batch_size):
            chunk = self.configs[start:start + self.batch_size]
            metrics_batch = self.evaluator.evaluate_raw_batch(chunk)
            for n, (config, metrics) in enumerate(
                zip(chunk, metrics_batch), start=start + 1
            ):
                value = self._observe(config, metrics)
                if n % self.batch_size == 0 or n == total:
                    self._record_epoch(n, value, metrics, config)
        return self._result(total, True, "exhausted")
