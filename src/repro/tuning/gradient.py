"""Gradient-descent tuning (Listing 3 of the paper).

Each epoch perturbs every (non-skipped) knob by +/- delta in index space,
measures the loss at each gradient-check configuration (2 x knobs
evaluations), forms the finite-difference gradient, and steps the knob
vector so the steepest knob moves one full step-size while the others move
proportionally.  The schedule features the paper calls out:

* adaptive step sizes — larger early, smaller late (Adam-inspired, step 8);
* stochastic knob skipping with decaying probability, to escape local
  minima (step 9);
* convergence on configuration movement, target loss/accuracy, or the
  epoch limit (step 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tuning.base import LossFn, Tuner, TuningResult
from repro.tuning.evaluator import Evaluator


@dataclass(frozen=True)
class GDParams:
    """Gradient-descent hyper-parameters.

    Attributes:
        max_epochs: tuning epoch limit.
        delta: gradient-check perturbation in lattice-index units.
        step_initial / step_final / step_decay: geometric step schedule.
        skip_probability / skip_decay: per-knob skip chance per epoch and
            its decay (robustness against local minima).
        movement_epsilon: stop when the materialized config moved less
            than this (L-inf, index units) between epochs.
        target_loss: stop when the best loss drops below this.
        patience: epochs without best-loss improvement before stopping.
        restarts_on_plateau: random re-kicks allowed before giving up.
    """

    max_epochs: int = 60
    delta: float = 1.0
    step_initial: float = 2.5
    step_final: float = 0.51
    step_decay: float = 0.93
    skip_probability: float = 0.25
    skip_decay: float = 0.85
    movement_epsilon: float = 0.40
    target_loss: float = 1e-4
    patience: int = 8
    restarts_on_plateau: int = 3

    def step_size(self, epoch: int) -> float:
        """Step size for a 0-based epoch (larger early, smaller late)."""
        return max(self.step_final, self.step_initial * self.step_decay**epoch)

    def skip_chance(self, epoch: int) -> float:
        """Knob-skip probability for a 0-based epoch."""
        return self.skip_probability * self.skip_decay**epoch


class GradientDescentTuner(Tuner):
    """The Listing 3 tuning mechanism.

    Args:
        evaluator: shared evaluation engine.
        loss: use-case loss function.
        params: hyper-parameters (paper-default schedule when omitted).
        initial: starting position vector; random when omitted
            (Listing 3: ``if !KC: KC_base = random()``).
    """

    def __init__(
        self,
        evaluator: Evaluator,
        loss: LossFn,
        params: GDParams | None = None,
        initial: np.ndarray | None = None,
        seed: int = 0,
        restart_anchor: bool = False,
    ):
        super().__init__(evaluator, loss, seed=seed)
        self.params = params or GDParams()
        self.space = evaluator.knob_space
        self._initial = initial
        # When an informed initial vector is supplied, plateau restarts
        # can jitter around it instead of resampling uniformly — the
        # anchor usually sits near the optimum already.
        self._restart_anchor = restart_anchor and initial is not None

    # -- one epoch ------------------------------------------------------

    def _epoch_batch(
        self, kc: np.ndarray, epoch: int
    ) -> tuple[list[tuple[int, np.ndarray, np.ndarray, float]], list[dict]]:
        """Draw the epoch's probe set, evaluate base + probes as ONE batch.

        The whole epoch — the base configuration plus every +/- delta
        gradient-check probe — is submitted as a single batch, so the
        evaluator dedups across all of it (a probe clipped back onto the
        base costs nothing) and the execution backend sees the full
        generation at once, the shape the group-batched evaluation path
        collapses.  ``metrics_batch[0]`` is the base configuration's
        metrics; probe *n*'s plus/minus land at ``1 + 2n`` / ``2 + 2n``.
        """
        p = self.params
        skip_chance = p.skip_chance(epoch)
        probes: list[tuple[int, np.ndarray, np.ndarray, float]] = []
        for i in range(len(self.space)):
            if self.rng.random() < skip_chance:
                continue
            plus = self.space.clip(kc + p.delta * _unit(len(kc), i))
            minus = self.space.clip(kc - p.delta * _unit(len(kc), i))
            span = plus[i] - minus[i]
            if span <= 0:
                continue
            probes.append((i, plus, minus, span))
        vectors = [kc] + [
            v for _, plus, minus, _ in probes for v in (plus, minus)
        ]
        return probes, self.evaluator.evaluate_batch(vectors)

    def _epoch_step(
        self,
        kc: np.ndarray,
        probes: list[tuple[int, np.ndarray, np.ndarray, float]],
        metrics_batch: list[dict],
        epoch: int,
    ) -> np.ndarray:
        """Finish one epoch from its batch results: the new position."""
        p = self.params
        grad = np.zeros(len(self.space))
        for n, (i, plus, minus, span) in enumerate(probes):
            loss_plus = self._observe(
                self.space.materialize(plus), metrics_batch[1 + 2 * n]
            )
            loss_minus = self._observe(
                self.space.materialize(minus), metrics_batch[2 + 2 * n]
            )
            grad[i] = (loss_plus - loss_minus) / span

        steepest = np.max(np.abs(grad))
        if steepest <= 0:
            # Flat neighbourhood: take a small random step to keep moving.
            kick = self.rng.uniform(-1.0, 1.0, len(kc))
            return self.space.clip(kc + kick)
        # The steepest knob moves one full step-size; the others move a
        # fraction proportional to their gradient (Section III-D step 7).
        return self.space.clip(kc - p.step_size(epoch) * grad / steepest)

    # -- full run -------------------------------------------------------

    def run(self) -> TuningResult:
        p = self.params
        kc = (
            self.space.clip(np.asarray(self._initial, dtype=float))
            if self._initial is not None
            else self.space.random_vector(self.rng)
        )
        stall = 0
        restarts = 0
        converged = False
        stop_reason = "max_epochs"
        epoch = 0

        for epoch in range(1, p.max_epochs + 1):
            base_config = self.space.materialize(kc)
            # One whole-epoch batch: base + every probe.  The base is
            # observed first (and previous_best captured after it, before
            # any probe observation) exactly as the split evaluate() /
            # _epoch() formulation did, so trajectories are bit-identical.
            probes, metrics_batch = self._epoch_batch(kc, epoch - 1)
            base_metrics = metrics_batch[0]
            base_loss = self._observe(base_config, base_metrics)
            previous_best = self._best_loss

            kc_new = self._epoch_step(kc, probes, metrics_batch, epoch - 1)
            self._record_epoch(epoch, base_loss, base_metrics, base_config)

            if self._best_loss <= p.target_loss:
                converged, stop_reason = True, "target_loss"
                break

            movement = np.max(
                np.abs(
                    _materialized_positions(self.space, kc_new)
                    - _materialized_positions(self.space, kc)
                )
            )
            improved = self._best_loss < previous_best - 1e-12
            stall = 0 if improved else stall + 1

            if movement < p.movement_epsilon or stall >= p.patience:
                if restarts < p.restarts_on_plateau and self._best_loss > p.target_loss:
                    restarts += 1
                    stall = 0
                    if self._restart_anchor:
                        anchor = np.asarray(self._initial, dtype=float)
                        jitter = self.rng.normal(0.0, 1.0 + restarts, len(anchor))
                        kc_new = self.space.clip(anchor + jitter)
                    else:
                        kc_new = self.space.random_vector(self.rng)
                else:
                    converged, stop_reason = True, (
                        "converged" if movement < p.movement_epsilon else "patience"
                    )
                    kc = kc_new
                    break
            kc = kc_new

        return self._result(epoch, converged, stop_reason)


def _unit(n: int, i: int) -> np.ndarray:
    e = np.zeros(n)
    e[i] = 1.0
    return e


def _materialized_positions(space, kc: np.ndarray) -> np.ndarray:
    """Positions snapped to the lattice (movement measured on real knobs)."""
    return np.round(space.clip(kc))
