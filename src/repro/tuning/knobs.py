"""Workload-generation knobs (the Listing 1 interface).

A :class:`Knob` is a named, ordered lattice of values; a :class:`KnobSpace`
is the ordered collection the tuner optimizes over.  Tuners work in
*continuous index space* (a float position per knob); materializing a
vector rounds each position to the nearest lattice point.  That is how the
gradient-descent mechanism takes fractional steps over discrete knob
lattices (Section III-D, step 7).
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass

import numpy as np


def canonical_config_key(config: dict) -> tuple:
    """Hashable, order- and numeric-type-insensitive configuration identity.

    Every cache layer (the evaluator memo, the on-disk result cache) keys
    on this: knob names sorted, numeric values normalized to ``float`` so
    ``{"REG_DIST": 4}`` and ``{"REG_DIST": 4.0}`` cannot alias into two
    entries, and non-numeric values (e.g. explicit ``STREAMS`` specs)
    reduced to their ``repr``.
    """
    normalized = []
    for name in sorted(config):
        value = config[name]
        if isinstance(value, numbers.Real):
            normalized.append((name, float(value)))
        else:
            normalized.append((name, repr(value)))
    return tuple(normalized)


@dataclass(frozen=True)
class Knob:
    """One tuning knob: a name and its ordered value lattice."""

    name: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) < 1:
            raise ValueError(f"knob {self.name} has no values")

    def __len__(self) -> int:
        return len(self.values)

    def value_at(self, position: float) -> float:
        """Nearest lattice value to a continuous index position."""
        idx = int(round(position))
        idx = min(max(idx, 0), len(self.values) - 1)
        return self.values[idx]

    def default_value(self) -> float:
        """The knob's own fallback value: the middle of its lattice.

        Used when a knob is pinned (excluded from tuning) but no explicit
        pinned value is available for it anywhere else.
        """
        return self.values[(len(self.values) - 1) // 2]


class KnobSpace:
    """An ordered set of knobs plus fixed (non-tuned) knob values.

    Attributes:
        knobs: the tunable knobs, in order.
        fixed: knob values appended verbatim to every materialized config
            (e.g. pinning ``B_PATTERN`` to 0 for a compute stress test).
    """

    def __init__(self, knobs: list[Knob], fixed: dict | None = None):
        if not knobs:
            raise ValueError("a knob space needs at least one knob")
        names = [k.name for k in knobs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate knob names")
        self.knobs = list(knobs)
        self.fixed = dict(fixed or {})

    def __len__(self) -> int:
        return len(self.knobs)

    @property
    def names(self) -> list[str]:
        return [k.name for k in self.knobs]

    def upper_bounds(self) -> np.ndarray:
        """Maximum index position per knob."""
        return np.array([len(k) - 1 for k in self.knobs], dtype=float)

    def clip(self, positions: np.ndarray) -> np.ndarray:
        """Clamp a position vector into the lattice bounds."""
        return np.clip(positions, 0.0, self.upper_bounds())

    def random_vector(self, rng: np.random.Generator) -> np.ndarray:
        """A uniformly random position vector."""
        return rng.uniform(0.0, self.upper_bounds())

    def materialize(self, positions: np.ndarray) -> dict:
        """Round a position vector to a concrete knob configuration."""
        positions = np.asarray(positions, dtype=float)
        if positions.shape != (len(self.knobs),):
            raise ValueError(
                f"expected {len(self.knobs)} positions, got {positions.shape}"
            )
        config = {
            k.name: k.value_at(p) for k, p in zip(self.knobs, positions)
        }
        config.update(self.fixed)
        return config

    def config_key(self, positions: np.ndarray) -> tuple:
        """Hashable identity of the materialized configuration."""
        return canonical_config_key(self.materialize(positions))


def _ten(*values) -> tuple[float, ...]:
    return tuple(float(v) for v in values)


#: Listing 1 lattices.  Two documented extensions beyond the paper's
#: "example subset": instruction fractions include 0 (so a clone can
#: drop a class an application does not execute — the listing's floor of
#: 1 puts a hard ceiling on distribution accuracy), and ``B_PATTERN``
#: gains finer steps below 0.3 (misprediction rates quantize at roughly
#: 0.45 x B_PATTERN, so 0.1 steps limit mispredict accuracy to ~5%).
INSTRUCTION_FRACTIONS = _ten(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
REG_DIST_VALUES = _ten(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
MEM_SIZE_VALUES = _ten(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)  # KB
MEM_STRIDE_VALUES = _ten(8, 12, 16, 20, 24, 32, 40, 48, 56, 64)
MEM_TEMP1_VALUES = _ten(1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
MEM_TEMP2_VALUES = _ten(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
B_PATTERN_VALUES = _ten(0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5,
                        0.6, 0.7, 0.8, 0.9, 1.0)

#: The ten instruction-fraction knobs of Listing 1.
MIX_KNOB_NAMES = ("ADD", "MUL", "FADDD", "FMULD", "BEQ", "BNE",
                  "LD", "LW", "SD", "SW")


def instruction_mix_space(fixed: dict | None = None) -> KnobSpace:
    """Only the instruction-fraction knobs (the Fig 5/6 stress scenario).

    The compute-focused stress tests of the paper tune the instruction
    fractions and pin everything else; pass the pinned values as ``fixed``.
    """
    defaults = {
        "REG_DIST": 10,
        "MEM_SIZE": 16,
        "MEM_STRIDE": 64,
        "MEM_TEMP1": 1,
        "MEM_TEMP2": 1,
        "B_PATTERN": 0.1,
    }
    defaults.update(fixed or {})
    knobs = [Knob(name, INSTRUCTION_FRACTIONS) for name in MIX_KNOB_NAMES]
    return KnobSpace(knobs, fixed=defaults)


def default_cloning_space(fixed: dict | None = None) -> KnobSpace:
    """The full Listing 1 space used for workload cloning."""
    knobs = [Knob(name, INSTRUCTION_FRACTIONS) for name in MIX_KNOB_NAMES]
    knobs += [
        Knob("REG_DIST", REG_DIST_VALUES),
        Knob("MEM_SIZE", MEM_SIZE_VALUES),
        Knob("MEM_STRIDE", MEM_STRIDE_VALUES),
        Knob("MEM_TEMP1", MEM_TEMP1_VALUES),
        Knob("MEM_TEMP2", MEM_TEMP2_VALUES),
        Knob("B_PATTERN", B_PATTERN_VALUES),
    ]
    return KnobSpace(knobs, fixed=fixed)


def full_stress_space(fixed: dict | None = None) -> KnobSpace:
    """Every knob tunable — the widest stress-test search space."""
    return default_cloning_space(fixed=fixed)
