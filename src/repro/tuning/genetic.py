"""Genetic-algorithm tuning baseline (Table I parameters).

Prior cloning/stress-test generators (GeST and the abstract-model works the
paper cites) tune with a GA; MicroGrad's evaluation compares against this
configuration: population 50, tournament selection of 5, single-point
crossover at 100% rate, 3% per-gene random mutation, elitism.  One GA epoch
(generation) evaluates the whole population — the 50-vs-2x-knobs cost
asymmetry the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tuning.base import LossFn, Tuner, TuningResult
from repro.tuning.evaluator import Evaluator


@dataclass(frozen=True)
class GAParams:
    """Table I genetic-algorithm parameters."""

    population_size: int = 50
    mutation_rate: float = 0.03
    crossover_rate: float = 1.0
    tournament_size: int = 5
    elitism: bool = True
    max_epochs: int = 60
    target_loss: float = 1e-4


class GeneticTuner(Tuner):
    """GA over knob-index genomes.

    Individuals are integer lattice-index vectors.  Selection is
    tournament-of-5 on loss; crossover is single-point at a random
    position; mutation redraws each gene uniformly with 3% probability;
    the best individual survives unchanged when elitism is on.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        loss: LossFn,
        params: GAParams | None = None,
        seed: int = 0,
    ):
        super().__init__(evaluator, loss, seed=seed)
        self.params = params or GAParams()
        self.space = evaluator.knob_space

    # -- GA operators ---------------------------------------------------

    def _random_individual(self) -> np.ndarray:
        return np.round(self.space.random_vector(self.rng))

    def _tournament(self, population: list[np.ndarray],
                    losses: list[float]) -> np.ndarray:
        contenders = self.rng.integers(
            0, len(population), self.params.tournament_size
        )
        winner = min(contenders, key=lambda idx: losses[idx])
        return population[winner]

    def _crossover(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.rng.random() > self.params.crossover_rate or len(a) < 2:
            return a.copy()
        point = int(self.rng.integers(1, len(a)))
        return np.concatenate([a[:point], b[point:]])

    def _mutate(self, genome: np.ndarray) -> np.ndarray:
        out = genome.copy()
        bounds = self.space.upper_bounds()
        for i in range(len(out)):
            if self.rng.random() < self.params.mutation_rate:
                out[i] = float(self.rng.integers(0, int(bounds[i]) + 1))
        return out

    def _evaluate_population(
        self, population: list[np.ndarray]
    ) -> tuple[list[float], list[dict]]:
        # One generation = one batch: the 50-individual population goes
        # to the evaluator together, which dedups repeat genomes and
        # fans the unique ones out across the execution backend.
        metrics_list = self.evaluator.evaluate_batch(population)
        losses = [
            self._observe(self.space.materialize(genome), metrics)
            for genome, metrics in zip(population, metrics_list)
        ]
        return losses, metrics_list

    # -- full run -------------------------------------------------------

    def run(self) -> TuningResult:
        p = self.params
        population = [self._random_individual() for _ in range(p.population_size)]
        converged = False
        stop_reason = "max_epochs"
        epoch = 0

        for epoch in range(1, p.max_epochs + 1):
            losses, metrics_list = self._evaluate_population(population)
            best_idx = int(np.argmin(losses))
            self._record_epoch(
                epoch,
                losses[best_idx],
                metrics_list[best_idx],
                self.space.materialize(population[best_idx]),
            )
            if self._best_loss <= p.target_loss:
                converged, stop_reason = True, "target_loss"
                break

            next_gen: list[np.ndarray] = []
            if p.elitism:
                next_gen.append(population[best_idx].copy())
            while len(next_gen) < p.population_size:
                parent_a = self._tournament(population, losses)
                parent_b = self._tournament(population, losses)
                child = self._mutate(self._crossover(parent_a, parent_b))
                next_gen.append(child)
            population = next_gen

        return self._result(epoch, converged, stop_reason)
