"""Knob-configuration evaluator with memoization and cost accounting.

The evaluator is the framework's inner loop: knob config -> Microprobe-style
generation -> platform execution -> metrics.  It memoizes on the
materialized configuration (the knob lattice is discrete, so tuners revisit
points constantly) and counts both *requested* evaluations — the paper's
epoch-cost currency (2 x knobs per GD epoch, population size per GA epoch)
— and *unique* evaluations, the actual simulation work.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tuning.knobs import KnobSpace

EvaluateFn = Callable[[dict], dict[str, float]]


class Evaluator:
    """Maps knob position vectors to metric dicts.

    Args:
        knob_space: the space vectors live in.
        evaluate_config: config dict -> metric dict (wired by the core
            framework to generation + simulation + power estimation).
        cache: memoize identical materialized configurations.
    """

    def __init__(
        self,
        knob_space: KnobSpace,
        evaluate_config: EvaluateFn,
        cache: bool = True,
    ):
        self.knob_space = knob_space
        self._evaluate_config = evaluate_config
        self._cache_enabled = cache
        self._cache: dict[tuple, dict[str, float]] = {}
        self.requested_evaluations = 0
        self.unique_evaluations = 0

    def evaluate(self, positions: np.ndarray) -> dict[str, float]:
        """Evaluate a position vector (materialize, memoize, run)."""
        self.requested_evaluations += 1
        key = self.knob_space.config_key(positions)
        if self._cache_enabled and key in self._cache:
            return self._cache[key]
        config = self.knob_space.materialize(positions)
        metrics = self._evaluate_config(config)
        self.unique_evaluations += 1
        if self._cache_enabled:
            self._cache[key] = metrics
        return metrics

    def evaluate_raw(self, config: dict) -> dict[str, float]:
        """Evaluate a concrete knob configuration (still cached/counted)."""
        self.requested_evaluations += 1
        key = tuple(sorted(config.items()))
        if self._cache_enabled and key in self._cache:
            return self._cache[key]
        metrics = self._evaluate_config(dict(config))
        self.unique_evaluations += 1
        if self._cache_enabled:
            self._cache[key] = metrics
        return metrics

    def reset_counters(self) -> None:
        """Zero the evaluation counters (cache contents are kept)."""
        self.requested_evaluations = 0
        self.unique_evaluations = 0
