"""Knob-configuration evaluator with memoization, batching and accounting.

The evaluator is the framework's inner loop: knob config -> Microprobe-style
generation -> platform execution -> metrics.  It memoizes on the
materialized configuration (the knob lattice is discrete, so tuners revisit
points constantly) and counts both *requested* evaluations — the paper's
epoch-cost currency (2 x knobs per GD epoch, population size per GA epoch)
— and *unique* evaluations, the actual simulation work.

Tuners submit their per-epoch candidates as **batches**
(:meth:`Evaluator.evaluate_batch`): the evaluator dedups the batch against
its memo cache (and an optional persistent :class:`~repro.exec.cache.
DiskResultCache`), then dispatches only the unique remainder through a
``batch_fn`` — wired by the core framework to an execution backend that
fans generation + simulation out across worker processes.  Results always
come back in request order, so serial and parallel execution are
bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.tuning.knobs import KnobSpace, canonical_config_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec.cache import DiskResultCache

EvaluateFn = Callable[[dict], dict[str, float]]
BatchEvaluateFn = Callable[[list[dict]], list[dict[str, float]]]
StreamEvaluateFn = Callable[[list[dict]], Iterator[dict[str, float]]]
#: ``on_result(batch_index, metrics)`` — fired as results become
#: available; cached entries fire immediately, computed ones as the
#: execution backend streams them back.
OnResultFn = Callable[[int, dict[str, float]], None]


class Evaluator:
    """Maps knob position vectors to metric dicts.

    Args:
        knob_space: the space vectors live in.
        evaluate_config: config dict -> metric dict (wired by the core
            framework to generation + simulation + power estimation).
        cache: memoize identical materialized configurations.
        batch_fn: list-of-configs -> list-of-metrics used by the batch
            path; falls back to mapping ``evaluate_config`` serially.
        batch_stream_fn: list-of-configs -> metrics *iterator* in the
            same order; when present, batch calls carrying an
            ``on_result`` callback consume it incrementally so partial
            results surface while the rest of the epoch still runs.
        disk_cache: optional persistent result cache shared across runs.
        cache_context: identity of everything besides the knob config
            that determines metrics (core, instruction budget, ...);
            keys the disk cache.
        group_fn: optional config -> generation-equivalence key (the
            grouping planner).  When set, the post-dedup, post-cache-miss
            dispatch set is reordered so configs with equal keys are
            adjacent, letting the job layer keep whole equivalence
            groups in one chunk and serve each group from one shared
            simulation pass.  Reordering only changes dispatch order —
            results, accounting and streaming semantics are unchanged.
    """

    def __init__(
        self,
        knob_space: KnobSpace,
        evaluate_config: EvaluateFn,
        cache: bool = True,
        batch_fn: BatchEvaluateFn | None = None,
        batch_stream_fn: StreamEvaluateFn | None = None,
        disk_cache: "DiskResultCache | None" = None,
        cache_context: str = "",
        group_fn: Callable[[dict], object] | None = None,
    ):
        self.knob_space = knob_space
        self._evaluate_config = evaluate_config
        self._batch_fn = batch_fn
        self._batch_stream_fn = batch_stream_fn
        self._cache_enabled = cache
        self._cache: dict[tuple, dict[str, float]] = {}
        self._disk_cache = disk_cache
        self._cache_context = cache_context
        self._group_fn = group_fn
        self.requested_evaluations = 0
        self.unique_evaluations = 0

    # -- cache plumbing -------------------------------------------------

    def _lookup(self, key: tuple) -> dict[str, float] | None:
        """Memo first, then the persistent cache (promoting on hit)."""
        if not self._cache_enabled:
            return None
        if key in self._cache:
            return self._cache[key]
        if self._disk_cache is not None:
            metrics = self._disk_cache.get(self._cache_context, key)
            if metrics is not None:
                self._cache[key] = metrics
                return metrics
        return None

    def _lookup_many(self, keys: list[tuple]) -> list[dict[str, float] | None]:
        """Batched :meth:`_lookup`: one disk-cache directory pass.

        Memo hits are served in-process; the remainder probes the
        persistent cache through ``get_many`` (duplicate keys included —
        the disk cache promotes the first and serves the rest from
        memory, exactly like sequential ``get`` calls).
        """
        if not self._cache_enabled:
            return [None] * len(keys)
        results = [self._cache.get(key) for key in keys]
        if self._disk_cache is not None:
            missing = [i for i, hit in enumerate(results) if hit is None]
            if missing:
                get_many = getattr(self._disk_cache, "get_many", None)
                if get_many is not None:
                    disk = get_many(
                        self._cache_context, [keys[i] for i in missing]
                    )
                else:  # externally supplied cache without the batch API
                    disk = [
                        self._disk_cache.get(self._cache_context, keys[i])
                        for i in missing
                    ]
                for i, metrics in zip(missing, disk):
                    if metrics is not None:
                        self._cache[keys[i]] = metrics
                        results[i] = metrics
        return results

    def _store(self, key: tuple, metrics: dict[str, float]) -> None:
        if not self._cache_enabled:
            return
        self._cache[key] = metrics
        if self._disk_cache is not None:
            self._disk_cache.put(self._cache_context, key, metrics)

    def _run_batch(self, configs: list[dict]) -> list[dict[str, float]]:
        if not configs:
            return []
        if self._batch_fn is not None:
            results = list(self._batch_fn(configs))
            if len(results) != len(configs):
                raise RuntimeError(
                    f"batch_fn returned {len(results)} results for "
                    f"{len(configs)} configs"
                )
            return results
        return [self._evaluate_config(config) for config in configs]

    def _stream_batch(
        self, configs: list[dict]
    ) -> Iterable[dict[str, float]]:
        """Metrics for ``configs`` in order, incrementally when possible."""
        if not configs:
            return []
        if self._batch_stream_fn is not None:
            return self._batch_stream_fn(configs)
        return self._run_batch(configs)

    # -- single-config paths --------------------------------------------

    def evaluate(self, positions: np.ndarray) -> dict[str, float]:
        """Evaluate a position vector (materialize, memoize, run)."""
        return self.evaluate_batch([positions])[0]

    def evaluate_raw(self, config: dict) -> dict[str, float]:
        """Evaluate a concrete knob configuration (still cached/counted)."""
        return self.evaluate_raw_batch([config])[0]

    # -- batch paths ----------------------------------------------------

    def evaluate_batch(
        self,
        positions_batch: Sequence[np.ndarray],
        on_result: OnResultFn | None = None,
    ) -> list[dict[str, float]]:
        """Evaluate position vectors as one batch, results in input order.

        Counts every entry as a requested evaluation, dedups the batch
        against the caches *and against itself* (two vectors rounding to
        the same lattice point cost one simulation), and dispatches only
        the unique remainder.

        ``on_result(index, metrics)`` fires as results become available
        — cache hits immediately, computed configurations as the
        execution backend streams them back — so a tuner can react to
        partial-epoch results before the whole batch lands.  Callback
        order is availability order, not index order; the returned list
        is always in input order.
        """
        configs = [self.knob_space.materialize(p) for p in positions_batch]
        return self._evaluate_config_batch(configs, on_result=on_result)

    def evaluate_raw_batch(
        self,
        configs: Sequence[dict],
        on_result: OnResultFn | None = None,
    ) -> list[dict[str, float]]:
        """Batch-evaluate concrete knob configurations (same accounting)."""
        return self._evaluate_config_batch(
            [dict(c) for c in configs], on_result=on_result
        )

    def _evaluate_config_batch(
        self,
        configs: list[dict],
        on_result: OnResultFn | None = None,
    ) -> list[dict[str, float]]:
        self.requested_evaluations += len(configs)
        obs.inc("evaluator.requested", len(configs))
        if not self._cache_enabled:
            # No memoization anywhere: every request is real work, even
            # duplicates within the batch (matches the serial semantics).
            self.unique_evaluations += len(configs)
            obs.inc("evaluator.unique", len(configs))
            if on_result is None:
                return self._run_batch(configs)
            metrics_batch = []
            for metrics in self._stream_batch(configs):
                on_result(len(metrics_batch), metrics)
                metrics_batch.append(metrics)
            if len(metrics_batch) != len(configs):
                raise RuntimeError(
                    f"batch stream returned {len(metrics_batch)} results "
                    f"for {len(configs)} configs"
                )
            return metrics_batch
        results: list[dict[str, float] | None] = [None] * len(configs)
        pending: dict[tuple, list[int]] = {}
        keys = [canonical_config_key(config) for config in configs]
        for idx, (key, cached) in enumerate(zip(keys, self._lookup_many(keys))):
            if cached is not None:
                results[idx] = cached
                if on_result is not None:
                    on_result(idx, cached)
            else:
                pending.setdefault(key, []).append(idx)

        if self._group_fn is not None and len(pending) > 1:
            # Grouping planner: reorder the dispatch set so equal
            # generation-equivalence keys are adjacent (stable within a
            # group, groups in first-seen order).  The batch contract
            # never promised a dispatch order — reconciliation below
            # maps stream order back to per-index order either way.
            group_rank: dict = {}
            ranked = []
            for key, indices in pending.items():
                group = self._group_fn(configs[indices[0]])
                rank = group_rank.setdefault(group, len(group_rank))
                ranked.append((rank, key, indices))
            ranked.sort(key=lambda item: item[0])
            pending = {key: indices for _, key, indices in ranked}

        unique_configs = [configs[indices[0]] for indices in pending.values()]
        self.unique_evaluations += len(unique_configs)
        obs.inc("evaluator.unique", len(unique_configs))
        if on_result is None:
            metrics_batch: Iterable = self._run_batch(unique_configs)
        else:
            metrics_batch = self._stream_batch(unique_configs)
        stream = iter(metrics_batch)
        exhausted = object()
        for key, indices in pending.items():
            metrics = next(stream, exhausted)
            if metrics is exhausted:
                raise RuntimeError(
                    f"batch evaluation returned too few results for "
                    f"{len(pending)} unique configs"
                )
            self._store(key, metrics)
            for idx in indices:
                results[idx] = metrics
                if on_result is not None:
                    on_result(idx, metrics)
        if next(stream, exhausted) is not exhausted:
            raise RuntimeError(
                f"batch evaluation returned more results than the "
                f"{len(pending)} unique configs"
            )
        return results  # type: ignore[return-value]

    def reset_counters(self) -> None:
        """Zero the evaluation counters (cache contents are kept)."""
        self.requested_evaluations = 0
        self.unique_evaluations = 0
