"""GA tuning over the instruction-level model (the GeST approach).

Pairs :class:`~repro.codegen.instlevel.InstructionLevelSpace` genomes
with the Table I GA parameters, so the paper's model comparison —
abstract workload model + gradient descent versus instruction-level
model + genetic algorithm — runs on identical substrates and losses.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.instlevel import GenomeEvaluator, InstructionLevelSpace
from repro.tuning.base import EpochRecord, LossFn, TuningResult
from repro.tuning.genetic import GAParams


class InstructionLevelGeneticTuner:
    """Table I GA over explicit instruction sequences.

    Mirrors :class:`~repro.tuning.genetic.GeneticTuner` but the genome is
    a mnemonic sequence, crossover splices code and mutation rewrites
    single instructions — the operators the paper notes are "much more
    valuable in an instruction-level model".
    """

    def __init__(
        self,
        space: InstructionLevelSpace,
        evaluator: GenomeEvaluator,
        loss: LossFn,
        params: GAParams | None = None,
        seed: int = 0,
    ):
        self.space = space
        self.evaluator = evaluator
        self.loss = loss
        self.params = params or GAParams()
        self.rng = np.random.default_rng(seed)
        self.history: list[EpochRecord] = []
        self._best_loss = float("inf")
        self._best_genome: tuple[str, ...] | None = None
        self._best_metrics: dict[str, float] | None = None

    def _observe(self, genome: tuple[str, ...],
                 metrics: dict[str, float]) -> float:
        value = self.loss(metrics)
        if value < self._best_loss:
            self._best_loss = value
            self._best_genome = genome
            self._best_metrics = dict(metrics)
        return value

    def _tournament(self, population, losses) -> tuple[str, ...]:
        contenders = self.rng.integers(
            0, len(population), self.params.tournament_size
        )
        winner = min(contenders, key=lambda idx: losses[idx])
        return population[winner]

    def run(self) -> TuningResult:
        """Execute the GA; returns a standard :class:`TuningResult`.

        ``best_config`` carries the winning genome under the ``"GENOME"``
        key so downstream consumers keep a dict-shaped config.
        """
        p = self.params
        population = [
            self.space.random_genome(self.rng)
            for _ in range(p.population_size)
        ]
        converged = False
        stop_reason = "max_epochs"
        epoch = 0

        for epoch in range(1, p.max_epochs + 1):
            losses = []
            metrics_list = []
            for genome in population:
                metrics = self.evaluator.evaluate_genome(genome)
                metrics_list.append(metrics)
                losses.append(self._observe(genome, metrics))
            best_idx = int(np.argmin(losses))
            self.history.append(
                EpochRecord(
                    epoch=epoch,
                    loss=losses[best_idx],
                    best_loss=self._best_loss,
                    metrics=dict(metrics_list[best_idx]),
                    config={"GENOME": population[best_idx]},
                    evaluations=self.evaluator.requested_evaluations,
                )
            )
            if self._best_loss <= p.target_loss:
                converged, stop_reason = True, "target_loss"
                break

            next_gen = []
            if p.elitism:
                next_gen.append(population[best_idx])
            while len(next_gen) < p.population_size:
                parent_a = self._tournament(population, losses)
                parent_b = self._tournament(population, losses)
                child = parent_a
                if self.rng.random() <= p.crossover_rate:
                    child = self.space.crossover(parent_a, parent_b, self.rng)
                child = self.space.mutate(child, p.mutation_rate, self.rng)
                next_gen.append(child)
            population = next_gen

        if self._best_genome is None:
            raise RuntimeError("GA produced no evaluations")
        return TuningResult(
            best_config={"GENOME": self._best_genome},
            best_metrics=self._best_metrics or {},
            best_loss=self._best_loss,
            epochs=epoch,
            converged=converged,
            stop_reason=stop_reason,
            history=self.history,
            requested_evaluations=self.evaluator.requested_evaluations,
            unique_evaluations=self.evaluator.unique_evaluations,
        )
