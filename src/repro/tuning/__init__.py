"""Tuning mechanisms: the heart of MicroGrad.

The paper's contribution is a gradient-descent tuner over the knob lattice
(Listing 3), evaluated against the genetic-algorithm tuning used by prior
stress-test generators (Table I parameters) and a brute-force oracle.  All
tuners share the same :class:`~repro.tuning.evaluator.Evaluator` (knob
config -> metrics, with memoization and evaluation accounting) and loss
functions, so comparisons count work identically.
"""

from repro.tuning.knobs import (
    Knob,
    KnobSpace,
    default_cloning_space,
    instruction_mix_space,
    full_stress_space,
)
from repro.tuning.loss import (
    CloningLoss,
    CombinedStressLoss,
    StressLoss,
    accuracy_report,
    mean_accuracy,
)
from repro.tuning.evaluator import Evaluator
from repro.tuning.base import EpochRecord, Tuner, TuningResult
from repro.tuning.gradient import GDParams, GradientDescentTuner
from repro.tuning.genetic import GAParams, GeneticTuner
from repro.tuning.instlevel_ga import InstructionLevelGeneticTuner
from repro.tuning.brute import BruteForceSearch, class_mix_configs
from repro.tuning.random_search import RandomSearch

__all__ = [
    "Knob",
    "KnobSpace",
    "default_cloning_space",
    "instruction_mix_space",
    "full_stress_space",
    "CloningLoss",
    "CombinedStressLoss",
    "StressLoss",
    "accuracy_report",
    "mean_accuracy",
    "Evaluator",
    "Tuner",
    "TuningResult",
    "EpochRecord",
    "GradientDescentTuner",
    "GDParams",
    "GeneticTuner",
    "GAParams",
    "InstructionLevelGeneticTuner",
    "BruteForceSearch",
    "class_mix_configs",
    "RandomSearch",
]
