"""Random search — a sanity baseline for tuner comparisons.

Not part of the paper's evaluation, but a standard control: any tuner
worth its complexity must beat random sampling at equal evaluation budget.
"""

from __future__ import annotations

from repro.tuning.base import LossFn, Tuner, TuningResult
from repro.tuning.evaluator import Evaluator


class RandomSearch(Tuner):
    """Uniformly samples the knob lattice.

    Args:
        evaluations_per_epoch: grouping used only for history records so
            progress curves are comparable with other tuners.
        batch_group_min: floors ``evaluations_per_epoch`` so each epoch
            batch stays at least the group size that keeps generation
            batching effective.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        loss: LossFn,
        max_epochs: int = 60,
        evaluations_per_epoch: int = 20,
        seed: int = 0,
        batch_group_min: int = 1,
    ):
        super().__init__(evaluator, loss, seed=seed)
        self.max_epochs = max_epochs
        self.evaluations_per_epoch = max(
            evaluations_per_epoch, max(1, int(batch_group_min))
        )
        self.space = evaluator.knob_space

    def run(self) -> TuningResult:
        epoch = 0
        for epoch in range(1, self.max_epochs + 1):
            # Draw the epoch's samples up front and evaluate them as one
            # batch (the draws never depend on the metrics, so the RNG
            # stream is identical to the sequential formulation).
            samples = [
                self.space.random_vector(self.rng)
                for _ in range(self.evaluations_per_epoch)
            ]
            metrics_batch = self.evaluator.evaluate_batch(samples)
            epoch_best = float("inf")
            epoch_metrics: dict = {}
            epoch_config: dict = {}
            for x, metrics in zip(samples, metrics_batch):
                value = self._observe(self.space.materialize(x), metrics)
                if value < epoch_best:
                    epoch_best = value
                    epoch_metrics = metrics
                    epoch_config = self.space.materialize(x)
            self._record_epoch(epoch, epoch_best, epoch_metrics, epoch_config)
        return self._result(epoch, False, "max_epochs")
