"""Adam-style adaptive gradient tuner.

The paper's step-size schedule is "inspired by adaptive learning rate
based gradient methods [Adam]" and the conclusion invites "running more
optimum tuning algorithms" on the framework.  This tuner goes the rest of
the way: per-knob first/second moment estimates (Adam proper) over the
same finite-difference gradients Listing 3 computes, sharing the
evaluator, loss and stopping machinery so it drops into every use case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tuning.base import LossFn, Tuner, TuningResult
from repro.tuning.evaluator import Evaluator


@dataclass(frozen=True)
class AdamParams:
    """Adam hyper-parameters on the knob-index lattice.

    Attributes:
        max_epochs: tuning epoch limit.
        delta: finite-difference perturbation (lattice-index units).
        learning_rate: base step in index units.
        beta1 / beta2: first/second moment decay rates.
        epsilon: numerical floor for the second moment.
        target_loss: early-stop threshold.
        patience: epochs without improvement before stopping.
    """

    max_epochs: int = 60
    delta: float = 1.0
    learning_rate: float = 1.2
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    target_loss: float = 1e-4
    patience: int = 12


class AdamTuner(Tuner):
    """Adam over finite-difference gradients of the knob lattice.

    Uses the same 2-x-knobs gradient checks per epoch as the paper's GD,
    so cost accounting is directly comparable.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        loss: LossFn,
        params: AdamParams | None = None,
        initial: np.ndarray | None = None,
        seed: int = 0,
    ):
        super().__init__(evaluator, loss, seed=seed)
        self.params = params or AdamParams()
        self.space = evaluator.knob_space
        self._initial = initial

    def _probe_batch(
        self, kc: np.ndarray
    ) -> tuple[list[tuple[int, np.ndarray, np.ndarray, float]], list[dict]]:
        """Evaluate the epoch — base + all gradient probes — as ONE batch.

        Same whole-epoch shape as the paper's GD: the base configuration
        rides at index 0 and probe *n*'s plus/minus at ``1 + 2n`` /
        ``2 + 2n``, so the execution backend sees the full generation at
        once (the shape the group-batched evaluation path collapses).
        """
        p = self.params
        probes: list[tuple[int, np.ndarray, np.ndarray, float]] = []
        for i in range(len(self.space)):
            e = np.zeros(len(kc))
            e[i] = p.delta
            plus = self.space.clip(kc + e)
            minus = self.space.clip(kc - e)
            span = plus[i] - minus[i]
            if span <= 0:
                continue
            probes.append((i, plus, minus, span))
        vectors = [kc] + [
            v for _, plus, minus, _ in probes for v in (plus, minus)
        ]
        return probes, self.evaluator.evaluate_batch(vectors)

    def _gradient_from(
        self,
        probes: list[tuple[int, np.ndarray, np.ndarray, float]],
        metrics_batch: list[dict],
    ) -> np.ndarray:
        """Finite-difference gradient from one epoch's batch results."""
        grad = np.zeros(len(self.space))
        for n, (i, plus, minus, span) in enumerate(probes):
            loss_plus = self._observe(
                self.space.materialize(plus), metrics_batch[1 + 2 * n]
            )
            loss_minus = self._observe(
                self.space.materialize(minus), metrics_batch[2 + 2 * n]
            )
            grad[i] = (loss_plus - loss_minus) / span
        return grad

    def run(self) -> TuningResult:
        p = self.params
        kc = (
            self.space.clip(np.asarray(self._initial, dtype=float))
            if self._initial is not None
            else self.space.random_vector(self.rng)
        )
        m = np.zeros(len(self.space))
        v = np.zeros(len(self.space))
        stall = 0
        converged = False
        stop_reason = "max_epochs"
        epoch = 0

        for epoch in range(1, p.max_epochs + 1):
            base_config = self.space.materialize(kc)
            # Whole-epoch batch; base observed first and previous_best
            # captured before any probe observation, exactly like the
            # split evaluate() / _gradient() formulation.
            probes, metrics_batch = self._probe_batch(kc)
            base_metrics = metrics_batch[0]
            base_loss = self._observe(base_config, base_metrics)
            previous_best = self._best_loss

            grad = self._gradient_from(probes, metrics_batch)
            m = p.beta1 * m + (1 - p.beta1) * grad
            v = p.beta2 * v + (1 - p.beta2) * grad**2
            m_hat = m / (1 - p.beta1**epoch)
            v_hat = v / (1 - p.beta2**epoch)
            kc = self.space.clip(
                kc - p.learning_rate * m_hat / (np.sqrt(v_hat) + p.epsilon)
            )

            self._record_epoch(epoch, base_loss, base_metrics, base_config)
            if self._best_loss <= p.target_loss:
                converged, stop_reason = True, "target_loss"
                break
            stall = 0 if self._best_loss < previous_best - 1e-12 else stall + 1
            if stall >= p.patience:
                converged, stop_reason = True, "patience"
                break

        return self._result(epoch, converged, stop_reason)
