"""Common tuner machinery: results, history and the run loop skeleton."""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.tuning.evaluator import Evaluator

LossFn = Callable[[dict[str, float]], float]

#: Per-epoch progress lines land here at INFO.  Silent by default;
#: ``repro.cli --progress`` (or any logging config that enables this
#: logger) turns them on without touching tuner code.
progress_logger = logging.getLogger("repro.tuning.progress")


@dataclass
class EpochRecord:
    """Progress snapshot after one tuning epoch.

    ``evaluations`` is cumulative *requested* evaluations — the cost
    currency the paper compares GD and GA in (Section II-B2).
    """

    epoch: int
    loss: float
    best_loss: float
    metrics: dict[str, float]
    config: dict
    evaluations: int


@dataclass
class TuningResult:
    """Outcome of a tuning run.

    Attributes:
        best_config: best materialized knob configuration found.
        best_metrics: metrics measured at that configuration.
        best_loss: its loss.
        epochs: epochs executed.
        converged: whether a convergence/target criterion fired (rather
            than the epoch limit).
        stop_reason: human-readable stop cause.
        history: per-epoch records (the "epoch progression" output of
            Section III-F).
        requested_evaluations / unique_evaluations: evaluation accounting.
    """

    best_config: dict
    best_metrics: dict[str, float]
    best_loss: float
    epochs: int
    converged: bool
    stop_reason: str
    history: list[EpochRecord] = field(default_factory=list)
    requested_evaluations: int = 0
    unique_evaluations: int = 0

    def loss_curve(self) -> list[float]:
        """Best-so-far loss per epoch (for Figs 5/6 style plots)."""
        return [r.best_loss for r in self.history]


class Tuner:
    """Base class: holds the evaluator/loss pair and the best-seen state."""

    def __init__(self, evaluator: Evaluator, loss: LossFn,
                 seed: int = 0):
        self.evaluator = evaluator
        self.loss = loss
        self.rng = np.random.default_rng(seed)
        self.history: list[EpochRecord] = []
        self._best_loss = float("inf")
        self._best_config: dict | None = None
        self._best_metrics: dict[str, float] | None = None
        self._epoch_mark = time.perf_counter()
        self._eval_mark = 0

    def _observe(self, config: dict, metrics: dict[str, float]) -> float:
        """Score a configuration and update the best-seen state."""
        value = self.loss(metrics)
        if value < self._best_loss:
            self._best_loss = value
            self._best_config = dict(config)
            self._best_metrics = dict(metrics)
        return value

    def _record_epoch(self, epoch: int, loss_value: float,
                      metrics: dict[str, float], config: dict) -> None:
        now = time.perf_counter()
        epoch_s = now - self._epoch_mark
        self._epoch_mark = now
        obs.observe("tuner.epoch", epoch_s)
        obs.inc("tuner.epochs")
        requested = self.evaluator.requested_evaluations
        epoch_evals = requested - self._eval_mark
        self._eval_mark = requested
        self.history.append(
            EpochRecord(
                epoch=epoch,
                loss=loss_value,
                best_loss=self._best_loss,
                metrics=dict(metrics),
                config=dict(config),
                evaluations=requested,
            )
        )
        if progress_logger.isEnabledFor(logging.INFO):
            cache = obs.counters("cache.result.")
            hits = cache.get("cache.result.hits", 0)
            misses = cache.get("cache.result.misses", 0)
            hit_txt = (
                f"{hits / (hits + misses) * 100.0:.1f}%"
                if hits + misses else "n/a"
            )
            rate = epoch_evals / epoch_s if epoch_s > 0 else 0.0
            progress_logger.info(
                "epoch %d: loss %.6g (best %.6g) | %d configs in %.2fs "
                "(%.1f/s) | cache hit %s",
                epoch, loss_value, self._best_loss, epoch_evals,
                epoch_s, rate, hit_txt,
            )

    def _result(self, epochs: int, converged: bool, stop_reason: str) -> TuningResult:
        if self._best_config is None:
            raise RuntimeError("tuner produced no evaluations")
        return TuningResult(
            best_config=self._best_config,
            best_metrics=self._best_metrics or {},
            best_loss=self._best_loss,
            epochs=epochs,
            converged=converged,
            stop_reason=stop_reason,
            history=self.history,
            requested_evaluations=self.evaluator.requested_evaluations,
            unique_evaluations=self.evaluator.unique_evaluations,
        )

    def run(self) -> TuningResult:
        """Execute the tuning loop (implemented by subclasses)."""
        raise NotImplementedError
