"""Common tuner machinery: results, history and the run loop skeleton."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.tuning.evaluator import Evaluator

LossFn = Callable[[dict[str, float]], float]


@dataclass
class EpochRecord:
    """Progress snapshot after one tuning epoch.

    ``evaluations`` is cumulative *requested* evaluations — the cost
    currency the paper compares GD and GA in (Section II-B2).
    """

    epoch: int
    loss: float
    best_loss: float
    metrics: dict[str, float]
    config: dict
    evaluations: int


@dataclass
class TuningResult:
    """Outcome of a tuning run.

    Attributes:
        best_config: best materialized knob configuration found.
        best_metrics: metrics measured at that configuration.
        best_loss: its loss.
        epochs: epochs executed.
        converged: whether a convergence/target criterion fired (rather
            than the epoch limit).
        stop_reason: human-readable stop cause.
        history: per-epoch records (the "epoch progression" output of
            Section III-F).
        requested_evaluations / unique_evaluations: evaluation accounting.
    """

    best_config: dict
    best_metrics: dict[str, float]
    best_loss: float
    epochs: int
    converged: bool
    stop_reason: str
    history: list[EpochRecord] = field(default_factory=list)
    requested_evaluations: int = 0
    unique_evaluations: int = 0

    def loss_curve(self) -> list[float]:
        """Best-so-far loss per epoch (for Figs 5/6 style plots)."""
        return [r.best_loss for r in self.history]


class Tuner:
    """Base class: holds the evaluator/loss pair and the best-seen state."""

    def __init__(self, evaluator: Evaluator, loss: LossFn,
                 seed: int = 0):
        self.evaluator = evaluator
        self.loss = loss
        self.rng = np.random.default_rng(seed)
        self.history: list[EpochRecord] = []
        self._best_loss = float("inf")
        self._best_config: dict | None = None
        self._best_metrics: dict[str, float] | None = None

    def _observe(self, config: dict, metrics: dict[str, float]) -> float:
        """Score a configuration and update the best-seen state."""
        value = self.loss(metrics)
        if value < self._best_loss:
            self._best_loss = value
            self._best_config = dict(config)
            self._best_metrics = dict(metrics)
        return value

    def _record_epoch(self, epoch: int, loss_value: float,
                      metrics: dict[str, float], config: dict) -> None:
        self.history.append(
            EpochRecord(
                epoch=epoch,
                loss=loss_value,
                best_loss=self._best_loss,
                metrics=dict(metrics),
                config=dict(config),
                evaluations=self.evaluator.requested_evaluations,
            )
        )

    def _result(self, epochs: int, converged: bool, stop_reason: str) -> TuningResult:
        if self._best_config is None:
            raise RuntimeError("tuner produced no evaluations")
        return TuningResult(
            best_config=self._best_config,
            best_metrics=self._best_metrics or {},
            best_loss=self._best_loss,
            epochs=epochs,
            converged=converged,
            stop_reason=stop_reason,
            history=self.history,
            requested_evaluations=self.evaluator.requested_evaluations,
            unique_evaluations=self.evaluator.unique_evaluations,
        )

    def run(self) -> TuningResult:
        """Execute the tuning loop (implemented by subclasses)."""
        raise NotImplementedError
