"""Execution backends: where evaluation batches actually run.

The tuning stack above this package is backend-agnostic — tuners hand the
:class:`~repro.tuning.evaluator.Evaluator` a *batch* of candidate knob
configurations per epoch, the evaluator dedups them, and whatever remains
is dispatched here.  :func:`backend_for` picks between in-process serial
execution, a thread pool, a ``concurrent.futures`` process pool and the
distributed coordinator/worker service (:mod:`repro.dist`) from the
``backend=``/``jobs=`` knobs of :class:`repro.core.config.MicroGradConfig`;
:class:`DiskResultCache` persists finished evaluations across runs, and
every backend carries the run's ``cache_dir`` so workers share the
on-disk trace-artifact store.
"""

from repro.dist.backend import DistributedBackend
from repro.exec.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    backend_for,
)
from repro.exec.cache import DiskResultCache
from repro.exec.jobs import (
    evaluate_configs,
    evaluate_configs_stream,
    run_clone_jobs,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "DistributedBackend",
    "backend_for",
    "DiskResultCache",
    "evaluate_configs",
    "evaluate_configs_stream",
    "run_clone_jobs",
]
