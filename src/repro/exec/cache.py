"""Persistent on-disk result cache for finished evaluations.

Simulating one candidate test case is the expensive unit of work in every
MicroGrad run, and the knob lattice is discrete — re-runs, seed sweeps
and tuner comparisons revisit the same (core, instruction budget, knob
configuration) points constantly.  This cache persists each evaluated
point as one small JSON file so repeated runs skip the simulator
entirely.  Files are written atomically (temp + rename), so concurrent
worker processes sharing a cache directory can only ever race to write
identical content.

Two guards keep long campaigns healthy:

* ``max_entries`` caps the directory size; once exceeded, the least-
  recently-used entries (by file mtime — disk hits re-touch their file)
  are compacted away.
* ``schema`` stamps every entry with the identity of the simulation
  semantics that produced it (the trace-artifact fingerprint of
  :func:`repro.sim.artifact.trace_schema_fingerprint`).  Entries
  recorded under a *different* schema read as misses; entries without a
  stamp (pre-schema caches) stay valid, so existing caches survive
  refactors that keep metrics bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro import obs


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class DiskResultCache:
    """JSON file-per-entry cache keyed by (context, knob configuration).

    ``context`` identifies everything *besides* the knob configuration
    that determines the metrics — platform/core name, instruction budget,
    loop size and generation seed — so distinct experimental setups never
    alias.  Entries record the key material alongside the metrics, which
    makes the cache directory self-describing and auditable.

    Args:
        root: cache directory (created if missing).
        max_entries: optional entry cap; LRU-by-mtime compaction keeps
            the directory at or below it (checked every few writes).
        schema: optional simulation-semantics stamp recorded in every
            entry; a stamped entry with a different schema is a miss.
    """

    def __init__(
        self,
        root: str | Path,
        max_entries: int | None = None,
        schema: str | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ValueError(
                f"cache_dir {str(self.root)!r} exists and is not a directory"
            ) from exc
        self.max_entries = max_entries
        self.schema = schema
        self._memory: dict[str, dict[str, float]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Compact every few writes, not every write: a glob per put is
        # O(entries), so the interval amortizes it while bounding the
        # overshoot to max_entries + interval.
        self._compact_interval = (
            min(64, max(1, max_entries // 8)) if max_entries else 0
        )
        self._puts_since_compact = 0

    def digest(self, context: str, config_key: tuple) -> str:
        """Stable content hash of one (context, configuration) point."""
        material = _canonical_json(
            {"context": context, "config": [list(kv) for kv in config_key]}
        )
        return hashlib.sha256(material.encode()).hexdigest()[:32]

    def _path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def _memory_hit(self, digest: str) -> dict[str, float]:
        self.hits += 1
        obs.inc("cache.result.hits")
        if self.max_entries is not None:
            # Keep recency honest for hits served from memory too,
            # or compaction would evict the hottest entries first.
            try:
                os.utime(self._path(digest))
            except OSError:
                pass
        return dict(self._memory[digest])

    def _read_entry(self, digest: str) -> dict[str, float] | None:
        """Disk read + validate + promote; counts the hit or miss."""
        path = self._path(digest)
        try:
            entry = json.loads(path.read_text())
            metrics = {k: float(v) for k, v in entry["metrics"].items()}
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            obs.inc("cache.result.misses")
            return None
        stamped = entry.get("schema")
        if stamped is not None and self.schema is not None \
                and stamped != self.schema:
            # Produced under different simulation semantics: stale.
            self.misses += 1
            obs.inc("cache.result.misses")
            return None
        try:
            # Disk hit: refresh recency so LRU compaction spares it.
            os.utime(path)
        except OSError:
            pass
        self._memory[digest] = metrics
        self.hits += 1
        obs.inc("cache.result.hits")
        return dict(metrics)

    def get(self, context: str, config_key: tuple) -> dict[str, float] | None:
        """Look up cached metrics; ``None`` on a miss or unreadable entry."""
        digest = self.digest(context, config_key)
        if digest in self._memory:
            return self._memory_hit(digest)
        return self._read_entry(digest)

    def get_many(
        self, context: str, config_keys: list[tuple]
    ) -> list[dict[str, float] | None]:
        """Batched :meth:`get`: one directory pass for the disk probes.

        Memory-promoted entries are served directly; the rest are
        checked against a single ``os.scandir`` listing, so a whole
        generation's cache probe costs one directory read instead of a
        stat + read round-trip per missing config.  Hit/miss counters,
        recency refresh and memory promotion behave exactly as if
        :meth:`get` had been called per key, in order.
        """
        digests = [self.digest(context, key) for key in config_keys]
        wanted = {
            f"{d}.json" for d in digests if d not in self._memory
        }
        present: set[str] = set()
        if wanted:
            with obs.span("cache.result.probe"):
                try:
                    with os.scandir(self.root) as it:
                        present = {e.name for e in it if e.name in wanted}
                except OSError:
                    present = set()
        results: list[dict[str, float] | None] = []
        for digest in digests:
            if digest in self._memory:
                # Covers duplicates promoted earlier in this same batch.
                results.append(self._memory_hit(digest))
            elif f"{digest}.json" in present:
                results.append(self._read_entry(digest))
            else:
                self.misses += 1
                obs.inc("cache.result.misses")
                results.append(None)
        return results

    def put(self, context: str, config_key: tuple,
            metrics: dict[str, float]) -> None:
        """Persist one evaluation result (atomic, last writer wins)."""
        digest = self.digest(context, config_key)
        self._memory[digest] = dict(metrics)
        entry = {
            "context": context,
            "config": [list(kv) for kv in config_key],
            "metrics": {k: float(v) for k, v in metrics.items()},
        }
        if self.schema is not None:
            entry["schema"] = self.schema
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(_canonical_json(entry))
            os.replace(tmp, self._path(digest))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        if self.max_entries is not None:
            self._puts_since_compact += 1
            if self._puts_since_compact >= self._compact_interval:
                self._puts_since_compact = 0
                self.compact()

    def compact(self) -> int:
        """Evict least-recently-used entries beyond ``max_entries``.

        Returns:
            Number of entries removed (0 when unbounded or under cap).
        """
        if self.max_entries is None:
            return 0
        entries = []
        for path in self.root.glob("*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return 0
        entries.sort(key=lambda pair: pair[0])
        removed = 0
        for _, path in entries[:excess]:
            try:
                path.unlink()
            except OSError:
                continue
            # Drop the promoted copy too, so an evicted point is really
            # gone rather than resurrected from process memory.
            self._memory.pop(path.stem, None)
            removed += 1
        self.evictions += removed
        obs.inc("cache.result.evictions", removed)
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
