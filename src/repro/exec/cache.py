"""Persistent on-disk result cache for finished evaluations.

Simulating one candidate test case is the expensive unit of work in every
MicroGrad run, and the knob lattice is discrete — re-runs, seed sweeps
and tuner comparisons revisit the same (core, instruction budget, knob
configuration) points constantly.  This cache persists each evaluated
point as one small JSON file so repeated runs skip the simulator
entirely.  Files are written atomically (temp + rename), so concurrent
worker processes sharing a cache directory can only ever race to write
identical content.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class DiskResultCache:
    """JSON file-per-entry cache keyed by (context, knob configuration).

    ``context`` identifies everything *besides* the knob configuration
    that determines the metrics — platform/core name, instruction budget,
    loop size and generation seed — so distinct experimental setups never
    alias.  Entries record the key material alongside the metrics, which
    makes the cache directory self-describing and auditable.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ValueError(
                f"cache_dir {str(self.root)!r} exists and is not a directory"
            ) from exc
        self._memory: dict[str, dict[str, float]] = {}
        self.hits = 0
        self.misses = 0

    def digest(self, context: str, config_key: tuple) -> str:
        """Stable content hash of one (context, configuration) point."""
        material = _canonical_json(
            {"context": context, "config": [list(kv) for kv in config_key]}
        )
        return hashlib.sha256(material.encode()).hexdigest()[:32]

    def _path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def get(self, context: str, config_key: tuple) -> dict[str, float] | None:
        """Look up cached metrics; ``None`` on a miss or unreadable entry."""
        digest = self.digest(context, config_key)
        if digest in self._memory:
            self.hits += 1
            return dict(self._memory[digest])
        path = self._path(digest)
        try:
            entry = json.loads(path.read_text())
            metrics = {k: float(v) for k, v in entry["metrics"].items()}
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self._memory[digest] = metrics
        self.hits += 1
        return dict(metrics)

    def put(self, context: str, config_key: tuple,
            metrics: dict[str, float]) -> None:
        """Persist one evaluation result (atomic, last writer wins)."""
        digest = self.digest(context, config_key)
        self._memory[digest] = dict(metrics)
        entry = {
            "context": context,
            "config": [list(kv) for kv in config_key],
            "metrics": {k: float(v) for k, v in metrics.items()},
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(_canonical_json(entry))
            os.replace(tmp, self._path(digest))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
