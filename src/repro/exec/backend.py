"""Pluggable execution backends for independent evaluation jobs.

Modeled on the worker-pool idiom of instrumentation infrastructures: the
orchestration layer (tuners, the cloning driver) only ever says "run this
function over these items"; *how* the items run — in-process, on a thread
pool, fanned out over worker processes, or across a distributed cluster
(:mod:`repro.dist`) — is the backend's business.  Every backend preserves
input order, so a tuning run is bit-identical regardless of which one
executes it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterator, Protocol, Sequence, runtime_checkable

#: Recognized ``MicroGradConfig.backend`` spellings.
BACKEND_NAMES = ("auto", "serial", "thread", "process", "dist")


def default_jobs() -> int:
    """Worker count used when ``jobs=0`` asks for "all cores"."""
    return max(1, (os.cpu_count() or 2) - 1)


class CacheSettingsMixin:
    """Shared ``cache_dir``/``cache_max_entries`` plumbing.

    Every backend carries the run's cache settings so the job layer
    (:func:`repro.exec.jobs.evaluate_configs`) can attach the shared
    on-disk trace-artifact store in whichever process evaluation runs —
    the calling process for serial/thread execution, each worker for
    pools and distributed clusters.
    """

    cache_dir: str | None = None
    cache_max_entries: int | None = None
    #: Smallest chunk worth shipping when evaluation can batch
    #: equivalence groups: chunking below this size shears groups apart
    #: and forfeits the shared simulation pass (see
    #: :func:`chunk_on_groups`).  ``1`` preserves the historical
    #: pure-``jobs`` chunking.
    batch_group_min: int = 1

    def _set_cache(self, cache_dir: str | None,
                   cache_max_entries: int | None,
                   batch_group_min: int = 1) -> None:
        self.cache_dir = cache_dir
        self.cache_max_entries = cache_max_entries
        self.batch_group_min = max(1, int(batch_group_min))

    def chunk_hint(self, n_items: int) -> int:
        """How many chunks an ``n_items`` batch should split into.

        The worker count (``self.jobs`` — on the distributed backend a
        *live* connection count) capped so the average chunk stays at
        least :attr:`batch_group_min` items: more workers than that
        would shear equivalence groups across chunk boundaries, and a
        split group forfeits the generation-batched shared pass.
        """
        chunks = max(1, self.jobs)
        if self.batch_group_min > 1:
            chunks = min(chunks, max(1, n_items // self.batch_group_min))
        return chunks

    def artifact_store_spec(self) -> tuple[str, int | None] | None:
        """(store root, max entries) for workers, or ``None`` when off."""
        if not self.cache_dir:
            return None
        return (
            os.path.join(str(self.cache_dir), "artifacts"),
            self.cache_max_entries,
        )


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can map a function over items, preserving order."""

    name: str
    jobs: int

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item; results come back in input order."""
        ...

    def map_stream(self, fn: Callable, items: Sequence) -> Iterator:
        """Like :meth:`map`, but yield each result as soon as it (and
        every earlier one) is available.  ``list(map_stream(fn, items))
        == map(fn, items)`` on every backend; the difference is purely
        *when* early results surface."""
        ...

    def close(self) -> None:
        """Release worker resources (idempotent)."""
        ...


class SerialBackend(CacheSettingsMixin):
    """In-process, one-at-a-time execution — the reference backend."""

    name = "serial"
    jobs = 1

    def __init__(self, cache_dir: str | None = None,
                 cache_max_entries: int | None = None,
                 batch_group_min: int = 1):
        self._set_cache(cache_dir, cache_max_entries, batch_group_min)

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]

    def map_stream(self, fn: Callable, items: Sequence) -> Iterator:
        for item in items:
            yield fn(item)

    def close(self) -> None:  # nothing to release
        pass


class ThreadBackend(CacheSettingsMixin):
    """Fan items out to an in-process thread pool.

    For platforms whose evaluation is dominated by pickling rather than
    compute — :class:`~repro.core.platform.NativeExecutionPlatform`
    interprets short windows, so shipping whole platforms and programs
    to worker processes costs more than it saves — threads share memory
    and skip serialization entirely.  Unpicklable platforms (closures,
    injected fakes) also run fine here.  Results preserve input order,
    so runs are bit-identical to serial execution.
    """

    def __init__(self, jobs: int | None = None,
                 cache_dir: str | None = None,
                 cache_max_entries: int | None = None,
                 batch_group_min: int = 1):
        self.jobs = jobs if jobs and jobs > 0 else default_jobs()
        self.name = f"thread[{self.jobs}]"
        self._set_cache(cache_dir, cache_max_entries, batch_group_min)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map(self, fn: Callable, items: Sequence) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def map_stream(self, fn: Callable, items: Sequence) -> Iterator:
        items = list(items)
        if len(items) <= 1:
            for item in items:
                yield fn(item)
            return
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        for future in futures:
            yield future.result()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ThreadBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessPoolBackend(CacheSettingsMixin):
    """Fan items out to a ``concurrent.futures`` process pool.

    The pool is created lazily on first use and reused across calls, so
    per-epoch batches do not pay worker startup repeatedly.  ``fn`` and
    the items must be picklable.  If the host cannot spawn processes at
    all (restricted sandboxes), the backend degrades to serial execution
    — results are identical either way, only slower.
    """

    def __init__(self, jobs: int | None = None,
                 cache_dir: str | None = None,
                 cache_max_entries: int | None = None,
                 batch_group_min: int = 1):
        self.jobs = jobs if jobs and jobs > 0 else default_jobs()
        self.name = f"process[{self.jobs}]"
        self._set_cache(cache_dir, cache_max_entries, batch_group_min)
        self._pool: ProcessPoolExecutor | None = None
        self._broken = False

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._broken:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            except (OSError, PermissionError):
                self._broken = True
                return None
        return self._pool

    def map(self, fn: Callable, items: Sequence) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        if pool is None:
            return [fn(item) for item in items]
        try:
            return list(pool.map(fn, items))
        except BrokenProcessPool:
            # A worker died (OOM, signal); recreate on next call but do
            # not lose this batch.
            self.close()
            return [fn(item) for item in items]

    def map_stream(self, fn: Callable, items: Sequence) -> Iterator:
        items = list(items)
        pool = self._ensure_pool() if len(items) > 1 else None
        if pool is None:
            for item in items:
                yield fn(item)
            return
        try:
            futures = [pool.submit(fn, item) for item in items]
        except BrokenProcessPool:
            # The pool broke while we were still submitting: same
            # serial degradation as map(), nothing yielded yet.
            self.close()
            for item in items:
                yield fn(item)
            return
        for index, future in enumerate(futures):
            try:
                yield future.result()
            except BrokenProcessPool:
                # A worker died mid-stream.  Results already yielded
                # were fine; finish the remainder in-process (same
                # degradation map() applies to the whole batch).
                self.close()
                for item in items[index:]:
                    yield fn(item)
                return

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


def _make_serial(jobs, cache, dist):
    return SerialBackend(**cache)


def _make_thread(jobs, cache, dist):
    return ThreadBackend(jobs, **cache)


def _make_process(jobs, cache, dist):
    return ProcessPoolBackend(jobs, **cache)


def _make_dist(jobs, cache, dist):
    from repro.dist.backend import DistributedBackend

    return DistributedBackend(jobs, **cache, **dist)


def _make_auto(jobs, cache, dist):
    wants_parallel = jobs is not None and (jobs == 0 or jobs > 1)
    return (ProcessPoolBackend(jobs, **cache) if wants_parallel
            else SerialBackend(**cache))


#: Registry mapping ``backend=`` spellings to factories; each factory
#: takes ``(jobs, cache-settings dict, dist-settings dict)``.
_BACKEND_FACTORIES = {
    "serial": _make_serial,
    "thread": _make_thread,
    "process": _make_process,
    "dist": _make_dist,
    "auto": _make_auto,
}


def backend_for(
    backend: str = "auto",
    jobs: int | None = 1,
    *,
    cache_dir: str | None = None,
    cache_max_entries: int | None = None,
    dist_addr: str | None = None,
    dist_workers: int | None = None,
    dist_lease_timeout: float | None = None,
    dist_priority: float | None = None,
    dist_secret: str | None = None,
    batch_group_min: int = 1,
) -> ExecutionBackend:
    """Build the execution backend a config asks for.

    Args:
        backend: ``"serial"``, ``"thread"``, ``"process"``, ``"dist"``
            or ``"auto"``.  Auto picks the process pool whenever more
            than one job is requested (``jobs > 1`` or ``jobs == 0``
            meaning "all cores"); ``"thread"`` suits native-execution
            platforms where process pickling is pure overhead;
            ``"dist"`` fans out to coordinator/worker clusters
            (:mod:`repro.dist`).
        jobs: worker count; ``0`` means all cores, ``None``/``1`` serial.
        cache_dir: run cache directory, propagated to every backend so
            workers can share the on-disk trace-artifact store.
        cache_max_entries: cache entry cap (LRU compaction).
        dist_addr: ``host:port`` of an external persistent cluster
            (``repro.cli serve``) to join as a client session (dist
            only; ``None`` starts a private loopback coordinator).
        dist_workers: local worker processes the dist backend spawns in
            owner mode (dist only; rejected alongside ``dist_addr``).
        dist_lease_timeout: seconds a leased dist job may stay
            unresolved before the coordinator reschedules it (dist
            only; ``None`` keeps the coordinator default).
        dist_priority: fair-share weight of the client session on a
            shared cluster (dist only; ``None`` means equal share).
        dist_secret: shared secret answering a secured coordinator's
            auth challenge (dist only; ``None`` falls back to
            ``$REPRO_DIST_SECRET``).
        batch_group_min: smallest chunk worth shipping when evaluation
            batches equivalence groups; caps every backend's
            ``chunk_hint`` so whole groups land on one worker.
    """
    try:
        factory = _BACKEND_FACTORIES[backend]
    except KeyError:
        valid = "|".join(n for n in BACKEND_NAMES if n != "auto")
        raise ValueError(
            f"unknown execution backend {backend!r}: valid backends are "
            f"{valid} (or 'auto' to pick from the jobs count)"
        ) from None
    if backend != "dist" and (dist_addr is not None
                              or dist_workers is not None
                              or dist_lease_timeout is not None
                              or dist_priority is not None
                              or dist_secret is not None):
        # Silently ignoring these would leave the run outside the
        # cluster the user pointed it at.
        raise ValueError(
            f"dist_addr/dist_workers/dist_lease_timeout/dist_priority/"
            f"dist_secret only apply to backend='dist', got "
            f"backend={backend!r}"
        )
    cache = {"cache_dir": cache_dir, "cache_max_entries": cache_max_entries,
             "batch_group_min": batch_group_min}
    dist = {"addr": dist_addr, "spawn_workers": dist_workers,
            "lease_timeout": dist_lease_timeout,
            "priority": dist_priority, "secret": dist_secret}
    return factory(jobs, cache, dist)


def chunk_evenly(items: Sequence, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous, even pieces.

    Order is preserved under concatenation; no chunk is empty.
    """
    items = list(items)
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def chunk_on_groups(
    items: Sequence, chunks: int, keys: Sequence, min_chunk: int = 1
) -> list[list]:
    """Split ``items`` into contiguous pieces along group boundaries.

    ``keys[i]`` labels item ``i``'s equivalence group; adjacent items
    with equal keys form a *run*, and no run is ever split across two
    chunks — a split group forfeits the generation-batched shared pass,
    which costs more than a slightly uneven chunk ever could.  The chunk
    count is additionally capped so the *average* chunk holds at least
    ``min_chunk`` items (individual chunks may be smaller when group
    layout forces it — this is a packing hint, not a guarantee).

    Order is preserved under concatenation; no chunk is empty.  With
    all-distinct keys and ``min_chunk=1`` this degenerates to
    :func:`chunk_evenly`-style behavior.
    """
    items = list(items)
    keys = list(keys)
    if len(items) != len(keys):
        raise ValueError(f"{len(items)} items but {len(keys)} keys")
    if not items:
        return []
    runs: list[int] = []
    start = 0
    for i in range(1, len(keys) + 1):
        if i == len(keys) or keys[i] != keys[start]:
            runs.append(i - start)
            start = i
    chunks = max(1, min(
        chunks,
        max(1, len(items) // max(1, min_chunk)),
        len(runs),
    ))
    out = []
    pos = 0
    run_idx = 0
    remaining = len(items)
    for chunks_left in range(chunks, 0, -1):
        if chunks_left == 1:
            out.append(items[pos:])
            break
        target = -(-remaining // chunks_left)  # ceil
        # Reserve one run for each later chunk so none ends up empty.
        limit = len(runs) - (chunks_left - 1)
        size = runs[run_idx]
        run_idx += 1
        while run_idx < limit and size + runs[run_idx] <= target:
            size += runs[run_idx]
            run_idx += 1
        out.append(items[pos:pos + size])
        pos += size
        remaining -= size
    return out
