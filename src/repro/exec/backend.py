"""Pluggable execution backends for independent evaluation jobs.

Modeled on the worker-pool idiom of instrumentation infrastructures: the
orchestration layer (tuners, the cloning driver) only ever says "run this
function over these items"; *how* the items run — in-process, or fanned
out over worker processes — is the backend's business.  Both backends
preserve input order, so a tuning run is bit-identical regardless of which
one executes it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Protocol, Sequence, runtime_checkable

#: Recognized ``MicroGradConfig.backend`` spellings.
BACKEND_NAMES = ("auto", "serial", "thread", "process")


def default_jobs() -> int:
    """Worker count used when ``jobs=0`` asks for "all cores"."""
    return max(1, (os.cpu_count() or 2) - 1)


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can map a function over items, preserving order."""

    name: str
    jobs: int

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item; results come back in input order."""
        ...

    def close(self) -> None:
        """Release worker resources (idempotent)."""
        ...


class SerialBackend:
    """In-process, one-at-a-time execution — the reference backend."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]

    def close(self) -> None:  # nothing to release
        pass


class ThreadBackend:
    """Fan items out to an in-process thread pool.

    For platforms whose evaluation is dominated by pickling rather than
    compute — :class:`~repro.core.platform.NativeExecutionPlatform`
    interprets short windows, so shipping whole platforms and programs
    to worker processes costs more than it saves — threads share memory
    and skip serialization entirely.  Unpicklable platforms (closures,
    injected fakes) also run fine here.  Results preserve input order,
    so runs are bit-identical to serial execution.
    """

    def __init__(self, jobs: int | None = None):
        self.jobs = jobs if jobs and jobs > 0 else default_jobs()
        self.name = f"thread[{self.jobs}]"
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map(self, fn: Callable, items: Sequence) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ThreadBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessPoolBackend:
    """Fan items out to a ``concurrent.futures`` process pool.

    The pool is created lazily on first use and reused across calls, so
    per-epoch batches do not pay worker startup repeatedly.  ``fn`` and
    the items must be picklable.  If the host cannot spawn processes at
    all (restricted sandboxes), the backend degrades to serial execution
    — results are identical either way, only slower.
    """

    def __init__(self, jobs: int | None = None):
        self.jobs = jobs if jobs and jobs > 0 else default_jobs()
        self.name = f"process[{self.jobs}]"
        self._pool: ProcessPoolExecutor | None = None
        self._broken = False

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._broken:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            except (OSError, PermissionError):
                self._broken = True
                return None
        return self._pool

    def map(self, fn: Callable, items: Sequence) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        if pool is None:
            return [fn(item) for item in items]
        try:
            return list(pool.map(fn, items))
        except BrokenProcessPool:
            # A worker died (OOM, signal); recreate on next call but do
            # not lose this batch.
            self.close()
            return [fn(item) for item in items]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


def backend_for(backend: str = "auto", jobs: int | None = 1) -> ExecutionBackend:
    """Build the execution backend a config asks for.

    Args:
        backend: ``"serial"``, ``"thread"``, ``"process"`` or ``"auto"``.
            Auto picks the process pool whenever more than one job is
            requested (``jobs > 1`` or ``jobs == 0`` meaning "all
            cores"); ``"thread"`` suits native-execution platforms where
            process pickling is pure overhead.
        jobs: worker count; ``0`` means all cores, ``None``/``1`` serial.
    """
    if backend not in BACKEND_NAMES:
        raise ValueError(
            f"backend must be one of {BACKEND_NAMES}, got {backend!r}"
        )
    if backend == "serial":
        return SerialBackend()
    if backend == "thread":
        return ThreadBackend(jobs)
    if backend == "process":
        return ProcessPoolBackend(jobs)
    wants_parallel = jobs is not None and (jobs == 0 or jobs > 1)
    return ProcessPoolBackend(jobs) if wants_parallel else SerialBackend()


def chunk_evenly(items: Sequence, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous, even pieces.

    Order is preserved under concatenation; no chunk is empty.
    """
    items = list(items)
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out
