"""Picklable job functions dispatched through execution backends.

Worker processes receive module-level functions plus plain-data arguments
(platforms, generation options and knob configurations all pickle), so
generation **and** simulation run inside the worker — the parent process
only ships knob dictionaries out and metric dictionaries back.

Every chunk job additionally returns a :class:`~repro.obs.MetricsSnapshot`
of the metrics it recorded (engine paths, cache hits, stage spans) so
counters survive the process boundary: the caller folds each chunk's
snapshot into its own registry via :func:`repro.obs.merge_remote`, which
skips same-process echoes (serial/thread backends record directly) and
merges foreign ones (process pools, distributed workers).
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Iterator, Sequence

from repro import obs
from repro.codegen.wrapper import (
    GenerationOptions,
    generate_test_case,
    generation_fingerprint,
)
from repro.exec.backend import ExecutionBackend, chunk_evenly, chunk_on_groups

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import MicroGradConfig
    from repro.core.outputs import MicroGradResult
    from repro.core.platform import EvaluationPlatform


def _attach_store(store_spec: tuple[str, int | None] | None) -> None:
    """Attach the shared on-disk trace-artifact store in this process.

    Attach is idempotent, so repeated chunks in a reused worker pay
    nothing.
    """
    if store_spec is not None:
        from repro.sim.artifact import attach_artifact_store

        attach_artifact_store(store_spec[0], max_entries=store_spec[1])


def _evaluate_chunk(platform, options: GenerationOptions,
                    store_spec: tuple[str, int | None] | None,
                    configs: list[dict]):
    """Generate and evaluate one contiguous chunk of configurations.

    ``store_spec`` (the backend's ``artifact_store_spec()``) attaches the
    shared on-disk trace-artifact store in whichever process the chunk
    runs.

    Returns ``(metrics_list, snapshot)`` — the per-config metrics plus
    the chunk's metrics delta for the caller to merge.
    """
    _attach_store(store_spec)
    from repro.sim.events import record_engine_path

    with obs.collect() as scope, obs.span("exec.chunk"):
        record_engine_path("evaluate.single", len(configs))
        programs = [
            generate_test_case(config, options) for config in configs
        ]
        results = platform.evaluate_many(programs)
    return results, scope.snapshot()


def _evaluate_chunk_grouped(platform, options: GenerationOptions,
                            store_spec: tuple[str, int | None] | None,
                            configs: list[dict]):
    """Generate and evaluate one chunk, collapsing equivalence groups.

    Configs with equal :func:`generation_fingerprint` provably generate
    the identical program, so each group is generated **once** and
    dispatched through one config-batched shared simulation pass
    (``platform.evaluate_group`` →
    :meth:`~repro.sim.simulator.Simulator.run_group`); results fan back
    out per config.  Grouping covers the whole chunk, not just adjacent
    runs, so an unsorted GA population still collapses its clone
    children.  Bit-identical to :func:`_evaluate_chunk`.

    Returns ``(metrics_list, snapshot)`` like :func:`_evaluate_chunk`.
    """
    _attach_store(store_spec)
    from repro.sim.events import record_engine_path

    with obs.collect() as scope, obs.span("exec.chunk"):
        record_engine_path("evaluate.batch")
        groups: dict[tuple, list[int]] = {}
        for i, config in enumerate(configs):
            groups.setdefault(
                generation_fingerprint(config, options), []
            ).append(i)
        results: list[dict[str, float] | None] = [None] * len(configs)
        for indices in groups.values():
            program = generate_test_case(configs[indices[0]], options)
            record_engine_path("evaluate.group")
            for i, metrics in zip(
                indices, platform.evaluate_group(program, len(indices))
            ):
                results[i] = metrics
    return results, scope.snapshot()


def _plan_chunks(
    backend: ExecutionBackend,
    platform: "EvaluationPlatform",
    options: GenerationOptions,
    configs: list[dict],
):
    """(chunks, job fn) for one evaluation batch.

    Platforms that support config batching get group-aligned chunking
    (``chunk_on_groups`` over generation fingerprints, chunk count from
    the backend's ``chunk_hint``) and the grouped job; everything else
    keeps the historical even chunking and per-config job.
    """
    spec = getattr(backend, "artifact_store_spec", lambda: None)()
    if getattr(platform, "supports_config_batch", False):
        keys = [generation_fingerprint(c, options) for c in configs]
        hint = getattr(backend, "chunk_hint", None)
        n_chunks = (
            hint(len(configs)) if hint is not None else max(1, backend.jobs)
        )
        min_chunk = getattr(backend, "batch_group_min", 1)
        chunks = chunk_on_groups(configs, n_chunks, keys, min_chunk=min_chunk)
        job = partial(_evaluate_chunk_grouped, platform, options, spec)
    else:
        chunks = chunk_evenly(configs, backend.jobs)
        job = partial(_evaluate_chunk, platform, options, spec)
    return chunks, job


def evaluate_configs(
    backend: ExecutionBackend,
    platform: "EvaluationPlatform",
    options: GenerationOptions,
    configs: Sequence[dict],
) -> list[dict[str, float]]:
    """Evaluate knob configurations through ``backend``, preserving order.

    Configurations are split into one contiguous chunk per worker so the
    platform is pickled once per chunk, not once per configuration; each
    worker generates its test cases and runs them via the platform's
    :meth:`evaluate_many` — or, when the platform supports config
    batching, one generation + one shared simulation pass per
    equivalence group (see :func:`_evaluate_chunk_grouped`).
    """
    configs = list(configs)
    if not configs:
        return []
    chunks, job = _plan_chunks(backend, platform, options, configs)
    results: list[dict[str, float]] = []
    for chunk_metrics, snapshot in backend.map(job, chunks):
        obs.merge_remote(snapshot)
        results.extend(chunk_metrics)
    return results


def evaluate_configs_stream(
    backend: ExecutionBackend,
    platform: "EvaluationPlatform",
    options: GenerationOptions,
    configs: Sequence[dict],
) -> Iterator[dict[str, float]]:
    """Yield per-config metrics in input order, as chunks complete.

    Same chunking, same results and same order as
    :func:`evaluate_configs`; the difference is that each chunk's
    metrics surface as soon as that chunk (and every earlier one) is
    done — partial-epoch results for streaming consumers.  Backends
    without ``map_stream`` (externally supplied ones) fall back to the
    batch path.
    """
    configs = list(configs)
    if not configs:
        return
    chunks, job = _plan_chunks(backend, platform, options, configs)
    stream = getattr(backend, "map_stream", None)
    mapper = stream if stream is not None else backend.map
    for chunk_metrics, snapshot in mapper(job, chunks):
        obs.merge_remote(snapshot)
        yield from chunk_metrics


def _clone_job(job):
    """Run one full cloning pass (used for per-simpoint fan-out).

    Returns ``(result, snapshot)`` so the parent process inherits the
    pass's metrics even when it ran in a worker.
    """
    from repro.core.framework import MicroGrad

    config, platform = job
    with obs.collect() as scope:
        result = MicroGrad(config, platform=platform).run()
    return result, scope.snapshot()


def run_clone_jobs(
    backend: ExecutionBackend,
    configs: Sequence["MicroGradConfig"],
    platform: "EvaluationPlatform | None" = None,
) -> list["MicroGradResult"]:
    """Run independent cloning passes through ``backend`` in input order.

    ``platform`` (when picklable) ships to every worker so parallel
    passes evaluate on exactly the platform the caller configured;
    ``None`` lets each worker rebuild the default platform from its
    sub-config.
    """
    results = []
    for result, snapshot in backend.map(
        _clone_job, [(config, platform) for config in configs]
    ):
        obs.merge_remote(snapshot)
        results.append(result)
    return results
