"""Activity-based dynamic power model (McPAT's structural form).

Dynamic power is the sum over events of ``rate x energy-per-event``::

    P_dyn = (sum_e  N_e * E_e) / (cycles / f)

Event energies are per-core-configuration: the Large core's wider rename,
bigger window and larger caches make every event more expensive, the way
McPAT scales structure energy with size/ports.  Absolute watts are
calibration constants (typical 14-22nm-class values); the experiments only
rely on the *ordering* of workloads by power, which the structural form
preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.isa.instructions import InstrClass
from repro.sim.config import CoreConfig
from repro.sim.stats import SimStats


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies in picojoules.

    ``base_per_instr`` covers fetch/decode/rename/dispatch/ROB/commit for
    every instruction; per-class entries add the execution cost; memory
    entries add cache/DRAM access cost per event.
    """

    base_per_instr: float = 22.0
    int_alu: float = 16.0
    int_mul: float = 44.0
    int_div: float = 88.0
    fp_add: float = 66.0
    fp_mul: float = 82.0
    fp_div: float = 132.0
    branch: float = 19.0
    load: float = 60.0
    store: float = 77.0
    l2_access: float = 151.0
    dram_access: float = 1200.0
    mispredict_flush: float = 220.0
    clock_tree_per_cycle: float = 82.0


#: Structure-size scaling from the Small to the Large core; wide rename /
#: bigger window / larger caches raise per-event energy.
_LARGE_SCALE = 1.9

SMALL_ENERGY = EnergyTable()
LARGE_ENERGY = EnergyTable(
    **{
        f.name: getattr(SMALL_ENERGY, f.name) * _LARGE_SCALE
        for f in fields(EnergyTable)
    }
)

#: Leakage per core (W), constant per configuration as in McPAT totals.
LEAKAGE_W = {"small": 0.25, "large": 0.60}


def energy_table_for_core(core: CoreConfig) -> EnergyTable:
    """The calibrated energy table for a Table II core."""
    return LARGE_ENERGY if core.name == "large" else SMALL_ENERGY


@dataclass
class PowerReport:
    """Estimated power for one simulation run.

    Attributes:
        dynamic_w: dynamic power in watts (the Fig 6 metric).
        leakage_w: static power in watts.
        components: per-component dynamic power breakdown (watts).
    """

    dynamic_w: float
    leakage_w: float
    components: dict[str, float]

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w


_CLASS_ENERGY_FIELD = {
    InstrClass.INT_ALU: "int_alu",
    InstrClass.INT_MUL: "int_mul",
    InstrClass.INT_DIV: "int_div",
    InstrClass.FP_ADD: "fp_add",
    InstrClass.FP_MUL: "fp_mul",
    InstrClass.FP_DIV: "fp_div",
    InstrClass.BRANCH: "branch",
    InstrClass.LOAD: "load",
    InstrClass.STORE: "store",
    InstrClass.NOP: "int_alu",
}


class PowerModel:
    """Estimates power from a :class:`~repro.sim.stats.SimStats`.

    Example::

        stats = Simulator(LARGE_CORE).run(program)
        report = PowerModel(LARGE_CORE).estimate(stats)
        print(report.dynamic_w)
    """

    def __init__(self, core: CoreConfig, table: EnergyTable | None = None):
        self.core = core
        self.table = table or energy_table_for_core(core)

    def estimate(self, stats: SimStats) -> PowerReport:
        """Convert activity counts into watts.

        Raises:
            ValueError: if the stats lack the per-class activity counts
                (they are produced by :class:`repro.sim.Simulator`).
        """
        raw_counts = stats.extra.get("class_counts")
        if raw_counts is None:
            raise ValueError("stats carry no class_counts; rerun the simulator")
        table = self.table
        pj: dict[str, float] = {}

        pj["core_pipeline"] = stats.instructions * table.base_per_instr
        for class_name, count in raw_counts.items():
            iclass = InstrClass(class_name)
            field_name = _CLASS_ENERGY_FIELD[iclass]
            pj[field_name] = pj.get(field_name, 0.0) + count * getattr(
                table, field_name
            )
        pj["l2"] = stats.extra.get("l2_accesses", 0) * table.l2_access
        dram_events = stats.extra.get("load_l2_misses", 0) + stats.extra.get(
            "store_l2_misses", 0
        )
        pj["dram"] = dram_events * table.dram_access
        mispredicts = stats.mispredict_rate * stats.extra.get(
            "branch_lookups", 0
        )
        pj["recovery"] = mispredicts * table.mispredict_flush
        pj["clock"] = stats.cycles * table.clock_tree_per_cycle

        seconds = stats.cycles / (self.core.frequency_ghz * 1e9)
        if seconds <= 0:
            raise ValueError("simulation produced no cycles")
        components = {k: v * 1e-12 / seconds for k, v in pj.items()}
        dynamic_w = sum(components.values())
        return PowerReport(
            dynamic_w=dynamic_w,
            leakage_w=LEAKAGE_W.get(self.core.name, 0.4),
            components=components,
        )
