"""McPAT-like power estimation substrate.

The paper transfers Gem5 execution statistics into McPAT to estimate
dynamic power (Section IV-A2).  This package provides the same structural
model: per-event energies (scaled per core configuration) multiplied by
the activity counts a simulation produced, divided by the simulated time,
plus a leakage term.
"""

from repro.power.mcpat import EnergyTable, PowerModel, PowerReport, energy_table_for_core
from repro.power.droop import DroopModel, DroopReport, PdnParams

__all__ = [
    "EnergyTable",
    "PowerModel",
    "PowerReport",
    "energy_table_for_core",
    "DroopModel",
    "DroopReport",
    "PdnParams",
]
