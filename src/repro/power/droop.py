"""Voltage-droop (dI/dt) modelling — the conclusion's future-work case.

Power-delivery networks respond to abrupt current ramps: a workload that
alternates between a low-power and a high-power phase excites the PDN's
RL impedance and droops the supply.  Prior stressmark work the paper
cites (Kim & John's dI/dt stressmarks, Bertran et al.'s voltage-noise
characterization) maximizes exactly this.  The model here is the standard
first-order form::

    dI        = (P_high - P_low) / Vdd
    V_droop   = dI * R_pdn  +  L_pdn * dI / t_ramp

which is all a knob-tuning loop needs: droop grows monotonically with the
power swing and the ramp sharpness.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PdnParams:
    """Power-delivery-network parameters (typical desktop-class values).

    Attributes:
        vdd: supply voltage in volts.
        resistance_mohm: PDN loop resistance in milliohms.
        inductance_ph: PDN loop inductance in picohenries.
        ramp_ns: current ramp time in nanoseconds (phase transition).
    """

    vdd: float = 1.0
    resistance_mohm: float = 0.6
    inductance_ph: float = 25.0
    ramp_ns: float = 2.0


@dataclass
class DroopReport:
    """dI/dt analysis of a two-phase workload.

    Attributes:
        power_low_w / power_high_w: per-phase dynamic power.
        delta_current_a: current swing between phases.
        didt_a_per_ns: current ramp rate.
        droop_mv: peak supply droop in millivolts.
    """

    power_low_w: float
    power_high_w: float
    delta_current_a: float
    didt_a_per_ns: float
    droop_mv: float


def analyze_phased_program(program, core, instructions: int = 10_000,
                           pdn: PdnParams | None = None) -> DroopReport:
    """Droop analysis of a phased (multi-section) test case.

    Simulates each section independently, estimates per-section dynamic
    power, and reports the droop from the largest power swing between
    consecutive sections (the alternation the loop executes).

    Raises:
        ValueError: if the program carries no section metadata.
    """
    from repro.codegen.phased import split_sections
    from repro.power.mcpat import PowerModel
    from repro.sim.simulator import Simulator

    sections = split_sections(program)
    simulator = Simulator(core)
    model = PowerModel(core)
    powers = [
        model.estimate(
            simulator.run(part, instructions=instructions)
        ).dynamic_w
        for part in sections
    ]
    droop_model = DroopModel(pdn)
    worst = None
    for a, b in zip(powers, powers[1:] + powers[:1]):
        report = droop_model.estimate(a, b)
        if worst is None or report.droop_mv > worst.droop_mv:
            worst = report
    assert worst is not None  # len(sections) >= 2 by construction
    return worst


class DroopModel:
    """First-order PDN droop estimator.

    Example::

        report = DroopModel().estimate(power_low_w=0.5, power_high_w=2.0)
        print(report.droop_mv)
    """

    def __init__(self, params: PdnParams | None = None):
        self.params = params or PdnParams()

    def estimate(self, power_low_w: float, power_high_w: float) -> DroopReport:
        """Droop for an alternation between two power levels.

        Raises:
            ValueError: for negative power inputs.
        """
        if power_low_w < 0 or power_high_w < 0:
            raise ValueError("power levels must be non-negative")
        p = self.params
        low, high = sorted((power_low_w, power_high_w))
        delta_current = (high - low) / p.vdd
        didt = delta_current / p.ramp_ns
        resistive_mv = delta_current * p.resistance_mohm
        # L * dI/dt with L in pH and dI/dt in A/ns gives volts*1e-3 -> mV.
        inductive_mv = p.inductance_ph * didt * 1e-3
        return DroopReport(
            power_low_w=low,
            power_high_w=high,
            delta_current_a=delta_current,
            didt_a_per_ns=didt,
            droop_mv=resistive_mv + inductive_mv,
        )
