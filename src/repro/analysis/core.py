"""Framework of the invariant lint suite: checkers, suppressions, reports.

The moving parts, smallest first:

``Finding``
    One rule violation at one source line.

``SourceFile``
    A parsed file: text, AST, and its ``# repro-lint:`` suppression
    comments.  Parsed once, shared by every checker.

``Checker``
    Base class.  A checker has a ``name`` (its rule id), may restrict
    itself to part of the tree (``applies_to``), inspects one file at a
    time (``check``) and may finish with whole-project checks
    (``finish``) — cross-file rules like "every declared frame type has
    a handler" live there.

``run_lint``
    The pipeline: collect ``*.py`` files, parse each once, run every
    registered checker over every applicable file, run the ``finish``
    hooks, then split raw findings into reported vs suppressed.

Suppressions are comments, checked per line::

    self._queue.append(x)  # repro-lint: disable=lock-discipline

A trailing comment silences the named rules (comma-separated, or
``all``) on that line only; a ``repro-lint: disable=...`` comment on a
line *of its own* silences them for the whole file.  Suppressions are
counted and reported, never silent.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

#: ``# repro-lint: disable=rule-a,rule-b`` (or ``disable=all``).
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([\w\-, ]+)")

#: Matches every rule name in a suppression comment.
SUPPRESS_ALL = "all"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where, which rule, and what went wrong."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


class SourceFile:
    """One parsed source file plus its suppression comments.

    ``rel`` is the path relative to the lint root it was collected
    under (POSIX separators) — checkers scope on it, reports print it.
    """

    def __init__(self, path: Path, rel: str, text: str, tree: ast.Module):
        self.path = path
        self.rel = rel
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        self.line_suppressions: dict[int, set[str]] = {}
        self.file_suppressions: set[str] = set()
        self._parse_suppressions()
        self._parents: dict[ast.AST, ast.AST] | None = None

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        return cls(path, rel, text, ast.parse(text, filename=str(path)))

    def _parse_suppressions(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = {
                rule.strip()
                for rule in match.group(1).split(",")
                if rule.strip()
            }
            if line.strip().startswith("#"):
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def suppresses(self, finding: Finding) -> bool:
        """True when a suppression comment covers this finding."""
        for rules in (self.file_suppressions,
                      self.line_suppressions.get(finding.line, ())):
            if finding.rule in rules or SUPPRESS_ALL in rules:
                return True
        return False

    # -- shared AST helpers used by several checkers --------------------

    def parents(self) -> dict[ast.AST, ast.AST]:
        """child -> parent map over the whole tree (built lazily once)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def in_dirs(self, *names: str) -> bool:
        """True when any path component of ``rel`` is one of ``names``."""
        parts = self.rel.split("/")[:-1]
        return any(name in parts for name in names)

    def module_constants(self) -> dict[str, str]:
        """Module-level ``NAME = "literal string"`` bindings."""
        out: dict[str, str] = {}
        for node in self.tree.body:
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = node.value.value
        return out


class Project:
    """Every source file of one lint run, for cross-file checks."""

    def __init__(self, sources: list[SourceFile]):
        self.sources = sources
        self._constants: dict[str, str] | None = None

    def constants(self) -> dict[str, str]:
        """Union of all module-level string-constant bindings.

        Lets checkers resolve ``kind == MSG_HELLO`` without import
        machinery; a name bound in several modules keeps the first
        binding (ties are benign for the constants this resolves —
        ``MSG_*`` style protocol vocabularies).
        """
        if self._constants is None:
            merged: dict[str, str] = {}
            for source in self.sources:
                for name, value in source.module_constants().items():
                    merged.setdefault(name, value)
            self._constants = merged
        return self._constants


class Checker:
    """Base class for one lint rule.  Subclass and :func:`register`."""

    #: Rule id — what suppression comments and ``--rule`` refer to.
    name = ""
    #: One-line summary shown by ``lint --list-rules``.
    description = ""

    def applies_to(self, source: SourceFile) -> bool:
        """Whether :meth:`check` should run on this file."""
        return True

    def check(self, source: SourceFile) -> list[Finding]:
        """Per-file findings."""
        return []

    def finish(self, project: Project) -> list[Finding]:
        """Whole-project findings, after every file has been seen."""
        return []


_REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} has no rule name")
    _REGISTRY[cls.name] = cls
    return cls


def _load_builtin_checkers() -> None:
    """Import the checker modules so their ``@register`` calls run."""
    from repro.analysis import (  # noqa: F401  — imported for side effect
        determinism,
        frames,
        locks,
        metrics_names,
        pickles,
    )


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, by rule name."""
    _load_builtin_checkers()
    return [
        _REGISTRY[name]() for name in sorted(_REGISTRY)
    ]


def checker_names() -> list[str]:
    """The registered rule names (sorted)."""
    _load_builtin_checkers()
    return sorted(_REGISTRY)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_py_files(root: Path) -> Iterable[Path]:
    """Every ``*.py`` under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    yield from sorted(
        p for p in root.rglob("*.py") if "__pycache__" not in p.parts
    )


def load_sources(paths: Sequence[str | Path]) -> tuple[list[SourceFile],
                                                       list[Finding]]:
    """Parse every file under ``paths``; unparsable files become findings."""
    sources: list[SourceFile] = []
    errors: list[Finding] = []
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        for path in iter_py_files(root):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            rel = (path.name if root.is_file()
                   else path.relative_to(root).as_posix())
            try:
                sources.append(SourceFile.load(path, rel))
            except SyntaxError as exc:
                errors.append(Finding(
                    path=rel, line=exc.lineno or 1, rule="parse-error",
                    message=f"file does not parse: {exc.msg}",
                ))
    return sources, errors


def run_lint(paths: Sequence[str | Path],
             rules: Sequence[str] | None = None) -> LintReport:
    """Lint every ``*.py`` under ``paths`` with the selected checkers.

    Args:
        paths: files or directories to lint.
        rules: restrict to these rule names (default: all registered).

    Returns:
        A :class:`LintReport`; ``report.ok`` is the CI gate.
    """
    checkers = all_checkers()
    if rules is not None:
        unknown = set(rules) - {c.name for c in checkers}
        if unknown:
            raise ValueError(
                f"unknown lint rules {sorted(unknown)}; "
                f"available: {checker_names()}"
            )
        checkers = [c for c in checkers if c.name in set(rules)]
    sources, errors = load_sources(paths)
    project = Project(sources)
    raw: list[Finding] = list(errors)
    for checker in checkers:
        for source in sources:
            if checker.applies_to(source):
                raw.extend(checker.check(source))
        raw.extend(checker.finish(project))
    by_rel = {source.rel: source for source in sources}
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in sorted(set(raw)):
        source = by_rel.get(finding.path)
        if source is not None and source.suppresses(finding):
            suppressed.append(finding)
        else:
            findings.append(finding)
    return LintReport(
        findings=findings,
        suppressed=suppressed,
        files=len(sources),
        rules=[c.name for c in checkers],
    )


# -- reporters -----------------------------------------------------------

def format_report(report: LintReport) -> str:
    """Human rendering: one ``path:line: [rule] message`` per finding."""
    lines = [str(finding) for finding in report.findings]
    lines.append(
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{report.files} file(s) checked, "
        f"rules: {', '.join(report.rules)}"
    )
    return "\n".join(lines)


def report_to_dict(report: LintReport) -> dict:
    """JSON-able rendering (the CI artifact)."""
    return {
        "schema": "repro-lint-v1",
        "ok": report.ok,
        "files": report.files,
        "rules": report.rules,
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
    }
