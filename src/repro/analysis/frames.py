"""``frame-type``: every wire frame names a declared type, and back.

The dist protocol is *additive*: a receiver ignores frame types it does
not know, so an unknown ``type`` never errors — it just silently does
nothing.  That forgiveness is exactly what makes a typo'd frame type
dangerous: the frame vanishes without a trace.  The declared vocabulary
is :data:`repro.dist.protocol.FRAME_TYPES`; this checker closes the
loop in both directions:

* **send side** (per file): every ``send_msg(sock, {...})`` /
  ``send_msg(sock, dict(..., type=X))`` header whose ``type`` resolves
  to a string must name a ``FRAME_TYPES`` member.  A ``type`` the
  checker cannot resolve (a variable header built elsewhere) passes.
* **declaration side** (whole project): every member of ``FRAME_TYPES``
  must be *used* — its ``MSG_*`` name referenced in some module other
  than the declaring one (sent, or compared against in a dispatch
  loop).  A declared-but-never-handled type is dead vocabulary and a
  finding.

``FRAME_TYPES`` is parsed from the linted project when present (fixture
projects in tests declare their own), falling back to importing
:mod:`repro.dist.protocol`.  Member names are resolved through the
project-wide module constants, so ``frozenset({MSG_HELLO, ...})`` and
``frozenset({"hello", ...})`` both work.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, Project, SourceFile, register

#: The declared wire vocabulary (a module-level set/frozenset binding).
_DECLARATION = "FRAME_TYPES"


def _set_elements(expr: ast.expr) -> list[ast.expr] | None:
    """Elements of a ``{...}`` / ``set({...})`` / ``frozenset({...})``."""
    if isinstance(expr, ast.Set):
        return list(expr.elts)
    if (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in {"set", "frozenset"}
            and len(expr.args) == 1):
        return _set_elements(expr.args[0])
    return None


def _find_declaration(project: Project) -> tuple[SourceFile, int,
                                                 dict[str, str]] | None:
    """The ``FRAME_TYPES`` binding: file, line, and name->value map.

    Elements that are plain strings map to themselves; ``Name``
    elements resolve through the project constants (``MSG_HELLO`` ->
    ``"hello"``).
    """
    constants = project.constants()
    for source in project.sources:
        for node in source.tree.body:
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target]
                       if isinstance(node, ast.AnnAssign) else [])
            if not any(isinstance(t, ast.Name) and t.id == _DECLARATION
                       for t in targets):
                continue
            elements = _set_elements(node.value)
            if elements is None:
                return None
            members: dict[str, str] = {}
            for element in elements:
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    members[element.value] = element.value
                elif (isinstance(element, ast.Name)
                        and element.id in constants):
                    members[element.id] = constants[element.id]
            return source, node.lineno, members
    return None


def _header_type(call: ast.Call) -> ast.expr | None:
    """The ``type`` expression of a ``send_msg`` header, if visible."""
    if len(call.args) < 2:
        return None
    header = call.args[1]
    if isinstance(header, ast.Dict):
        for key, value in zip(header.keys, header.values):
            if (isinstance(key, ast.Constant) and key.value == "type"):
                return value
    if (isinstance(header, ast.Call)
            and isinstance(header.func, ast.Name)
            and header.func.id == "dict"):
        for kw in header.keywords:
            if kw.arg == "type":
                return kw.value
    return None


@register
class FrameTypeChecker(Checker):
    """See the module docstring."""

    name = "frame-type"
    description = (
        "send_msg frame types are declared in FRAME_TYPES, and every "
        "declared type is used somewhere"
    )

    def __init__(self) -> None:
        self._sends: list[tuple[SourceFile, int, ast.expr]] = []

    def check(self, source: SourceFile) -> list[Finding]:
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "send_msg"):
                continue
            type_expr = _header_type(node)
            if type_expr is not None:
                self._sends.append((source, node.lineno, type_expr))
        return []

    def finish(self, project: Project) -> list[Finding]:
        sends, self._sends = self._sends, []
        declaration = _find_declaration(project)
        if declaration is None:
            values, names, decl_source = self._fallback()
            decl_line = 0
        else:
            decl_source, decl_line, members = declaration
            values = set(members.values())
            names = set(members)
        constants = project.constants()
        findings: list[Finding] = []
        for source, line, expr in sends:
            resolved: str | None = None
            if (isinstance(expr, ast.Constant)
                    and isinstance(expr.value, str)):
                resolved = expr.value
            elif isinstance(expr, ast.Name):
                resolved = constants.get(expr.id)
            if resolved is not None and resolved not in values:
                findings.append(Finding(
                    path=source.rel, line=line, rule=self.name,
                    message=(
                        f"frame type {resolved!r} is not declared in "
                        f"FRAME_TYPES; an unknown type is silently "
                        f"ignored by receivers — declare it in "
                        f"repro.dist.protocol"
                    ),
                ))
        if decl_source is not None:
            findings.extend(self._check_dead_types(
                project, decl_source, decl_line, names))
        return findings

    def _fallback(self) -> tuple[set[str], set[str], None]:
        """Values/names from the installed protocol module."""
        from repro.dist import protocol
        names = {
            name for name in dir(protocol)
            if name.startswith("MSG_")
            and getattr(protocol, name) in protocol.FRAME_TYPES
        }
        return set(protocol.FRAME_TYPES), names, None

    def _check_dead_types(self, project: Project,
                          decl_source: SourceFile, decl_line: int,
                          names: set[str]) -> list[Finding]:
        """Declared ``MSG_*`` members never referenced elsewhere."""
        used: set[str] = set()
        for source in project.sources:
            if source is decl_source:
                continue
            for node in ast.walk(source.tree):
                if (isinstance(node, (ast.Name, ast.alias))):
                    ident = (node.name if isinstance(node, ast.alias)
                             else node.id)
                    if ident in names:
                        used.add(ident)
        return [
            Finding(
                path=decl_source.rel, line=decl_line, rule=self.name,
                message=(
                    f"declared frame type {name} is never sent or "
                    f"handled outside its declaration — dead wire "
                    f"vocabulary (remove it, or wire up a handler)"
                ),
            )
            for name in sorted(names - used)
        ]
