"""``metric-name``: every recorded metric literal is declared.

:mod:`repro.obs.taxonomy` is the documented metric-name table; the
README/DESIGN tables render from it, dashboards key on it.  A typo in
an ``obs.inc("...")`` literal would silently split a counter in two —
this checker makes it a lint failure instead.

Checked call forms (any receiver — ``obs.inc``, bare imported ``inc``)::

    inc("counter.name")            -> must be in COUNTERS (or under a
                                      declared COUNTER_PREFIXES family)
    set_gauge("gauge.name", v)     -> must be in GAUGES
    span("stage.name")             -> must be in SPANS
    observe("stage.name", secs)    -> must be in SPANS (timers share
                                      the span namespace)

Only string literals are checked; a dynamically composed name (the
``engine_path.`` family is built as ``prefix + path``) is the caller's
responsibility and is covered by the prefix declaration instead.

The table is read from the *linted project* when it contains the
taxonomy module (so fixture projects in tests bring their own), and
falls back to importing :mod:`repro.obs.taxonomy` otherwise.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, SourceFile, register

#: Recording function -> metric kind it declares against.
_RECORDERS = {
    "inc": "counter",
    "set_gauge": "gauge",
    "span": "span",
    "observe": "span",
}

#: Taxonomy table name per metric kind.
_TABLES = {"counter": "COUNTERS", "gauge": "GAUGES", "span": "SPANS"}


def _dict_literal_keys(module: ast.Module, name: str) -> set[str] | None:
    """String keys of the module-level dict literal bound to ``name``."""
    for node in module.body:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target]
                   if isinstance(node, ast.AnnAssign) else [])
        if not any(isinstance(t, ast.Name) and t.id == name
                   for t in targets):
            continue
        value = node.value
        if not isinstance(value, ast.Dict):
            return None
        return {
            key.value for key in value.keys
            if isinstance(key, ast.Constant)
            and isinstance(key.value, str)
        }
    return None


class _Taxonomy:
    """The metric tables, from project source or the installed module."""

    def __init__(self, names: dict[str, set[str]],
                 counter_prefixes: set[str]):
        self.names = names
        self.counter_prefixes = counter_prefixes

    @classmethod
    def from_project(cls, sources: list[SourceFile]) -> "_Taxonomy | None":
        for source in sources:
            tables = {
                kind: _dict_literal_keys(source.tree, table)
                for kind, table in _TABLES.items()
            }
            if any(keys is None for keys in tables.values()):
                continue
            prefixes = _dict_literal_keys(source.tree,
                                          "COUNTER_PREFIXES")
            return cls({k: v for k, v in tables.items()
                        if v is not None}, prefixes or set())
        return None

    @classmethod
    def from_module(cls) -> "_Taxonomy":
        from repro.obs import taxonomy
        return cls(
            {
                "counter": set(taxonomy.COUNTERS),
                "gauge": set(taxonomy.GAUGES),
                "span": set(taxonomy.SPANS),
            },
            set(taxonomy.COUNTER_PREFIXES),
        )

    def declared(self, kind: str, name: str) -> bool:
        if name in self.names[kind]:
            return True
        return kind == "counter" and any(
            name.startswith(prefix) for prefix in self.counter_prefixes
        )


@register
class MetricNameChecker(Checker):
    """See the module docstring."""

    name = "metric-name"
    description = (
        "metric literals passed to inc/set_gauge/span/observe are "
        "declared in repro.obs.taxonomy"
    )

    def __init__(self) -> None:
        self._pending: list[tuple[SourceFile, int, str, str]] = []

    def check(self, source: SourceFile) -> list[Finding]:
        # Findings need the taxonomy, which may live anywhere in the
        # project — record call sites now, resolve them in finish().
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            fn_name = (func.attr if isinstance(func, ast.Attribute)
                       else func.id if isinstance(func, ast.Name)
                       else "")
            kind = _RECORDERS.get(fn_name)
            if kind is None or not node.args:
                continue
            arg = node.args[0]
            if (isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)):
                self._pending.append(
                    (source, arg.lineno, kind, arg.value))
        return []

    def finish(self, project) -> list[Finding]:
        taxonomy = (_Taxonomy.from_project(project.sources)
                    or _Taxonomy.from_module())
        findings = []
        for source, line, kind, name in self._pending:
            if taxonomy.declared(kind, name):
                continue
            findings.append(Finding(
                path=source.rel, line=line, rule=self.name,
                message=(
                    f"{kind} name {name!r} is not declared in the "
                    f"metric-name table (repro.obs.taxonomy."
                    f"{_TABLES[kind]}); declare it there or fix the "
                    f"typo"
                ),
            ))
        self._pending = []
        return findings
