"""``pickle-boundary``: callables shipped to workers must pickle.

Everything the execution layer fans out crosses a process (or socket)
boundary: :meth:`ExecutionBackend.map`/``map_stream``/``submit`` pickle
the callable, and the distributed backend additionally ships it over
the wire.  Pickle serialises functions *by qualified name*, so only
module-level callables survive the trip — lambdas and functions nested
inside another function raise ``PicklingError`` at runtime, usually
deep inside a worker where the traceback is least helpful.

This checker rejects, at the ``map``/``map_stream``/``submit`` call
site and in ``Process(target=...)`` spawns:

* a ``lambda`` in the callable position (directly or wrapped in
  ``functools.partial``), and
* a name that resolves to a function *defined inside the enclosing
  function* — a nested ``def`` closes over its frame and does not
  pickle.

Resolution is conservative: a name the checker cannot trace (a
parameter, an import, an attribute) passes.  The repo idiom —
``partial(module_level_fn, frozen_args)`` as in
``repro.exec.jobs`` — is exactly what this leaves standing.

Thread targets are exempt on purpose: ``threading.Thread`` shares the
address space and never pickles, so only ``*Process(...)`` spawns are
held to the rule.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, SourceFile, register

#: Backend methods whose first positional argument crosses the boundary.
_BOUNDARY_METHODS = {"map", "map_stream", "submit"}


def _enclosing_nested_defs(node: ast.AST,
                           source: SourceFile) -> set[str]:
    """Names of functions defined inside the functions enclosing ``node``."""
    parents = source.parents()
    nested: set[str] = set()
    cursor: ast.AST | None = parents.get(node)
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(cursor):
                if (isinstance(child, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))
                        and child is not cursor):
                    nested.add(child.name)
        cursor = parents.get(cursor)
    return nested


def _is_partial(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "partial"
    return isinstance(func, ast.Attribute) and func.attr == "partial"


def _spawns_process(call: ast.Call) -> bool:
    """``Process(...)`` / ``ctx.Process(...)`` — pickles its target."""
    func = call.func
    name = (func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else "")
    return name.endswith("Process")


@register
class PickleBoundaryChecker(Checker):
    """See the module docstring."""

    name = "pickle-boundary"
    description = (
        "callables crossing backend/process boundaries are "
        "module-level (no lambdas, no nested defs)"
    )

    def check(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            candidate = self._boundary_callable(node)
            if candidate is None:
                continue
            self._check_callable(candidate, node, source, findings)
        return findings

    def _boundary_callable(self, call: ast.Call) -> ast.expr | None:
        """The expression shipped across the boundary, if this is one."""
        func = call.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _BOUNDARY_METHODS and call.args):
            return call.args[0]
        if _spawns_process(call):
            for kw in call.keywords:
                if kw.arg == "target":
                    return kw.value
        return None

    def _check_callable(self, expr: ast.expr, call: ast.Call,
                        source: SourceFile,
                        findings: list[Finding]) -> None:
        if isinstance(expr, ast.Lambda):
            findings.append(Finding(
                path=source.rel, line=expr.lineno, rule=self.name,
                message=(
                    "lambda shipped across an execution boundary does "
                    "not pickle; use a module-level function (wrap "
                    "arguments with functools.partial if needed)"
                ),
            ))
            return
        if isinstance(expr, ast.Call) and _is_partial(expr):
            # partial(fn, ...) pickles iff fn does — recurse on fn.
            if expr.args:
                self._check_callable(expr.args[0], call, source,
                                     findings)
            return
        if (isinstance(expr, ast.Name)
                and expr.id in _enclosing_nested_defs(call, source)):
            findings.append(Finding(
                path=source.rel, line=expr.lineno, rule=self.name,
                message=(
                    f"function {expr.id!r} is defined inside the "
                    f"enclosing function; nested defs close over their "
                    f"frame and do not pickle — move it to module "
                    f"level"
                ),
            ))
