"""``lock-discipline``: statically prove guarded attributes stay guarded.

A class declares its lock discipline with a class-level map::

    class Coordinator:
        GUARDED_BY = {"_queue": "_cv", "_jobs": "_cv"}

The checker then proves, lexically, that **every** read or write of a
guarded attribute (``self._queue`` and friends) happens either

* inside a ``with self._cv:`` block of the same method, or
* in a method the *caller* must hold the lock for — marked by the
  ``*_locked`` naming convention (``_dispatch_locked``) or a trailing
  ``# repro-lint: holds-lock`` comment on its ``def`` line.

``__init__`` and ``__new__`` are exempt: the object is not shared yet.
Callables *nested* inside a method (thread targets, callbacks) do not
inherit the enclosing ``with`` — they run later, when the lock is long
released — so accesses inside them are checked against an empty lock
set.

Two supporting rules keep the declaration honest:

* a class that creates ``threading.Lock/RLock/Condition`` objects in
  ``__init__`` without declaring ``GUARDED_BY`` is itself a finding —
  new concurrent classes must declare their discipline (an explicit
  empty map plus a suppression records a deliberate opt-out);
* a ``GUARDED_BY`` entry naming a lock attribute the class never
  creates is a finding (a typo would otherwise silence the checker).
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, SourceFile, register

#: ``threading`` factories whose product is a context-manager lock.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: Methods that run before the object can be shared across threads.
_EXEMPT_METHODS = {"__init__", "__new__"}

#: Trailing marker on a ``def`` line: the caller must hold the lock.
_HOLDS_LOCK_MARK = "repro-lint: holds-lock"


def _guarded_by_map(cls: ast.ClassDef) -> tuple[dict[str, str], int] | None:
    """The ``GUARDED_BY`` dict literal of ``cls``, with its line."""
    for node in cls.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "GUARDED_BY"
                   for t in node.targets):
            continue
        mapping: dict[str, str] = {}
        if isinstance(node.value, ast.Dict):
            for key, value in zip(node.value.keys, node.value.values):
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    mapping[key.value] = value.value
        return mapping, node.lineno
    return None


def _locks_created_in_init(cls: ast.ClassDef) -> set[str]:
    """``self.X`` attributes assigned a threading lock in ``__init__``."""
    created: set[str] = set()
    for node in cls.body:
        if not (isinstance(node, ast.FunctionDef)
                and node.name == "__init__"):
            continue
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            if not (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr in _LOCK_FACTORIES):
                continue
            for target in stmt.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    created.add(target.attr)
    return created


def _is_caller_holds_lock(method: ast.FunctionDef,
                          source: SourceFile) -> bool:
    if method.name.endswith("_locked"):
        return True
    def_line = source.lines[method.lineno - 1] \
        if method.lineno - 1 < len(source.lines) else ""
    return _HOLDS_LOCK_MARK in def_line


def _with_locks(node: ast.With) -> set[str]:
    """Lock attribute names entered by ``with self.X, self.Y:`` items."""
    locks: set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            locks.add(expr.attr)
    return locks


@register
class LockDisciplineChecker(Checker):
    """See the module docstring."""

    name = "lock-discipline"
    description = (
        "GUARDED_BY attributes only touched under their lock or in "
        "caller-holds-lock methods"
    )

    def check(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(node, source))
        return findings

    def _check_class(self, cls: ast.ClassDef,
                     source: SourceFile) -> list[Finding]:
        declared = _guarded_by_map(cls)
        lock_attrs = _locks_created_in_init(cls)
        findings: list[Finding] = []
        if declared is None:
            if lock_attrs:
                findings.append(Finding(
                    path=source.rel, line=cls.lineno, rule=self.name,
                    message=(
                        f"class {cls.name} creates threading lock(s) "
                        f"{sorted(lock_attrs)} in __init__ but declares no "
                        f"GUARDED_BY map (declare one, or an explicit "
                        f"empty map with a suppression)"
                    ),
                ))
            return findings
        guarded, decl_line = declared
        for lock in sorted(set(guarded.values())):
            if lock not in lock_attrs:
                findings.append(Finding(
                    path=source.rel, line=decl_line, rule=self.name,
                    message=(
                        f"GUARDED_BY of {cls.name} names lock "
                        f"{lock!r}, but __init__ never creates "
                        f"self.{lock} via threading.Lock/RLock/Condition"
                    ),
                ))
        if not guarded:
            return findings
        for node in cls.body:
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node.name in _EXEMPT_METHODS:
                continue
            if _is_caller_holds_lock(node, source):
                continue
            for stmt in node.body:
                self._scan(stmt, frozenset(), guarded, cls.name,
                           node.name, source, findings)
        return findings

    def _scan(self, node: ast.AST, held: frozenset[str],
              guarded: dict[str, str], cls_name: str, method: str,
              source: SourceFile, findings: list[Finding]) -> None:
        if isinstance(node, ast.With):
            for item in node.items:
                self._scan(item.context_expr, held, guarded, cls_name,
                           method, source, findings)
                if item.optional_vars is not None:
                    self._scan(item.optional_vars, held, guarded,
                               cls_name, method, source, findings)
            inner = held | _with_locks(node)
            for stmt in node.body:
                self._scan(stmt, inner, guarded, cls_name, method,
                           source, findings)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # A nested callable runs after the enclosing `with` exits:
            # whatever it touches is checked against no held locks.
            body = node.body if isinstance(node.body, list) \
                else [node.body]
            for stmt in body:
                self._scan(stmt, frozenset(), guarded, cls_name,
                           method, source, findings)
            return
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in guarded
                and guarded[node.attr] not in held):
            access = ("write" if isinstance(node.ctx,
                                            (ast.Store, ast.Del))
                      else "read")
            findings.append(Finding(
                path=source.rel, line=node.lineno, rule=self.name,
                message=(
                    f"{access} of {cls_name}.{node.attr} outside "
                    f"'with self.{guarded[node.attr]}:' in method "
                    f"{method} (guarded attribute; hold the lock, or "
                    f"mark the method caller-holds-lock with a "
                    f"*_locked name)"
                ),
            ))
        for child in ast.iter_child_nodes(node):
            self._scan(child, held, guarded, cls_name, method, source,
                       findings)
