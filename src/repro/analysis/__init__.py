"""AST-based invariant lint suite for the reproduction's own source.

The test suite can only *sample* the invariants the system's value
rests on — bit-identical results across execution backends, picklable
chunk jobs, lock-guarded coordinator state, an additive wire protocol.
This package proves them *structurally*, on every file, on every PR:

* ``lock-discipline`` — every access to a ``GUARDED_BY``-declared
  attribute happens inside ``with self.<lock>:`` or in a
  caller-holds-lock method (:mod:`repro.analysis.locks`).
* ``pickle-boundary`` — callables shipped through execution backends
  are module-level, closure-free and lambda-free
  (:mod:`repro.analysis.pickles`).
* ``determinism`` — no unseeded global RNG or wall-clock reads in the
  result path, no order-dependent iteration over sets
  (:mod:`repro.analysis.determinism`).
* ``metric-name`` — every recorded metric literal is declared in
  :mod:`repro.obs.taxonomy` (:mod:`repro.analysis.metrics_names`).
* ``frame-type`` — every wire frame names a registered
  :data:`~repro.dist.protocol.FRAME_TYPES` member with a matching
  handler (:mod:`repro.analysis.frames`).

Run it with ``python -m repro.cli lint`` (CI gates on zero findings),
and silence a deliberate violation with a trailing
``# repro-lint: disable=<rule>`` comment.  See :mod:`repro.analysis.core`
for the framework: checker registry, per-file visitor pipeline,
suppressions and reporters.
"""

from repro.analysis.core import (
    Checker,
    Finding,
    LintReport,
    Project,
    SourceFile,
    all_checkers,
    checker_names,
    format_report,
    register,
    report_to_dict,
    run_lint,
)

__all__ = [
    "Checker",
    "Finding",
    "LintReport",
    "Project",
    "SourceFile",
    "all_checkers",
    "checker_names",
    "format_report",
    "register",
    "report_to_dict",
    "run_lint",
]
