"""``determinism``: the result path must not read ambient entropy.

The reproduction's core promise is bit-identical results: the same
config batch produces the same metrics regardless of backend, worker
count, or machine.  Three ambient-entropy leaks would silently break
that promise, and each is statically visible:

* **Unseeded global RNG** — ``random.random()`` / ``np.random.*``
  draw from process-global state whose sequence depends on import
  order and prior callers.  Result-path code must thread an explicit
  ``random.Random(seed)`` / ``np.random.default_rng(seed)`` instance.
  Enforced in the directories that compute results: ``sim/``,
  ``codegen/``, ``tuning/``.
* **Wall-clock reads** — ``time.time()`` / ``datetime.now()`` in the
  same directories put the clock into the data.  (Monotonic timers for
  *observability* — ``time.perf_counter`` — are fine: they never feed
  results.)
* **Order-dependent set iteration** — everywhere.  Iterating a
  ``set`` bakes hash-seed ordering into whatever the loop builds.
  Flagged when a provable set (a literal, ``set(...)`` call, a name or
  ``self.`` attribute assigned one) is looped over or materialised
  with ``list``/``tuple``; iteration feeding an order-insensitive
  consumer (``sorted``, ``any``, ``sum``, …) or building another set
  is allowed.

The set-table is lexical — names assigned a set expression in the same
module, function, or (for ``self.X``) class ``__init__`` — so an
attribute the checker cannot trace passes; this trades recall for a
zero-false-positive default, the right trade for a CI gate.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, Finding, SourceFile, register

#: Directories whose code computes results (RNG/clock rules apply).
_RESULT_DIRS = ("sim", "codegen", "tuning")

#: ``random.X(...)`` calls that do not draw from the global stream.
_RANDOM_OK = {"Random", "SystemRandom"}

#: ``np.random.X(...)`` calls that construct an explicit generator.
_NP_RANDOM_OK = {"default_rng", "RandomState", "Generator", "SeedSequence"}

#: Wall-clock reads: module attr -> banned call names.
_WALL_CLOCK = {
    "time": {"time", "time_ns"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: Builtins that consume an iterable order-insensitively.
_ORDER_FREE_CONSUMERS = {
    "sorted", "any", "all", "sum", "len", "min", "max", "set",
    "frozenset",
}

#: Builtins that materialise iteration order into a sequence.
_ORDER_CAPTURING = {"list", "tuple"}


def _is_set_literal(expr: ast.expr) -> bool:
    """Expression that is a set by construction."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in {"set", "frozenset"})


def _set_names(body: list[ast.stmt]) -> set[str]:
    """Plain names assigned a set expression anywhere in ``body``."""
    names: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign) and _is_set_literal(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (isinstance(node, ast.AnnAssign)
                    and node.value is not None
                    and _is_set_literal(node.value)
                    and isinstance(node.target, ast.Name)):
                names.add(node.target.id)
    return names


def _self_set_attrs(cls: ast.ClassDef) -> set[str]:
    """``self.X`` attributes assigned a set in the class ``__init__``."""
    attrs: set[str] = set()
    for node in cls.body:
        if not (isinstance(node, ast.FunctionDef)
                and node.name == "__init__"):
            continue
        for stmt in ast.walk(node):
            if not (isinstance(stmt, ast.Assign)
                    and _is_set_literal(stmt.value)):
                continue
            for target in stmt.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attrs.add(target.attr)
    return attrs


@register
class DeterminismChecker(Checker):
    """See the module docstring."""

    name = "determinism"
    description = (
        "no unseeded global RNG or wall-clock in result code; no "
        "order-dependent set iteration anywhere"
    )

    def check(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        if source.in_dirs(*_RESULT_DIRS):
            self._check_entropy(source, findings)
        self._check_set_iteration(source, findings)
        return findings

    # -- unseeded RNG and wall-clock (result directories only) ----------

    def _check_entropy(self, source: SourceFile,
                       findings: list[Finding]) -> None:
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            owner = func.value
            if (isinstance(owner, ast.Name) and owner.id == "random"
                    and func.attr not in _RANDOM_OK):
                findings.append(Finding(
                    path=source.rel, line=node.lineno, rule=self.name,
                    message=(
                        f"random.{func.attr}() draws from the process-"
                        f"global RNG; result-path code must use an "
                        f"explicit random.Random(seed) instance"
                    ),
                ))
            elif (isinstance(owner, ast.Attribute)
                    and owner.attr == "random"
                    and isinstance(owner.value, ast.Name)
                    and owner.value.id in {"np", "numpy"}
                    and func.attr not in _NP_RANDOM_OK):
                findings.append(Finding(
                    path=source.rel, line=node.lineno, rule=self.name,
                    message=(
                        f"{owner.value.id}.random.{func.attr}() uses "
                        f"the global numpy RNG; result-path code must "
                        f"use an explicit default_rng(seed)"
                    ),
                ))
            elif (isinstance(owner, ast.Name)
                    and func.attr in _WALL_CLOCK.get(owner.id, ())):
                findings.append(Finding(
                    path=source.rel, line=node.lineno, rule=self.name,
                    message=(
                        f"{owner.id}.{func.attr}() reads the wall "
                        f"clock inside result-path code; results must "
                        f"not depend on when they were computed"
                    ),
                ))
            elif (isinstance(owner, ast.Attribute)
                    and isinstance(owner.value, ast.Name)
                    and owner.value.id == "datetime"
                    and func.attr in _WALL_CLOCK.get(owner.attr, ())):
                findings.append(Finding(
                    path=source.rel, line=node.lineno, rule=self.name,
                    message=(
                        f"datetime.{owner.attr}.{func.attr}() reads "
                        f"the wall clock inside result-path code"
                    ),
                ))

    # -- order-dependent set iteration (everywhere) ---------------------

    def _check_set_iteration(self, source: SourceFile,
                             findings: list[Finding]) -> None:
        module_sets = _set_names(source.tree.body)
        parents = source.parents()

        def is_set_expr(expr: ast.expr, scope_sets: set[str],
                        attr_sets: set[str]) -> bool:
            if _is_set_literal(expr):
                return True
            if isinstance(expr, ast.Name):
                return expr.id in scope_sets
            return (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in attr_sets)

        def consumer_of(node: ast.AST) -> str | None:
            """Builtin name directly consuming ``node``, if any."""
            parent = parents.get(node)
            if (isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and node in parent.args):
                return parent.func.id
            return None

        def flag(expr: ast.expr, what: str) -> None:
            findings.append(Finding(
                path=source.rel, line=expr.lineno, rule=self.name,
                message=(
                    f"{what} iterates a set in hash order; wrap it in "
                    f"sorted(...) (or consume it order-insensitively) "
                    f"so results cannot depend on the hash seed"
                ),
            ))

        def scan(node: ast.AST, scope_sets: set[str],
                 attr_sets: set[str]) -> None:
            if isinstance(node, ast.ClassDef):
                class_attr_sets = _self_set_attrs(node)
                for child in node.body:
                    scan(child, set(scope_sets), class_attr_sets)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = scope_sets | _set_names(node.body)
                for child in node.body:
                    scan(child, inner, attr_sets)
                return
            if (isinstance(node, (ast.For, ast.AsyncFor))
                    and is_set_expr(node.iter, scope_sets, attr_sets)):
                flag(node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                # A comprehension over a set is fine when its *result*
                # is immediately consumed order-insensitively.
                if consumer_of(node) not in _ORDER_FREE_CONSUMERS:
                    for gen in node.generators:
                        if is_set_expr(gen.iter, scope_sets, attr_sets):
                            flag(gen.iter, "comprehension")
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_CAPTURING
                    and len(node.args) == 1
                    and is_set_expr(node.args[0], scope_sets,
                                    attr_sets)):
                flag(node.args[0], f"{node.func.id}() call")
            for child in ast.iter_child_nodes(node):
                scan(child, scope_sets, attr_sets)

        for stmt in source.tree.body:
            scan(stmt, module_sets, set())
