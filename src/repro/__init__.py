"""MicroGrad reproduction: workload cloning and stress testing.

A from-scratch Python implementation of the ISPASS 2021 paper
"MicroGrad: A Centralized Framework for Workload Cloning and Stress
Testing" (Ravi, Bertran, Bose, Lipasti), including every substrate the
paper runs on: a Microprobe-like pass-based code generator, a Gem5-like
cycle-approximate performance simulator, a McPAT-like power model, SPEC-
like reference workloads with SimPoint phase selection, and the tuning
mechanisms (gradient descent, the genetic-algorithm baseline, brute
force).

Quickstart::

    from repro import MicroGrad, MicroGradConfig

    config = MicroGradConfig(use_case="stress", metrics=("ipc",),
                             core="large", max_epochs=20)
    result = MicroGrad(config).run()
    print(result.summary())
"""

from repro.core.config import MicroGradConfig
from repro.core.framework import MicroGrad
from repro.core.outputs import MicroGradResult
from repro.exec import (
    DiskResultCache,
    DistributedBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    backend_for,
)

__version__ = "1.2.0"

__all__ = [
    "MicroGrad",
    "MicroGradConfig",
    "MicroGradResult",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "DistributedBackend",
    "backend_for",
    "DiskResultCache",
    "__version__",
]
