"""Program representation shared by the code generator and the simulator.

A :class:`Program` is a straight-line body of ~500 static instructions wrapped
in an endless loop (the paper's test-case shape, Section IV-A1).  Dynamic
behaviour that varies per loop iteration is attached declaratively:

* memory instructions carry a :class:`MemoryAccess` describing the stream
  they belong to (base, footprint, stride, temporal-locality window), from
  which the simulator expands the exact address of every dynamic instance;
* conditional branches carry a :class:`BranchBehavior` mixing a fully
  predictable periodic pattern with per-iteration random outcomes at the
  knob-controlled randomization ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.instructions import InstrClass, InstructionDef, class_of_group
from repro.isa.registers import Register


@dataclass
class MemoryAccess:
    """Declarative address generator for one memory instruction.

    The dynamic instance ``t`` (0-based loop iteration) of the owning
    instruction accesses::

        base + (index(t) * stride) % footprint

    where ``index`` walks the stream honouring temporal locality: addresses
    are revisited in windows of ``reuse_count`` distinct elements, each
    window being swept ``reuse_period`` times before the stream moves on.
    ``reuse_period == 1`` degenerates to a pure strided stream.

    Attributes:
        stream_id: identifier of the generating memory stream.
        base: starting virtual address of the stream.
        footprint: stream footprint in bytes (wraps around).
        stride: bytes between consecutive distinct accesses.
        reuse_count: distinct addresses per temporal-reuse window (>= 1).
        reuse_period: sweeps of each window before advancing (>= 1).
        phase: position of this instruction within the stream's collective
            walk (its order among the stream's instructions).
        step: stream positions consumed per loop iteration — the number of
            instructions sharing the stream, so the stream advances
            collectively instead of once per instruction.
    """

    stream_id: int
    base: int
    footprint: int
    stride: int
    reuse_count: int = 1
    reuse_period: int = 1
    phase: int = 0
    step: int = 1

    def __post_init__(self) -> None:
        if self.footprint <= 0:
            raise ValueError("footprint must be positive")
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        if self.reuse_count < 1 or self.reuse_period < 1:
            raise ValueError("temporal locality parameters must be >= 1")
        if self.step < 1:
            raise ValueError("step must be >= 1")

    def indices(self, iterations: int) -> np.ndarray:
        """Distinct-address index for iterations ``0..iterations-1``."""
        t = self.phase + self.step * np.arange(iterations, dtype=np.int64)
        window = self.reuse_count * self.reuse_period
        window_id = t // window
        offset = t % window
        return window_id * self.reuse_count + offset % self.reuse_count

    def addresses(self, iterations: int) -> np.ndarray:
        """Virtual address of each dynamic instance of the instruction."""
        idx = self.indices(iterations)
        return self.base + (idx * self.stride) % self.footprint


@dataclass
class BranchBehavior:
    """Per-iteration outcome generator for one conditional branch.

    Outcomes follow a fully predictable periodic base pattern; each
    iteration is independently replaced by a random outcome with
    probability ``random_ratio`` (the paper's ``B_PATTERN`` knob).

    Attributes:
        pattern: base taken/not-taken pattern, repeated cyclically.
        random_ratio: fraction of outcomes drawn at random (0..1).
        seed: RNG seed so expansion is deterministic per instruction.
        taken_bias: probability a randomized outcome is taken.
    """

    pattern: tuple[bool, ...] = (True, False)
    random_ratio: float = 0.0
    seed: int = 0
    taken_bias: float = 0.5

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("pattern must be non-empty")
        if not 0.0 <= self.random_ratio <= 1.0:
            raise ValueError("random_ratio must be within [0, 1]")

    def outcomes(self, iterations: int) -> np.ndarray:
        """Boolean taken/not-taken outcome per loop iteration."""
        base = np.resize(np.asarray(self.pattern, dtype=bool), iterations)
        if self.random_ratio == 0.0:
            return base
        rng = np.random.default_rng(self.seed)
        randomized = rng.random(iterations) < self.random_ratio
        random_outcome = rng.random(iterations) < self.taken_bias
        return np.where(randomized, random_outcome, base)


@dataclass
class Instruction:
    """One static instruction of the generated loop body.

    Attributes:
        idef: static definition (mnemonic, class, latency, ...).
        dests: destination registers (possibly empty).
        srcs: source registers.
        immediate: immediate operand when the encoding carries one.
        address: byte address (PC) assigned by the address-update pass.
        memory: address generator, for loads/stores only.
        branch: outcome generator, for conditional branches only.
        label: optional label preceding the instruction.
        comment: free-form annotation carried into the assembly dump.
    """

    idef: InstructionDef
    dests: list[Register] = field(default_factory=list)
    srcs: list[Register] = field(default_factory=list)
    immediate: int | None = None
    address: int | None = None
    memory: MemoryAccess | None = None
    branch: BranchBehavior | None = None
    label: str | None = None
    comment: str | None = None

    @property
    def mnemonic(self) -> str:
        return self.idef.mnemonic

    @property
    def iclass(self) -> InstrClass:
        return self.idef.iclass

    @property
    def group(self) -> str:
        """Reporting group (integer / float / branch / load / store)."""
        return class_of_group(self.idef.iclass)

    def validate(self) -> None:
        """Check operand counts and per-class attachments.

        Raises:
            ValueError: if the instruction is malformed.
        """
        if len(self.dests) != self.idef.num_dst:
            raise ValueError(
                f"{self.mnemonic}: expected {self.idef.num_dst} dests, "
                f"got {len(self.dests)}"
            )
        if len(self.srcs) != self.idef.num_src:
            raise ValueError(
                f"{self.mnemonic}: expected {self.idef.num_src} srcs, "
                f"got {len(self.srcs)}"
            )
        if self.idef.is_memory and self.memory is None:
            raise ValueError(f"{self.mnemonic}: memory instruction lacks a stream")
        if not self.idef.is_memory and self.memory is not None:
            raise ValueError(f"{self.mnemonic}: non-memory instruction has a stream")
        if self.idef.is_branch and self.branch is None:
            raise ValueError(f"{self.mnemonic}: branch lacks a behaviour")


@dataclass
class Program:
    """A generated test case: a loop body plus metadata.

    The body executes as an endless loop (a final always-taken back edge is
    implicit; the generator materializes it as the last instruction).  The
    ``metadata`` dict records provenance, e.g. the knob configuration the
    generator was invoked with.
    """

    body: list[Instruction] = field(default_factory=list)
    entry_address: int = 0x10000
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.body)

    def __iter__(self):
        return iter(self.body)

    def validate(self) -> None:
        """Validate every instruction in the body."""
        if not self.body:
            raise ValueError("program body is empty")
        for instr in self.body:
            instr.validate()

    def class_counts(self) -> dict[InstrClass, int]:
        """Static instruction count per microarchitectural class."""
        counts: dict[InstrClass, int] = {}
        for instr in self.body:
            counts[instr.iclass] = counts.get(instr.iclass, 0) + 1
        return counts

    def group_fractions(self) -> dict[str, float]:
        """Static distribution over reporting groups (sums to 1)."""
        total = len(self.body)
        fractions: dict[str, float] = {}
        for instr in self.body:
            fractions[instr.group] = fractions.get(instr.group, 0.0) + 1.0
        return {g: c / total for g, c in fractions.items()}

    def memory_instructions(self) -> list[Instruction]:
        """All loads and stores, in program order."""
        return [i for i in self.body if i.idef.is_memory]

    def branch_instructions(self) -> list[Instruction]:
        """All conditional branches, in program order."""
        return [i for i in self.body if i.idef.is_branch]
