"""Instruction definitions and microarchitectural classes.

Each :class:`InstructionDef` records the static properties the simulator's
timing model needs: execution latency, which functional-unit group executes
it, operand counts, and whether it touches memory or redirects control flow.
The mnemonics follow RISC-V (RV64IMFD subset) because the paper targets the
RISC-V ISA (Section IV-A3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.registers import RegisterKind


class InstrClass(enum.Enum):
    """Microarchitectural instruction class.

    Classes map one-to-one onto the rows of the paper's instruction
    distribution metrics (Integer / Load / Store / Branch, plus FP for the
    power-virus mix of Table III).
    """

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    BRANCH = "branch"
    LOAD = "load"
    STORE = "store"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        """Loads and stores access the data cache."""
        return self in (InstrClass.LOAD, InstrClass.STORE)

    @property
    def is_fp(self) -> bool:
        """Floating point classes execute on the FP pipes."""
        return self in (InstrClass.FP_ADD, InstrClass.FP_MUL, InstrClass.FP_DIV)


#: Reporting groups used by the evaluation figures.  "integer" aggregates
#: ALU/MUL/DIV, "float" aggregates the FP classes; branches, loads and
#: stores report on their own.  This matches Table III's five columns.
CLASS_GROUPS: dict[str, tuple[InstrClass, ...]] = {
    "integer": (InstrClass.INT_ALU, InstrClass.INT_MUL, InstrClass.INT_DIV),
    "float": (InstrClass.FP_ADD, InstrClass.FP_MUL, InstrClass.FP_DIV),
    "branch": (InstrClass.BRANCH,),
    "load": (InstrClass.LOAD,),
    "store": (InstrClass.STORE,),
}


def class_of_group(iclass: InstrClass) -> str:
    """Reporting group name for an instruction class (``nop`` → ``other``)."""
    for group, classes in CLASS_GROUPS.items():
        if iclass in classes:
            return group
    return "other"


@dataclass(frozen=True)
class InstructionDef:
    """Static definition of one mnemonic.

    Attributes:
        mnemonic: assembly mnemonic, e.g. ``FMUL.D``.
        iclass: microarchitectural class used by timing/power models.
        latency: execution latency in cycles (issue to result bypass).
        num_src: number of register source operands.
        num_dst: number of register destination operands (0 or 1).
        operand_kind: register file the operands come from.
        mem_bytes: access width for loads/stores, 0 otherwise.
        has_immediate: whether the textual form carries an immediate.
    """

    mnemonic: str
    iclass: InstrClass
    latency: int
    num_src: int = 2
    num_dst: int = 1
    operand_kind: RegisterKind = RegisterKind.INT
    mem_bytes: int = 0
    has_immediate: bool = False

    @property
    def is_memory(self) -> bool:
        return self.iclass.is_memory

    @property
    def is_branch(self) -> bool:
        return self.iclass is InstrClass.BRANCH


def _d(*args, **kwargs) -> InstructionDef:
    return InstructionDef(*args, **kwargs)


#: The RV64IMFD-subset instruction set available to the code generator.
#: Latencies are typical mid-range out-of-order core values (and feed the
#: dependency-chain bound of the interval timing model).
INSTRUCTION_SET: dict[str, InstructionDef] = {
    d.mnemonic: d
    for d in [
        # Integer ALU
        _d("ADD", InstrClass.INT_ALU, 1),
        _d("SUB", InstrClass.INT_ALU, 1),
        _d("AND", InstrClass.INT_ALU, 1),
        _d("OR", InstrClass.INT_ALU, 1),
        _d("XOR", InstrClass.INT_ALU, 1),
        _d("SLL", InstrClass.INT_ALU, 1),
        _d("SRL", InstrClass.INT_ALU, 1),
        _d("ADDI", InstrClass.INT_ALU, 1, num_src=1, has_immediate=True),
        # Integer multiply / divide
        _d("MUL", InstrClass.INT_MUL, 4),
        _d("MULH", InstrClass.INT_MUL, 4),
        _d("DIV", InstrClass.INT_DIV, 20),
        _d("REM", InstrClass.INT_DIV, 20),
        # Floating point (double precision)
        _d("FADD.D", InstrClass.FP_ADD, 4, operand_kind=RegisterKind.FP),
        _d("FSUB.D", InstrClass.FP_ADD, 4, operand_kind=RegisterKind.FP),
        _d("FMUL.D", InstrClass.FP_MUL, 5, operand_kind=RegisterKind.FP),
        _d("FMADD.D", InstrClass.FP_MUL, 6, num_src=3, operand_kind=RegisterKind.FP),
        _d("FDIV.D", InstrClass.FP_DIV, 18, operand_kind=RegisterKind.FP),
        # Branches (two sources, no destination)
        _d("BEQ", InstrClass.BRANCH, 1, num_src=2, num_dst=0, has_immediate=True),
        _d("BNE", InstrClass.BRANCH, 1, num_src=2, num_dst=0, has_immediate=True),
        _d("BLT", InstrClass.BRANCH, 1, num_src=2, num_dst=0, has_immediate=True),
        _d("BGE", InstrClass.BRANCH, 1, num_src=2, num_dst=0, has_immediate=True),
        # Loads: one address source, one destination
        _d("LD", InstrClass.LOAD, 3, num_src=1, mem_bytes=8, has_immediate=True),
        _d("LW", InstrClass.LOAD, 3, num_src=1, mem_bytes=4, has_immediate=True),
        _d("LB", InstrClass.LOAD, 3, num_src=1, mem_bytes=1, has_immediate=True),
        _d(
            "FLD",
            InstrClass.LOAD,
            4,
            num_src=1,
            mem_bytes=8,
            operand_kind=RegisterKind.FP,
            has_immediate=True,
        ),
        # Stores: data source + address source, no destination
        _d("SD", InstrClass.STORE, 1, num_src=2, num_dst=0, mem_bytes=8, has_immediate=True),
        _d("SW", InstrClass.STORE, 1, num_src=2, num_dst=0, mem_bytes=4, has_immediate=True),
        _d("SB", InstrClass.STORE, 1, num_src=2, num_dst=0, mem_bytes=1, has_immediate=True),
        _d(
            "FSD",
            InstrClass.STORE,
            1,
            num_src=2,
            num_dst=0,
            mem_bytes=8,
            operand_kind=RegisterKind.FP,
            has_immediate=True,
        ),
        # No-op
        _d("NOP", InstrClass.NOP, 1, num_src=0, num_dst=0),
    ]
}


def instruction_def(mnemonic: str) -> InstructionDef:
    """Look up a mnemonic (case-insensitive).

    Raises:
        KeyError: if the mnemonic is not part of the instruction set.
    """
    key = mnemonic.upper()
    if key not in INSTRUCTION_SET:
        raise KeyError(f"unknown mnemonic: {mnemonic!r}")
    return INSTRUCTION_SET[key]


def defs_by_class(iclass: InstrClass) -> list[InstructionDef]:
    """All instruction definitions belonging to one class."""
    return [d for d in INSTRUCTION_SET.values() if d.iclass is iclass]
