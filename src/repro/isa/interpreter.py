"""Functional interpreter for generated programs.

The paper's test cases compile to native binaries and run on real
hardware; this interpreter is the reproduction's "native execution"
substrate: it architecturally executes a generated loop — register
arithmetic, memory loads/stores against a sparse memory, branch outcomes
— which validates that generated programs are semantically sound (no
division traps, loads return stored data, operands are initialized) and
gives platforms a hardware-like execution backend.

Branch directions come from each branch's declarative behaviour (the
generated loops are direction-only: control flow always falls through to
the loop back edge), matching how the simulator treats them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.instructions import InstrClass
from repro.isa.program import Program
from repro.isa.registers import Register, RegisterKind

_MASK64 = (1 << 64) - 1


def _to_signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


@dataclass
class ExecutionResult:
    """Outcome of an interpreter run.

    Attributes:
        instructions: dynamic instructions executed.
        iterations: full loop iterations completed.
        class_counts: dynamic count per instruction class.
        loads / stores: memory operations performed.
        taken_branches: branches whose outcome was taken.
        register_file: final integer/FP register values (by name).
    """

    instructions: int
    iterations: int
    class_counts: dict[InstrClass, int] = field(default_factory=dict)
    loads: int = 0
    stores: int = 0
    taken_branches: int = 0
    register_file: dict[str, float] = field(default_factory=dict)


class Interpreter:
    """Architecturally executes a generated program.

    Example::

        result = Interpreter(program).run(iterations=100)
        assert result.instructions == 100 * len(program)
    """

    def __init__(self, program: Program):
        program.validate()
        self.program = program
        self.int_regs: dict[int, int] = {i: 0 for i in range(32)}
        self.fp_regs: dict[int, float] = {i: 0.0 for i in range(32)}
        self.memory: dict[int, int] = {}
        self._init_registers()

    def _init_registers(self) -> None:
        init = self.program.metadata.get("register_init", {})
        for name, value in init.items():
            reg = Register(
                RegisterKind.INT if name[0] == "x" else RegisterKind.FP,
                int(name[1:]),
            )
            if reg.kind is RegisterKind.INT:
                self.int_regs[reg.index] = int(value) & _MASK64
            else:
                # FP registers get a smallish non-zero value so repeated
                # multiplies stay finite for long runs.
                self.fp_regs[reg.index] = 1.0 + (int(value) % 997) / 1000.0
        self.int_regs[0] = 0  # x0 is hardwired zero

    # -- operand access --------------------------------------------------

    def _read(self, reg: Register) -> int | float:
        if reg.kind is RegisterKind.INT:
            return self.int_regs[reg.index]
        return self.fp_regs[reg.index]

    def _write(self, reg: Register, value) -> None:
        if reg.kind is RegisterKind.INT:
            if reg.index != 0:
                self.int_regs[reg.index] = int(value) & _MASK64
        else:
            if value != value or value in (float("inf"), float("-inf")):
                value = 1.0  # renormalize: synthetic loops never trap
            elif not 1e-6 < abs(value) < 1e6:
                value = 1.0 + abs(value) % 1.0
            self.fp_regs[reg.index] = float(value)

    # -- execution --------------------------------------------------------

    def _execute_alu(self, instr, srcs):
        mnemonic = instr.mnemonic
        a = srcs[0] if srcs else 0
        b = srcs[1] if len(srcs) > 1 else (instr.immediate or 0)
        if mnemonic in ("ADD", "ADDI"):
            return a + b
        if mnemonic == "SUB":
            return a - b
        if mnemonic == "AND":
            return a & b
        if mnemonic == "OR":
            return a | b
        if mnemonic == "XOR":
            return a ^ b
        if mnemonic == "SLL":
            return a << (b & 63)
        if mnemonic == "SRL":
            return (a & _MASK64) >> (b & 63)
        if mnemonic in ("MUL", "MULH"):
            product = _to_signed(a) * _to_signed(b)
            return product >> 64 if mnemonic == "MULH" else product
        if mnemonic in ("DIV", "REM"):
            divisor = _to_signed(b) or 1  # synthetic code never traps
            dividend = _to_signed(a)
            return (
                dividend % divisor if mnemonic == "REM"
                else int(dividend / divisor)
            )
        raise NotImplementedError(mnemonic)  # pragma: no cover

    def _execute_fp(self, instr, srcs):
        mnemonic = instr.mnemonic
        a = srcs[0] if srcs else 1.0
        b = srcs[1] if len(srcs) > 1 else 1.0
        if mnemonic in ("FADD.D",):
            return a + b
        if mnemonic == "FSUB.D":
            return a - b
        if mnemonic == "FMUL.D":
            return a * b
        if mnemonic == "FMADD.D":
            c = srcs[2] if len(srcs) > 2 else 1.0
            return a * b + c
        if mnemonic == "FDIV.D":
            return a / b if b else 1.0
        raise NotImplementedError(mnemonic)  # pragma: no cover

    def run(self, iterations: int = 10) -> ExecutionResult:
        """Execute ``iterations`` full loop iterations.

        Raises:
            ValueError: for a non-positive iteration count.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")

        body = self.program.body
        # Pre-expand per-iteration memory addresses and branch outcomes.
        mem_instrs = self.program.memory_instructions()
        branch_instrs = self.program.branch_instructions()
        addresses = {
            id(i): i.memory.addresses(iterations) for i in mem_instrs
        }
        outcomes = {
            id(i): i.branch.outcomes(iterations) for i in branch_instrs
        }

        result = ExecutionResult(instructions=0, iterations=iterations)
        counts: dict[InstrClass, int] = {}
        for it in range(iterations):
            for instr in body:
                iclass = instr.iclass
                counts[iclass] = counts.get(iclass, 0) + 1
                result.instructions += 1
                if iclass is InstrClass.NOP:
                    continue
                if iclass is InstrClass.LOAD:
                    addr = int(addresses[id(instr)][it])
                    value = self.memory.get(addr, addr & 0xFFFF)
                    if instr.idef.operand_kind is RegisterKind.FP:
                        self._write(instr.dests[0], 1.0 + (value % 997) / 997)
                    else:
                        self._write(instr.dests[0], value)
                    result.loads += 1
                elif iclass is InstrClass.STORE:
                    addr = int(addresses[id(instr)][it])
                    data = self._read(instr.srcs[0])
                    self.memory[addr] = (
                        int(data) & _MASK64
                        if isinstance(data, int)
                        else int(abs(data) * 997) & _MASK64
                    )
                    result.stores += 1
                elif iclass is InstrClass.BRANCH:
                    if bool(outcomes[id(instr)][it]):
                        result.taken_branches += 1
                elif instr.idef.operand_kind is RegisterKind.FP:
                    srcs = [self._read(s) for s in instr.srcs]
                    self._write(instr.dests[0], self._execute_fp(instr, srcs))
                else:
                    srcs = [self._read(s) for s in instr.srcs]
                    self._write(
                        instr.dests[0], self._execute_alu(instr, srcs)
                    )
        result.class_counts = counts
        result.register_file = {
            f"x{i}": float(_to_signed(v)) for i, v in self.int_regs.items()
        }
        result.register_file.update(
            {f"f{i}": v for i, v in self.fp_regs.items()}
        )
        return result
