"""Textual assembly writer.

The paper's framework emits a compilable test-case binary; in this
reproduction the simulator consumes :class:`~repro.isa.program.Program`
objects directly, and this module provides the human-readable equivalent of
the emitted assembly for inspection, diffing and archival (the "clone
binary" output of Section III-F).
"""

from __future__ import annotations

from repro.isa.program import Instruction, Program


def _operand_string(instr: Instruction) -> str:
    idef = instr.idef
    parts = [r.name for r in instr.dests]
    if idef.is_memory:
        # Loads/stores use base+offset addressing: reg, imm(base).
        base = instr.srcs[-1].name if instr.srcs else "x0"
        data = [r.name for r in (instr.dests if idef.num_dst else instr.srcs[:-1])]
        offset = instr.immediate or 0
        return ", ".join(data + [f"{offset}({base})"])
    parts += [r.name for r in instr.srcs]
    if idef.is_branch:
        target = instr.immediate if instr.immediate is not None else 0
        parts.append(f".L{target:x}" if target else "loop")
    elif idef.has_immediate and instr.immediate is not None:
        parts.append(str(instr.immediate))
    return ", ".join(parts)


def instruction_to_asm(instr: Instruction) -> str:
    """Render one instruction as an assembly line (without label)."""
    ops = _operand_string(instr)
    text = instr.mnemonic.lower() if not ops else f"{instr.mnemonic.lower()} {ops}"
    if instr.comment:
        text = f"{text:<40}# {instr.comment}"
    return text


def program_to_asm(program: Program) -> str:
    """Render a whole program as GNU-assembler-flavoured text.

    The output is an endless loop: a ``loop:`` label at the top and the
    implicit back edge noted at the bottom, mirroring the shape of the
    paper's generated test cases.
    """
    lines = [
        "    .text",
        "    .globl _start",
        "_start:",
        "loop:",
    ]
    for instr in program.body:
        if instr.label:
            lines.append(f"{instr.label}:")
        addr = f"{instr.address:#08x}" if instr.address is not None else " " * 8
        lines.append(f"    {instruction_to_asm(instr)}    /* {addr} */")
    lines.append("    j loop                              # endless loop back edge")
    return "\n".join(lines) + "\n"
