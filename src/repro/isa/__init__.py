"""ISA substrate: a RISC-V-like instruction set for synthetic test cases.

The paper generates RISC-V test cases with Microprobe and runs them on Gem5.
This package provides the in-memory equivalent: register files, instruction
definitions grouped into microarchitectural classes, an ``Instruction`` /
``Program`` representation that the code generator builds and the simulator
consumes directly, and a textual assembly writer for inspection.
"""

from repro.isa.registers import Register, RegisterFile, RegisterKind
from repro.isa.instructions import (
    InstrClass,
    InstructionDef,
    INSTRUCTION_SET,
    instruction_def,
    defs_by_class,
    CLASS_GROUPS,
    class_of_group,
)
from repro.isa.program import (
    BranchBehavior,
    Instruction,
    MemoryAccess,
    Program,
)
from repro.isa.assembler import program_to_asm

__all__ = [
    "Register",
    "RegisterFile",
    "RegisterKind",
    "InstrClass",
    "InstructionDef",
    "INSTRUCTION_SET",
    "instruction_def",
    "defs_by_class",
    "CLASS_GROUPS",
    "class_of_group",
    "BranchBehavior",
    "Instruction",
    "MemoryAccess",
    "Program",
    "program_to_asm",
]
