"""Architectural register files for the RISC-V-like target.

The code generator allocates operands from these pools; the
``ReserveRegistersPass`` removes registers (loop counters, stream base
pointers) from the allocatable set, mirroring Microprobe's register
reservation mechanism.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RegisterKind(enum.Enum):
    """Register file a register belongs to."""

    INT = "int"
    FP = "fp"


@dataclass(frozen=True, order=True)
class Register:
    """A single architectural register.

    Attributes:
        kind: which register file (integer or floating point).
        index: architectural index within the file (0-31).
    """

    kind: RegisterKind
    index: int

    @property
    def name(self) -> str:
        """RISC-V style name, e.g. ``x5`` or ``f12``."""
        prefix = "x" if self.kind is RegisterKind.INT else "f"
        return f"{prefix}{self.index}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


# x0 is hardwired zero in RISC-V: never allocated as a destination.
ZERO = Register(RegisterKind.INT, 0)


@dataclass
class RegisterFile:
    """The complete architectural register state available to codegen.

    A fresh file exposes x1-x31 and f0-f31 as allocatable.  Reservations
    (see :class:`repro.codegen.passes.registers.ReserveRegistersPass`)
    remove registers from the allocatable pools without forgetting them.
    """

    num_int: int = 32
    num_fp: int = 32
    _reserved: set[Register] = field(default_factory=set)

    def all_registers(self) -> list[Register]:
        """Every architectural register, reserved or not."""
        ints = [Register(RegisterKind.INT, i) for i in range(self.num_int)]
        fps = [Register(RegisterKind.FP, i) for i in range(self.num_fp)]
        return ints + fps

    def reserve(self, reg: Register) -> None:
        """Mark ``reg`` unavailable for operand allocation."""
        self._reserved.add(reg)

    def release(self, reg: Register) -> None:
        """Return a previously reserved register to the pool."""
        self._reserved.discard(reg)

    def is_reserved(self, reg: Register) -> bool:
        """Whether ``reg`` is currently reserved."""
        return reg in self._reserved

    @property
    def reserved(self) -> frozenset[Register]:
        """The current reservation set (read-only view)."""
        return frozenset(self._reserved)

    def allocatable(self, kind: RegisterKind) -> list[Register]:
        """Registers of ``kind`` that codegen may assign as operands.

        x0 is excluded: it is the hardwired zero register.
        """
        if kind is RegisterKind.INT:
            pool = [Register(kind, i) for i in range(1, self.num_int)]
        else:
            pool = [Register(kind, i) for i in range(self.num_fp)]
        return [r for r in pool if r not in self._reserved]

    @staticmethod
    def parse(name: str) -> Register:
        """Parse ``x12`` / ``f3`` style names into a :class:`Register`."""
        name = name.strip().lower()
        if not name or name[0] not in "xf" or not name[1:].isdigit():
            raise ValueError(f"not a register name: {name!r}")
        kind = RegisterKind.INT if name[0] == "x" else RegisterKind.FP
        index = int(name[1:])
        if not 0 <= index < 32:
            raise ValueError(f"register index out of range: {name!r}")
        return Register(kind, index)
