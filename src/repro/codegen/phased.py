"""Phased (multi-section) test-case generation.

dI/dt stressmarks alternate high- and low-activity sections within one
loop so the current ramps every iteration (Kim & John; Bertran et al.'s
voltage-noise work, both cited by the paper).  This module composes
multiple knob configurations into a single loop: each section is
generated with the ordinary pipeline, streams are renumbered so sections
do not alias, bodies are concatenated and re-laid-out.

The generated program records section boundaries in
``metadata["sections"]`` so analyses (e.g. per-phase power) can split it
back apart with :func:`split_sections`.
"""

from __future__ import annotations

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.isa.program import Program

#: Stream-id stride between sections (keeps their address regions apart).
_SECTION_STREAM_OFFSET = 8


def _renumber_streams(knobs: dict, section: int) -> dict:
    """Give a section's streams ids unique to that section."""
    updated = dict(knobs)
    explicit = updated.get("STREAMS")
    if explicit is not None:
        renumbered = []
        for spec in explicit:
            spec = list(spec)
            spec[0] = spec[0] + section * _SECTION_STREAM_OFFSET
            renumbered.append(spec)
        updated["STREAMS"] = renumbered
    else:
        updated["STREAMS"] = [[
            1 + section * _SECTION_STREAM_OFFSET,
            int(float(updated.get("MEM_SIZE", 64)) * 1024),
            1.0,
            int(updated.get("MEM_STRIDE", 64)),
            int(updated.get("MEM_TEMP1", 1)),
            int(updated.get("MEM_TEMP2", 1)),
        ]]
    return updated


def generate_phased_test_case(
    sections: list[dict], options: GenerationOptions | None = None
) -> Program:
    """Generate one loop whose body alternates through ``sections``.

    Args:
        sections: knob configurations, one per section; each section gets
            an equal share of the loop body.
        options: generation options; ``loop_size`` is the total size.

    Returns:
        The merged, validated program with ``metadata["sections"]`` set
        to ``[(start, end), ...]`` body index ranges.

    Raises:
        ValueError: with fewer than two sections (use the plain
            generator for one).
    """
    if len(sections) < 2:
        raise ValueError("phased generation needs >= 2 sections")
    options = options or GenerationOptions()
    per_section = max(1, options.loop_size // len(sections))

    merged = Program()
    boundaries = []
    cursor = 0
    for n, knobs in enumerate(sections):
        has_mem = any(knobs.get(k, 0) > 0 for k in ("LD", "LW", "SD", "SW"))
        section_knobs = _renumber_streams(knobs, n) if has_mem else dict(knobs)
        section_options = GenerationOptions(
            loop_size=per_section,
            seed=options.seed + n,
            base_pattern=options.base_pattern,
        )
        part = generate_test_case(section_knobs, section_options)
        merged.body.extend(part.body)
        boundaries.append((cursor, cursor + len(part.body)))
        cursor += len(part.body)

    # Re-layout addresses across the merged body.
    pc = merged.entry_address
    for instr in merged.body:
        instr.address = pc
        if instr.idef.is_branch:
            instr.immediate = merged.entry_address
        pc += 4
    merged.metadata["code_bytes"] = pc - merged.entry_address
    merged.metadata["sections"] = boundaries
    merged.metadata["section_knobs"] = [dict(s) for s in sections]
    merged.metadata["loop_size"] = len(merged.body)
    merged.metadata["dependency_distance"] = max(
        int(s.get("REG_DIST", 1)) for s in sections
    )
    merged.validate()
    return merged


def split_sections(program: Program) -> list[Program]:
    """Split a phased program back into per-section programs.

    Raises:
        ValueError: if the program carries no section metadata.
    """
    boundaries = program.metadata.get("sections")
    if not boundaries:
        raise ValueError("program has no section metadata")
    parts = []
    for n, (start, end) in enumerate(boundaries):
        part = Program(
            body=program.body[start:end],
            entry_address=program.entry_address + 4 * start,
        )
        part.metadata["loop_size"] = end - start
        section_knobs = program.metadata.get("section_knobs")
        if section_knobs:
            part.metadata["knobs"] = section_knobs[n]
            part.metadata["dependency_distance"] = int(
                section_knobs[n].get("REG_DIST", 1)
            )
        part.metadata["code_bytes"] = 4 * (end - start)
        parts.append(part)
    return parts
