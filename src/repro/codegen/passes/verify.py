"""Final structural verification pass."""

from __future__ import annotations

from repro.codegen.synthesizer import GenerationContext, Pass
from repro.isa.program import Program


class VerifyProgramPass(Pass):
    """Validate the finished program (operand counts, attachments, PCs).

    Equivalent to Microprobe's built-in consistency checking: catches
    mis-ordered pipelines before the broken test case reaches the
    evaluation platform.
    """

    requires = ("register_allocation", "addresses")
    provides = ("verified",)

    def run(self, program: Program, context: GenerationContext) -> None:
        program.validate()
        for instr in program.body:
            if instr.address is None:
                raise ValueError("instruction without an address after layout")
