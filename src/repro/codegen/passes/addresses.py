"""Address update pass (``UpdateInstructionAddressesPass`` in Listing 2)."""

from __future__ import annotations

from repro.codegen.synthesizer import GenerationContext, Pass
from repro.isa.program import Program

#: RISC-V fixed 4-byte encoding.
INSTRUCTION_BYTES = 4


class UpdateInstructionAddressesPass(Pass):
    """Assign sequential PCs starting at the program entry point.

    Branch immediates are pointed at the loop top (the generated test cases
    are single endless loops, so intra-loop branch targets reduce to the
    back edge in this substrate).
    """

    requires = ("building_block",)
    provides = ("addresses",)

    def __init__(self, instruction_bytes: int = INSTRUCTION_BYTES):
        self.instruction_bytes = instruction_bytes

    def run(self, program: Program, context: GenerationContext) -> None:
        pc = program.entry_address
        for instr in program.body:
            instr.address = pc
            if instr.idef.is_branch and instr.immediate is None:
                instr.immediate = program.entry_address
            pc += self.instruction_bytes
        program.metadata["code_bytes"] = pc - program.entry_address
