"""Code-synthesis passes (the Listing 2 vocabulary)."""
