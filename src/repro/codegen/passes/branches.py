"""Branch randomization pass (``RandomizeByTypePass`` in Listing 2).

Attaches a :class:`~repro.isa.program.BranchBehavior` to every conditional
branch: a periodic, fully predictable base pattern with a knob-controlled
fraction of outcomes replaced by coin flips (the ``B_PATTERN`` knob).  The
misprediction rate seen by the simulator's history-based predictor scales
with that fraction.
"""

from __future__ import annotations

from repro.codegen.synthesizer import GenerationContext, Pass
from repro.isa.program import BranchBehavior, Program


class RandomizeByTypePass(Pass):
    """Randomize branch directions at a given probability.

    Args:
        random_ratio: fraction of branch outcomes drawn at random
            (0 = fully periodic/predictable, 1 = fully random).
        base_pattern: periodic pattern used for non-randomized outcomes.
        taken_bias: probability a randomized outcome is taken.
    """

    requires = ("profile",)
    provides = ("branch_behaviour",)

    def __init__(
        self,
        random_ratio: float,
        base_pattern: tuple[bool, ...] = (True, True, False, True),
        taken_bias: float = 0.5,
    ):
        if not 0.0 <= random_ratio <= 1.0:
            raise ValueError("random_ratio must be within [0, 1]")
        self.random_ratio = random_ratio
        self.base_pattern = tuple(base_pattern)
        self.taken_bias = taken_bias

    def run(self, program: Program, context: GenerationContext) -> None:
        for n, instr in enumerate(program.branch_instructions()):
            instr.branch = BranchBehavior(
                pattern=self.base_pattern,
                random_ratio=self.random_ratio,
                seed=int(context.rng.integers(0, 2**31)) + n,
                taken_bias=self.taken_bias,
            )
        program.metadata["branch_random_ratio"] = self.random_ratio
