"""Register passes: reservation, initialization and allocation.

``DefaultRegisterAllocationPass`` implements the paper's register dependency
distance knob (``REG_DIST``): each instruction's sources are wired to the
destination of the instruction ``dd`` producers back, so the generated code
has ``dd`` independent dependency chains — the ILP the out-of-order core can
extract scales with the knob.
"""

from __future__ import annotations

from repro.codegen.synthesizer import GenerationContext, Pass
from repro.isa.program import Instruction, Program
from repro.isa.registers import Register, RegisterFile, RegisterKind


class ReserveRegistersPass(Pass):
    """Reserve registers so later passes cannot allocate them.

    MicroGrad reserves loop counters and memory-stream base pointers.
    """

    provides = ("reserved_registers",)

    def __init__(self, registers: list[Register | str]):
        self.registers = [
            RegisterFile.parse(r) if isinstance(r, str) else r for r in registers
        ]

    def run(self, program: Program, context: GenerationContext) -> None:
        for reg in self.registers:
            context.registers.reserve(reg)
        program.metadata["reserved_registers"] = [r.name for r in self.registers]


class InitializeRegistersPass(Pass):
    """Record initial register values for the test-case prologue.

    Args:
        value: either a literal integer applied to all registers or the
            string ``"RNDINT"`` for per-register deterministic random values
            (Listing 2 uses ``value=RNDINT``).
    """

    provides = ("initialized_registers",)

    def __init__(self, value: int | str = "RNDINT"):
        self.value = value

    def run(self, program: Program, context: GenerationContext) -> None:
        values: dict[str, int] = {}
        for reg in context.registers.all_registers():
            if isinstance(self.value, int):
                values[reg.name] = self.value
            else:
                values[reg.name] = int(context.rng.integers(0, 2**31))
        program.metadata["register_init"] = values


class DefaultRegisterAllocationPass(Pass):
    """Allocate destination and source operands at a dependency distance.

    Destinations rotate through the allocatable pool of each register file.
    Each source operand reads the destination written ``dd`` same-kind
    instructions earlier (falling back to a pool register before enough
    producers exist), which creates exactly ``dd`` parallel dependency
    chains per register file.

    Args:
        dd: register dependency distance knob (>= 1).
    """

    requires = ("profile",)
    provides = ("register_allocation",)

    def __init__(self, dd: int = 1):
        if dd < 1:
            raise ValueError("dependency distance must be >= 1")
        self.dd = dd

    def run(self, program: Program, context: GenerationContext) -> None:
        pools = {
            RegisterKind.INT: context.registers.allocatable(RegisterKind.INT),
            RegisterKind.FP: context.registers.allocatable(RegisterKind.FP),
        }
        for kind, pool in pools.items():
            if len(pool) < self.dd + 1:
                raise ValueError(
                    f"dependency distance {self.dd} needs at least "
                    f"{self.dd + 1} allocatable {kind.value} registers, "
                    f"have {len(pool)}"
                )
        # Ring of recent destinations per register file; sources at
        # distance dd read producers[-dd].
        producers: dict[RegisterKind, list[Register]] = {
            RegisterKind.INT: [],
            RegisterKind.FP: [],
        }
        next_dest = {RegisterKind.INT: 0, RegisterKind.FP: 0}

        for instr in program.body:
            kind = instr.idef.operand_kind
            pool = pools[kind]
            history = producers[kind]

            srcs: list[Register] = []
            for n in range(instr.idef.num_src):
                if len(history) >= self.dd:
                    # Every source reads the producer dd same-kind
                    # instructions back; extra sources fan out to the
                    # producers just before it so they do not shorten
                    # the chain.
                    srcs.append(history[-self.dd - min(n, len(history) - self.dd)])
                else:
                    srcs.append(pool[(n * 7) % len(pool)])
            instr.srcs = srcs

            dests: list[Register] = []
            for _ in range(instr.idef.num_dst):
                # Never allocate a destination that a live chain still
                # reads within the next dd instructions: rotate through a
                # window strictly larger than dd.
                window = min(len(pool), max(self.dd + 1, 4))
                reg = pool[next_dest[kind] % window]
                next_dest[kind] += 1
                dests.append(reg)
                history.append(reg)
            instr.dests = dests
            if not instr.idef.num_dst:
                # Keep chain spacing uniform for instructions without
                # destinations (stores, branches) by reusing the last
                # producer as a phantom: sources above already consumed it.
                pass
        program.metadata["dependency_distance"] = self.dd
