"""Instruction profile pass (``SetInstructionTypeByProfilePass``).

Rewrites the placeholder slots so the static instruction distribution
matches the requested profile exactly (largest-remainder apportionment),
then shuffles slot order deterministically so same-class instructions are
interleaved rather than clustered.
"""

from __future__ import annotations

from repro.codegen.synthesizer import GenerationContext, Pass
from repro.isa.instructions import InstructionDef, instruction_def
from repro.isa.program import Instruction, Program


def apportion(weights: dict[str, float], total: int) -> dict[str, int]:
    """Distribute ``total`` slots proportionally to ``weights``.

    Uses the largest-remainder method so the result sums exactly to
    ``total`` and each count is within one slot of the ideal share.

    Raises:
        ValueError: if weights are empty, negative, or sum to zero.
    """
    if not weights:
        raise ValueError("profile is empty")
    if any(w < 0 for w in weights.values()):
        raise ValueError("profile weights must be non-negative")
    weight_sum = sum(weights.values())
    if weight_sum <= 0:
        raise ValueError("profile weights sum to zero")

    ideal = {k: w / weight_sum * total for k, w in weights.items()}
    counts = {k: int(v) for k, v in ideal.items()}
    shortfall = total - sum(counts.values())
    # Hand remaining slots to the largest fractional remainders
    # (ties broken by name for determinism).
    remainders = sorted(
        weights, key=lambda k: (ideal[k] - counts[k], k), reverse=True
    )
    for k in remainders[:shortfall]:
        counts[k] += 1
    return counts


class SetInstructionTypeByProfilePass(Pass):
    """Assign mnemonics to the loop body according to a weighted profile.

    Args:
        profile: mapping of mnemonic to weight.  Weights are the raw
            instruction-fraction knob values of Listing 1; they need not
            sum to one.
    """

    requires = ("building_block",)
    provides = ("profile",)

    def __init__(self, profile: dict[str, float]):
        self.profile = {m.upper(): w for m, w in profile.items()}
        # Validate mnemonics eagerly so bad knobs fail at construction.
        for mnemonic in self.profile:
            instruction_def(mnemonic)

    def run(self, program: Program, context: GenerationContext) -> None:
        total = len(program.body)
        counts = apportion(self.profile, total)
        mnemonics: list[str] = []
        for mnemonic, count in sorted(counts.items()):
            mnemonics.extend([mnemonic] * count)
        # Deterministic interleaving: a fixed permutation from the context
        # RNG spreads classes through the loop body.
        order = context.rng.permutation(total)
        body: list[Instruction] = [None] * total  # type: ignore[list-item]
        for slot, mnemonic in zip(order, mnemonics):
            body[slot] = Instruction(idef=instruction_def(mnemonic))
        program.body = body
        program.metadata["profile"] = dict(counts)
