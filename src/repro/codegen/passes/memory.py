"""Memory stream pass (``GenericMemoryStreamsPass`` in Listing 2).

Distributes the program's loads and stores over a set of strided memory
streams.  Each stream is described the way Listing 2 writes it —
``[stream_id, size, ratio, stride, reuse_count, reuse_period]`` — and
every memory instruction assigned to a stream receives a declarative
:class:`~repro.isa.program.MemoryAccess` from which the simulator expands
concrete addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.synthesizer import GenerationContext, Pass
from repro.isa.program import MemoryAccess, Program

#: Streams are laid out in a 1 GB region (Table II: Memory 1GB) with
#: separation so distinct streams never alias.
_STREAM_REGION_BASE = 0x1000_0000
_STREAM_REGION_SIZE = 0x0400_0000  # 64 MB per stream slot


@dataclass(frozen=True)
class StreamSpec:
    """One memory stream: footprint/stride/locality knob values.

    Attributes:
        stream_id: stable identifier (also selects the address region).
        size: footprint in bytes.
        ratio: weight of this stream when distributing memory instructions.
        stride: bytes between consecutive distinct accesses.
        reuse_count: distinct addresses per temporal-reuse window.
        reuse_period: sweeps of each window before moving on.
    """

    stream_id: int
    size: int
    ratio: float
    stride: int
    reuse_count: int = 1
    reuse_period: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0 or self.stride <= 0:
            raise ValueError("stream size and stride must be positive")
        if self.ratio < 0:
            raise ValueError("stream ratio must be non-negative")
        if self.size > _STREAM_REGION_SIZE:
            raise ValueError(
                f"stream footprint {self.size} exceeds the region size"
            )


class GenericMemoryStreamsPass(Pass):
    """Assign loads/stores to streams proportionally to stream ratios.

    Accepts either :class:`StreamSpec` objects or the raw Listing 2 list
    form ``[id, size, ratio, stride, reuse_count, reuse_period]``.
    """

    requires = ("profile",)
    provides = ("memory_streams",)

    def __init__(self, streams: list[StreamSpec | list]):
        self.streams = [
            s if isinstance(s, StreamSpec) else StreamSpec(*s) for s in streams
        ]
        if not self.streams:
            raise ValueError("at least one memory stream is required")
        if sum(s.ratio for s in self.streams) <= 0:
            raise ValueError("stream ratios sum to zero")

    def run(self, program: Program, context: GenerationContext) -> None:
        mem_instrs = program.memory_instructions()
        if not mem_instrs:
            program.metadata["memory_streams"] = []
            return

        total_ratio = sum(s.ratio for s in self.streams)
        # Deterministic proportional assignment: walk instructions in
        # program order, assigning each to the stream furthest behind its
        # quota, so streams interleave the way Microprobe interleaves them.
        assigned: dict[int, int] = {s.stream_id: 0 for s in self.streams}
        phase_counter: dict[int, int] = {s.stream_id: 0 for s in self.streams}
        placed: list[tuple] = []
        for n, instr in enumerate(mem_instrs, start=1):
            deficits = [
                (assigned[s.stream_id] - n * s.ratio / total_ratio, i)
                for i, s in enumerate(self.streams)
            ]
            _, pick = min(deficits)
            spec = self.streams[pick]
            assigned[spec.stream_id] += 1
            instr.memory = MemoryAccess(
                stream_id=spec.stream_id,
                base=_STREAM_REGION_BASE + spec.stream_id * _STREAM_REGION_SIZE,
                footprint=spec.size,
                stride=spec.stride,
                reuse_count=spec.reuse_count,
                reuse_period=spec.reuse_period,
                phase=phase_counter[spec.stream_id],
            )
            placed.append(instr)
            phase_counter[spec.stream_id] += 1
        # Second pass: each stream advances collectively — every member
        # instruction steps by the stream's population per iteration.
        for instr in placed:
            instr.memory.step = max(1, assigned[instr.memory.stream_id])
        program.metadata["memory_streams"] = [
            {
                "stream_id": s.stream_id,
                "size": s.size,
                "ratio": s.ratio,
                "stride": s.stride,
                "reuse_count": s.reuse_count,
                "reuse_period": s.reuse_period,
                "instructions": assigned[s.stream_id],
            }
            for s in self.streams
        ]
