"""Loop skeleton pass (``SimpleBuildingBlockPass`` in Listing 2)."""

from __future__ import annotations

from repro.codegen.synthesizer import GenerationContext, Pass
from repro.isa.instructions import instruction_def
from repro.isa.program import Instruction, Program


class SimpleBuildingBlockPass(Pass):
    """Create a container (loop body) of ``loop_size`` placeholder slots.

    The placeholders are NOPs; the instruction-profile pass rewrites them.
    The paper's test cases use ~500 static instructions in an endless loop.
    """

    provides = ("building_block",)

    def __init__(self, loop_size: int):
        if loop_size < 1:
            raise ValueError("loop_size must be >= 1")
        self.loop_size = loop_size

    def run(self, program: Program, context: GenerationContext) -> None:
        nop = instruction_def("NOP")
        program.body = [Instruction(idef=nop) for _ in range(self.loop_size)]
        program.metadata["loop_size"] = self.loop_size
