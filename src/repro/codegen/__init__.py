"""Microprobe-like pass-based code generation framework.

The paper drives IBM's Microprobe through its Python scripting interface
(Listing 2).  This package reimplements the pass vocabulary MicroGrad uses:
a :class:`~repro.codegen.synthesizer.Synthesizer` applies an ordered list of
code-synthesis passes to an empty program, each pass filling in one aspect
(loop skeleton, instruction profile, branch randomization, memory streams,
register allocation at a target dependency distance, addresses).

The high-level entry point :func:`~repro.codegen.wrapper.generate_test_case`
maps a MicroGrad knob configuration (Listing 1) onto a pass pipeline and
returns the generated :class:`~repro.isa.program.Program`.
"""

from repro.codegen.synthesizer import GenerationContext, Synthesizer
from repro.codegen.wrapper import (
    KNOB_INSTRUCTIONS,
    MemoryStreamSpec,
    default_pass_list,
    generate_test_case,
)
from repro.codegen.passes.building_block import SimpleBuildingBlockPass
from repro.codegen.passes.registers import (
    DefaultRegisterAllocationPass,
    InitializeRegistersPass,
    ReserveRegistersPass,
)
from repro.codegen.passes.profile import SetInstructionTypeByProfilePass
from repro.codegen.passes.branches import RandomizeByTypePass
from repro.codegen.passes.memory import GenericMemoryStreamsPass
from repro.codegen.passes.addresses import UpdateInstructionAddressesPass
from repro.codegen.passes.verify import VerifyProgramPass

__all__ = [
    "Synthesizer",
    "GenerationContext",
    "generate_test_case",
    "default_pass_list",
    "MemoryStreamSpec",
    "KNOB_INSTRUCTIONS",
    "SimpleBuildingBlockPass",
    "ReserveRegistersPass",
    "InitializeRegistersPass",
    "SetInstructionTypeByProfilePass",
    "RandomizeByTypePass",
    "GenericMemoryStreamsPass",
    "DefaultRegisterAllocationPass",
    "UpdateInstructionAddressesPass",
    "VerifyProgramPass",
]
