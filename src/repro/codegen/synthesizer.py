"""Pass manager and generation context.

Mirrors Microprobe's synthesizer: passes are applied in order to an initially
empty program, and lightweight ordering rules catch pipelines that would
silently produce broken code (e.g. allocating registers before the
instruction profile exists).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.program import Program
from repro.isa.registers import RegisterFile


class PassOrderingError(RuntimeError):
    """A pass ran before one of its declared prerequisites."""


@dataclass
class GenerationContext:
    """Mutable state threaded through a synthesis run.

    Attributes:
        registers: architectural register file with reservations.
        rng: deterministic RNG shared by randomized passes.
        provides: capability tags published by completed passes; passes
            declare ``requires`` against these tags.
    """

    registers: RegisterFile = field(default_factory=RegisterFile)
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )
    provides: set[str] = field(default_factory=set)


class Pass:
    """Base class of every code-synthesis pass.

    Subclasses set :attr:`requires` / :attr:`provides` tags and implement
    :meth:`run`.  Tags give the synthesizer declarative ordering rules
    equivalent to Microprobe's pass ordering.
    """

    #: Capability tags that must be present before this pass runs.
    requires: tuple[str, ...] = ()
    #: Capability tags this pass publishes after running.
    provides: tuple[str, ...] = ()

    def run(self, program: Program, context: GenerationContext) -> None:
        """Transform ``program`` in place."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.name}>"


class Synthesizer:
    """Applies an ordered list of passes to produce a program.

    Example::

        synth = Synthesizer(passes=[SimpleBuildingBlockPass(500), ...])
        program = synth.synthesize()
    """

    def __init__(self, passes: list[Pass], seed: int = 0):
        self.passes = list(passes)
        self.seed = seed

    def synthesize(self) -> Program:
        """Run every pass in order and return the generated program.

        Raises:
            PassOrderingError: when a pass's ``requires`` tags are not yet
                provided by earlier passes.
        """
        program = Program()
        context = GenerationContext(rng=np.random.default_rng(self.seed))
        for p in self.passes:
            missing = [tag for tag in p.requires if tag not in context.provides]
            if missing:
                raise PassOrderingError(
                    f"{p.name} requires {missing} but only "
                    f"{sorted(context.provides)} are available; "
                    "reorder the pass list"
                )
            p.run(program, context)
            context.provides.update(p.provides)
        return program
