"""Instruction-level generation model (the GeST-style alternative).

Section II-B1 contrasts two stress-test generation models: the abstract
workload model MicroGrad adopts (few, well-defined knobs) and the
instruction-level model of GeST/Audit (per-instruction control, tuned
directly on the assembly).  This module implements the latter so the
paper's model comparison can be reproduced on the same substrate:

* a genome is an explicit mnemonic sequence (one gene per static
  instruction slot);
* :class:`SequenceProfilePass` materializes a genome into the loop body,
  after which the ordinary register/memory/branch passes apply;
* :class:`InstructionLevelSpace` provides the GA operators for which the
  paper says "important GA operators like crossover are much more
  valuable in an instruction-level model" — crossover splices
  instruction subsequences, mutation rewrites single slots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codegen.passes.addresses import UpdateInstructionAddressesPass
from repro.codegen.passes.branches import RandomizeByTypePass
from repro.codegen.passes.memory import GenericMemoryStreamsPass, StreamSpec
from repro.codegen.passes.registers import (
    DefaultRegisterAllocationPass,
    InitializeRegistersPass,
    ReserveRegistersPass,
)
from repro.codegen.passes.verify import VerifyProgramPass
from repro.codegen.synthesizer import GenerationContext, Pass, Synthesizer
from repro.codegen.wrapper import RESERVED_REGISTERS
from repro.isa.instructions import instruction_def
from repro.isa.program import Instruction, Program

#: Default gene alphabet: the Listing 1 mix mnemonics.
DEFAULT_ALPHABET = (
    "ADD", "MUL", "FADD.D", "FMUL.D", "BEQ", "BNE", "LD", "LW", "SD", "SW",
)


class SequenceProfilePass(Pass):
    """Materialize an explicit mnemonic sequence into the loop body.

    The instruction-level equivalent of
    :class:`~repro.codegen.passes.profile.SetInstructionTypeByProfilePass`:
    instead of apportioning fractions, the caller controls every slot.
    """

    provides = ("building_block", "profile")

    def __init__(self, mnemonics: list[str]):
        if not mnemonics:
            raise ValueError("sequence must be non-empty")
        self.defs = [instruction_def(m) for m in mnemonics]

    def run(self, program: Program, context: GenerationContext) -> None:
        program.body = [Instruction(idef=d) for d in self.defs]
        program.metadata["loop_size"] = len(self.defs)
        counts: dict[str, int] = {}
        for d in self.defs:
            counts[d.mnemonic] = counts.get(d.mnemonic, 0) + 1
        program.metadata["profile"] = counts


@dataclass(frozen=True)
class FixedCodeParams:
    """Non-genome parameters of instruction-level generation.

    The instruction-level model tunes the sequence; memory/branch/ILP
    context stays fixed (GeST fixes them in its templates similarly).
    """

    dependency_distance: int = 10
    mem_footprint_bytes: int = 16 * 1024
    mem_stride: int = 64
    branch_random_ratio: float = 0.1
    seed: int = 0


def genome_to_program(
    genome: list[str] | tuple[str, ...],
    params: FixedCodeParams | None = None,
) -> Program:
    """Generate the program encoded by a mnemonic genome."""
    params = params or FixedCodeParams()
    has_mem = any(
        instruction_def(m).is_memory for m in genome
    )
    passes: list[Pass] = [
        SequenceProfilePass(list(genome)),
        ReserveRegistersPass(list(RESERVED_REGISTERS)),
        InitializeRegistersPass(value="RNDINT"),
        RandomizeByTypePass(params.branch_random_ratio),
    ]
    if has_mem:
        passes.append(
            GenericMemoryStreamsPass(
                [StreamSpec(1, params.mem_footprint_bytes, 1.0,
                            params.mem_stride)]
            )
        )
    passes += [
        DefaultRegisterAllocationPass(dd=params.dependency_distance),
        UpdateInstructionAddressesPass(),
        VerifyProgramPass(),
    ]
    program = Synthesizer(passes, seed=params.seed).synthesize()
    program.metadata["genome"] = tuple(genome)
    program.metadata["model"] = "instruction-level"
    return program


class InstructionLevelSpace:
    """Genome space + GA operators for the instruction-level model.

    Attributes:
        length: genome length (static instructions; Table I's
            "Individual Size" is 25 for the prior-work GA).
        alphabet: mnemonics a gene may take.
    """

    def __init__(self, length: int = 25,
                 alphabet: tuple[str, ...] = DEFAULT_ALPHABET):
        if length < 2:
            raise ValueError("genome length must be >= 2")
        if not alphabet:
            raise ValueError("alphabet must be non-empty")
        for mnemonic in alphabet:
            instruction_def(mnemonic)  # validate eagerly
        self.length = length
        self.alphabet = tuple(alphabet)

    def random_genome(self, rng: np.random.Generator) -> tuple[str, ...]:
        """A uniformly random mnemonic sequence."""
        picks = rng.integers(0, len(self.alphabet), self.length)
        return tuple(self.alphabet[i] for i in picks)

    def crossover(self, a: tuple[str, ...], b: tuple[str, ...],
                  rng: np.random.Generator) -> tuple[str, ...]:
        """Single-point crossover: splice an instruction subsequence."""
        point = int(rng.integers(1, self.length))
        return a[:point] + b[point:]

    def mutate(self, genome: tuple[str, ...], rate: float,
               rng: np.random.Generator) -> tuple[str, ...]:
        """Rewrite each slot with probability ``rate``."""
        out = list(genome)
        for i in range(len(out)):
            if rng.random() < rate:
                out[i] = self.alphabet[int(rng.integers(0, len(self.alphabet)))]
        return tuple(out)


class GenomeEvaluator:
    """Memoizing genome -> metrics evaluator (Evaluator duck-type)."""

    def __init__(self, evaluate_program, params: FixedCodeParams | None = None):
        self._evaluate_program = evaluate_program
        self.params = params or FixedCodeParams()
        self._cache: dict[tuple[str, ...], dict[str, float]] = {}
        self.requested_evaluations = 0
        self.unique_evaluations = 0

    def evaluate_genome(self, genome: tuple[str, ...]) -> dict[str, float]:
        self.requested_evaluations += 1
        if genome in self._cache:
            return self._cache[genome]
        program = genome_to_program(genome, self.params)
        metrics = self._evaluate_program(program)
        self.unique_evaluations += 1
        self._cache[genome] = metrics
        return metrics

    def reset_counters(self) -> None:
        self.requested_evaluations = 0
        self.unique_evaluations = 0
