"""High-level knob-to-program wrapper.

This is the boundary the tuning mechanism talks to (Section III-B/III-C):
it receives a knob configuration — the Listing 1 dictionary — and builds
the Listing 2 pass pipeline that realizes it, returning the generated
program.

Knob vocabulary (matching Listing 1):

========== ====================================================
``ADD`` .. ``SW``   instruction-fraction knobs (relative weights)
``REG_DIST``        register dependency distance
``MEM_SIZE``        memory footprint in KB
``MEM_STRIDE``      access stride in bytes
``MEM_TEMP1``       temporal locality: distinct addresses to repeat
``MEM_TEMP2``       temporal locality: how often each is repeated
``B_PATTERN``       branch pattern randomization ratio
========== ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.codegen.passes.addresses import UpdateInstructionAddressesPass
from repro.codegen.passes.branches import RandomizeByTypePass
from repro.codegen.passes.building_block import SimpleBuildingBlockPass
from repro.codegen.passes.memory import GenericMemoryStreamsPass, StreamSpec
from repro.codegen.passes.profile import SetInstructionTypeByProfilePass
from repro.codegen.passes.registers import (
    DefaultRegisterAllocationPass,
    InitializeRegistersPass,
    ReserveRegistersPass,
)
from repro.codegen.passes.verify import VerifyProgramPass
from repro.codegen.synthesizer import Pass, Synthesizer
from repro.isa.program import Program

#: Knob name → ISA mnemonic for the instruction-fraction knobs of
#: Listing 1 (``FADDD`` is Listing 1's spelling of ``FADD.D``).
KNOB_INSTRUCTIONS: dict[str, str] = {
    "ADD": "ADD",
    "MUL": "MUL",
    "DIV": "DIV",
    "FADDD": "FADD.D",
    "FMULD": "FMUL.D",
    "FDIVD": "FDIV.D",
    "BEQ": "BEQ",
    "BNE": "BNE",
    "LD": "LD",
    "LW": "LW",
    "SD": "SD",
    "SW": "SW",
}

#: Registers MicroGrad keeps out of operand allocation: loop counter,
#: stream base pointers and the stack pointer.
RESERVED_REGISTERS = ("x1", "x2", "x3", "x4", "x5")

#: Default static loop size (Section IV-A1: "roughly 500 static
#: instructions in an endless loop").
DEFAULT_LOOP_SIZE = 500

MemoryStreamSpec = StreamSpec


@dataclass(frozen=True)
class GenerationOptions:
    """Non-knob generation parameters.

    Attributes:
        loop_size: static instructions in the loop body.
        seed: RNG seed for deterministic generation.
        base_pattern: periodic branch pattern before randomization.
    """

    loop_size: int = DEFAULT_LOOP_SIZE
    seed: int = 0
    base_pattern: tuple[bool, ...] = (True, True, False, True)


def _profile_from_knobs(knobs: dict) -> dict[str, float]:
    profile = {}
    for knob_name, mnemonic in KNOB_INSTRUCTIONS.items():
        weight = float(knobs.get(knob_name, 0.0))
        if weight > 0:
            profile[mnemonic] = weight
    if not profile:
        # The all-zero corner of the knob lattice: fall back to a pure
        # ALU loop so tuners exploring the corner still get a (terrible
        # for their loss) measurable program instead of an exception.
        profile["ADD"] = 1.0
    return profile


def _streams_from_knobs(knobs: dict) -> list[StreamSpec]:
    explicit = knobs.get("STREAMS")
    if explicit is not None:
        return [s if isinstance(s, StreamSpec) else StreamSpec(*s) for s in explicit]
    return [
        StreamSpec(
            stream_id=1,
            size=int(float(knobs.get("MEM_SIZE", 64)) * 1024),
            ratio=1.0,
            stride=int(knobs.get("MEM_STRIDE", 64)),
            reuse_count=int(knobs.get("MEM_TEMP1", 1)),
            reuse_period=int(knobs.get("MEM_TEMP2", 1)),
        )
    ]


def default_pass_list(
    knobs: dict, options: GenerationOptions | None = None
) -> list[Pass]:
    """The Listing 2 pipeline for a knob configuration."""
    options = options or GenerationOptions()
    has_mem = any(knobs.get(k, 0) > 0 for k in ("LD", "LW", "SD", "SW")) or (
        knobs.get("STREAMS")
    )
    passes: list[Pass] = [
        SimpleBuildingBlockPass(options.loop_size),
        ReserveRegistersPass(list(RESERVED_REGISTERS)),
        SetInstructionTypeByProfilePass(_profile_from_knobs(knobs)),
        InitializeRegistersPass(value="RNDINT"),
        RandomizeByTypePass(
            float(knobs.get("B_PATTERN", 0.0)), base_pattern=options.base_pattern
        ),
    ]
    if has_mem:
        passes.append(GenericMemoryStreamsPass(_streams_from_knobs(knobs)))
    passes += [
        DefaultRegisterAllocationPass(dd=int(knobs.get("REG_DIST", 1))),
        UpdateInstructionAddressesPass(),
        VerifyProgramPass(),
    ]
    return passes


def generation_fingerprint(
    knobs: dict, options: GenerationOptions | None = None
) -> tuple:
    """Equivalence key: equal fingerprints generate identical programs.

    Tuning epochs are full of knob configurations that differ only in
    ways the generator cannot see — proportionally scaled instruction
    weights (``apportion`` normalizes by the weight sum before rounding),
    ``B_PATTERN`` on a profile with no branches (the branch pass draws
    RNG per branch instruction, so zero branches means the knob never
    touches the program or the RNG stream), or memory-locality knobs
    when no memory instruction has weight (the memory pass is absent
    from the pipeline entirely).  This function maps a knob dict to a
    hashable key that quotients out exactly those differences, so the
    grouping planner can dispatch one generation + one simulation per
    group and fan the result back out.

    Safety over sharpness: the key errs toward *splitting*.  Unknown
    knob names are folded in verbatim (a future knob is never wrongly
    merged), and every parameter the pass pipeline reads — normalized
    profile, ``REG_DIST``, streams (only when the memory pass runs),
    ``B_PATTERN`` (only when the profile has branches), loop size, seed
    and base pattern — is part of the key.  Two configs with equal
    fingerprints satisfy ``program_fingerprint(generate_test_case(a))
    == program_fingerprint(generate_test_case(b))``; only
    ``metadata["knobs"]`` (provenance, never simulated) may differ.
    """
    from dataclasses import astuple

    options = options or GenerationOptions()
    profile = _profile_from_knobs(knobs)
    # Same normalization as apportion(): w / weight_sum is IEEE
    # correctly-rounded, so proportionally scaled profiles produce the
    # exact same ideal shares and therefore the same program.
    weight_sum = sum(profile.values())
    norm_profile = tuple(
        sorted((mnemonic, weight / weight_sum) for mnemonic, weight in profile.items())
    )
    # Identical has_mem expression to default_pass_list: when false the
    # memory pass is absent and the MEM_* knobs are provably inert.
    has_mem = any(knobs.get(k, 0) > 0 for k in ("LD", "LW", "SD", "SW")) or (
        knobs.get("STREAMS")
    )
    streams = (
        tuple(astuple(s) for s in _streams_from_knobs(knobs)) if has_mem else ()
    )
    # The branch pass consumes RNG once per branch *instruction*; with
    # no branches in the profile, B_PATTERN never reaches the program.
    has_branches = any(m in profile for m in ("BEQ", "BNE"))
    b_pattern = float(knobs.get("B_PATTERN", 0.0)) if has_branches else None
    known = set(KNOB_INSTRUCTIONS) | {
        "REG_DIST", "MEM_SIZE", "MEM_STRIDE", "MEM_TEMP1", "MEM_TEMP2",
        "B_PATTERN", "STREAMS",
    }
    extra = tuple(
        sorted((k, repr(v)) for k, v in knobs.items() if k not in known)
    )
    return (
        "genfp-v1",
        norm_profile,
        int(knobs.get("REG_DIST", 1)),
        b_pattern,
        streams,
        extra,
        options.loop_size,
        options.seed,
        tuple(options.base_pattern),
    )


def generate_test_case(
    knobs: dict, options: GenerationOptions | None = None
) -> Program:
    """Generate a test case from a knob configuration.

    Args:
        knobs: Listing 1 knob dictionary (see module docstring).  The
            optional ``STREAMS`` key overrides the single-stream memory
            knobs with explicit :class:`MemoryStreamSpec` entries.
        options: non-knob generation parameters.

    Returns:
        The generated, verified program; ``program.metadata["knobs"]``
        records the configuration for provenance.
    """
    options = options or GenerationOptions()
    with obs.span("codegen"):
        synth = Synthesizer(
            default_pass_list(knobs, options), seed=options.seed
        )
        program = synth.synthesize()
    obs.inc("codegen.programs")
    program.metadata["knobs"] = {
        k: (v if not isinstance(v, list) else list(v)) for k, v in knobs.items()
        if k != "STREAMS"
    }
    return program
