"""Top-level simulator: program in, :class:`SimStats` out.

Pipeline per run: expand the dynamic trace, warm and measure the cache
hierarchy and branch predictor on the exact event streams, analyze the
dependency graph, then hand everything to the interval timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import InstrClass
from repro.isa.program import Program
from repro.sim.branch import predictor_for_core
from repro.sim.cache import cyclic_code_hits
from repro.sim.config import CoreConfig
from repro.sim.depgraph import critical_path_per_iteration
from repro.sim.interval import MissProfile, compute_cycles
from repro.sim.stats import SimStats
from repro.sim.tlb import tlb_for_core
from repro.sim.trace import expand

#: Default dynamic-instruction budget per evaluation.  The paper runs 10M
#: dynamic instructions; our loops are periodic so steady-state metrics
#: converge far earlier (see EXPERIMENTS.md convergence check), and the
#: default keeps a full tuning run laptop-fast.  Pass a larger budget to
#: :meth:`Simulator.run` to match the paper exactly.
DEFAULT_INSTRUCTIONS = 20_000


@dataclass
class _MemSimResult:
    load_l1_misses: int = 0
    load_l2_misses: int = 0
    store_l1_misses: int = 0
    store_l2_misses: int = 0
    l1d_hits: int = 0
    l1d_accesses: int = 0
    l2_hits: int = 0
    l2_accesses: int = 0
    prefetch_installs: int = 0
    prefetch_hits: int = 0
    dtlb_misses: int = 0
    dtlb_accesses: int = 0


class Simulator:
    """Cycle-approximate simulator for one core configuration.

    Example::

        stats = Simulator(LARGE_CORE).run(program)
        print(stats.ipc, stats.metrics())
    """

    def __init__(self, core: CoreConfig):
        self.core = core

    # ------------------------------------------------------------------
    # component simulations
    # ------------------------------------------------------------------

    def _simulate_memory(self, trace, warmup_accesses: int) -> _MemSimResult:
        """Drive the L1D/L2 hierarchy over the exact access trace.

        This is the simulator's hot loop (tens of thousands of accesses
        per evaluation, hundreds of evaluations per tuning run), so the
        per-set LRU state is inlined as plain lists rather than going
        through :class:`SetAssociativeCache` method calls.
        """
        core = self.core
        l1_sets: list[list[int]] = [
            [] for _ in range(core.l1d.num_sets)
        ]
        l2_sets: list[list[int]] = [[] for _ in range(core.l2.num_sets)]
        n1 = core.l1d.num_sets
        n2 = core.l2.num_sets
        a1 = core.l1d.assoc
        a2 = core.l2.assoc
        prefetching = core.l2_prefetcher
        # Reference-prediction table: pc -> (last_line, stride, confirmed).
        rpt: dict[int, tuple[int, int, bool]] = {}
        prefetched: set[int] = set()
        tlb = tlb_for_core(core.name)
        # 64-byte lines, 4 KB pages: page = line >> 6.
        page_shift = 6

        res = _MemSimResult()
        lines = trace.mem_lines.tolist()
        stores = trace.mem_is_store.tolist()
        pcs = trace.mem_pcs.tolist()
        counting = warmup_accesses == 0
        for k, (pc, line, is_store) in enumerate(zip(pcs, lines, stores)):
            if not counting and k >= warmup_accesses:
                counting = True
                tlb.reset_stats()
            tlb.access(line << page_shift)
            set1 = l1_sets[line % n1]
            if line in set1:
                set1.remove(line)
                set1.append(line)
                if counting:
                    res.l1d_hits += 1
                    res.l1d_accesses += 1
                continue
            # L1 miss: fill L1, look up L2.
            set1.append(line)
            if len(set1) > a1:
                del set1[0]
            set2 = l2_sets[line % n2]
            if line in set2:
                l2_hit = True
                set2.remove(line)
                set2.append(line)
                if counting and line in prefetched:
                    prefetched.discard(line)
                    res.prefetch_hits += 1
            else:
                l2_hit = False
                set2.append(line)
                if len(set2) > a2:
                    evicted = set2[0]
                    del set2[0]
                    prefetched.discard(evicted)
            if prefetching:
                last_line, last_stride, confirmed = rpt.get(
                    pc, (line, 0, False)
                )
                stride = line - last_line
                if stride:
                    confirmed = stride == last_stride
                if confirmed and stride:
                    for d in (1, 2):
                        target = line + stride * d
                        pset = l2_sets[target % n2]
                        if target not in pset:
                            pset.append(target)
                            if len(pset) > a2:
                                evicted = pset[0]
                                del pset[0]
                                prefetched.discard(evicted)
                            prefetched.add(target)
                            if counting:
                                res.prefetch_installs += 1
                rpt[pc] = (line, stride if stride else last_stride, confirmed)
            if counting:
                res.l1d_accesses += 1
                res.l2_accesses += 1
                if l2_hit:
                    res.l2_hits += 1
                if is_store:
                    res.store_l1_misses += 1
                    if not l2_hit:
                        res.store_l2_misses += 1
                else:
                    res.load_l1_misses += 1
                    if not l2_hit:
                        res.load_l2_misses += 1
        res.dtlb_misses = tlb.misses
        res.dtlb_accesses = tlb.accesses
        return res

    def _simulate_branches(self, trace, warmup_branches: int) -> tuple[int, int]:
        """gshare direction prediction over the exact outcome trace.

        Functionally identical to
        :class:`repro.sim.branch.GSharePredictor` but inlined with plain
        Python lists — this loop runs for every dynamic branch of every
        evaluation and dominates tuning runtime otherwise.
        """
        reference = predictor_for_core(self.core.name)
        entries = reference.table.entries
        history_bits = getattr(reference, "history_bits", 0)
        entry_mask = entries - 1
        history_mask = (1 << history_bits) - 1

        counters = [2] * entries  # weakly taken
        history = 0
        mispredicts = 0
        lookups = 0
        pcs = trace.branch_pcs.tolist()
        outcomes = trace.branch_outcomes.tolist()
        counting = warmup_branches == 0
        for k, (pc, taken) in enumerate(zip(pcs, outcomes)):
            if not counting and k >= warmup_branches:
                counting = True
            index = ((pc >> 2) ^ history) & entry_mask
            c = counters[index]
            if counting:
                lookups += 1
                if (c >= 2) != taken:
                    mispredicts += 1
            if taken:
                if c < 3:
                    counters[index] = c + 1
                history = ((history << 1) | 1) & history_mask
            else:
                if c > 0:
                    counters[index] = c - 1
                history = (history << 1) & history_mask
        return mispredicts, lookups

    def _instruction_cache(
        self, program: Program, iterations: int
    ) -> tuple[int, int, int]:
        """(l1i hits, l1i misses, l2-side code misses) for the window."""
        core = self.core
        code_bytes = program.metadata.get(
            "code_bytes", len(program) * 4
        )
        num_lines = max(1, code_bytes // core.l1i.line_bytes)
        hits, misses = cyclic_code_hits(
            num_lines, core.l1i.num_sets, core.l1i.assoc, iterations
        )
        # The loop's code always fits somewhere up the hierarchy; L2-side
        # code misses only occur if the code exceeds the L2 too.
        l2_lines_capacity = core.l2.size_bytes // core.l2.line_bytes
        if num_lines > l2_lines_capacity:
            _, l2_misses = cyclic_code_hits(
                num_lines,
                core.l2.num_sets,
                core.l2.assoc,
                iterations,
            )
        else:
            l2_misses = 0
        return hits, misses, l2_misses

    #: Upper bound on the adaptive warmup (loop iterations), keeping
    #: worst-case evaluation cost bounded.  Streams that cannot wrap
    #: within this many iterations behave identically cold or warm (they
    #: stream through caches far smaller than their footprint).
    MAX_WARMUP_ITERATIONS = 400
    #: Measured-window bounds (loop iterations).  The generated loops are
    #: periodic, so a short steady-state window yields exact rates.
    MIN_MEASURE_ITERATIONS = 24
    MAX_MEASURE_ITERATIONS = 160

    def _wrap_iterations(self, program: Program) -> int:
        """Iterations until the slowest relevant stream wraps once."""
        need = 0
        for instr in program.memory_instructions():
            mem = instr.memory
            if mem is None or mem.step <= 0:
                continue
            # Footprints beyond ~1.2x the L2 stream whether cold or warm.
            if mem.footprint > 1.2 * self.core.l2.size_bytes:
                continue
            distinct_per_sweep = max(1, mem.footprint // mem.stride)
            distinct_per_iter = max(1, mem.step // mem.reuse_period)
            need = max(need, int(distinct_per_sweep / distinct_per_iter) + 1)
        return need

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------

    def run(
        self,
        program: Program,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_fraction: float = 0.2,
    ) -> SimStats:
        """Simulate ``instructions`` dynamic instructions of ``program``.

        Args:
            program: generated test case (endless loop body).
            instructions: dynamic instruction budget; rounded to whole
                loop iterations (minimum 2).
            warmup_fraction: leading fraction of iterations used to warm
                caches and predictors, excluded from the measured window.

        Returns:
            Measured-window statistics.
        """
        program.validate()
        loop = len(program)
        budget_iters = max(2, round(instructions / loop))
        # Mid-sized footprints (bigger than L1, not much bigger than L2)
        # only reach cache steady state after the streams wrap; extend the
        # warmup so they wrap once, then measure a short periodic window.
        # Footprints far beyond the L2 behave identically cold or warm
        # (both stream), so the budget is not wasted on them.
        wrap = self._wrap_iterations(program)
        if wrap:
            warmup_iters = min(
                max(int(1.05 * wrap) + 1,
                    int(budget_iters * warmup_fraction)),
                self.MAX_WARMUP_ITERATIONS,
            )
        else:
            warmup_iters = max(1, int(budget_iters * warmup_fraction))
        measure_iters = min(
            max(self.MIN_MEASURE_ITERATIONS,
                budget_iters - warmup_iters),
            self.MAX_MEASURE_ITERATIONS,
        )
        iterations = warmup_iters + measure_iters

        trace = expand(program, iterations, line_bytes=self.core.l1d.line_bytes)

        mem_per_iter = len(program.memory_instructions())
        br_per_iter = len(program.branch_instructions())
        mem = self._simulate_memory(trace, warmup_iters * mem_per_iter)
        mispredicts, branch_lookups = self._simulate_branches(
            trace, warmup_iters * br_per_iter
        )
        i_hits, i_misses, i_l2_misses = self._instruction_cache(
            program, measure_iters
        )

        static_counts = program.class_counts()
        class_counts = {c: n * measure_iters for c, n in static_counts.items()}
        total = loop * measure_iters

        dep_cycles = critical_path_per_iteration(program, self.core)
        dd = float(program.metadata.get("dependency_distance", 4))
        streams = program.metadata.get("memory_streams") or []

        misses = MissProfile(
            branch_mispredicts=mispredicts,
            icache_l1_misses=i_misses,
            icache_l2_misses=i_l2_misses,
            load_l1_misses=mem.load_l1_misses,
            load_l2_misses=mem.load_l2_misses,
            store_l1_misses=mem.store_l1_misses,
            store_l2_misses=mem.store_l2_misses,
            dtlb_misses=mem.dtlb_misses,
        )
        cycles, breakdown = compute_cycles(
            self.core,
            total,
            class_counts,
            dep_cycles,
            loop,
            misses,
            dependency_distance=dd,
            parallel_streams=max(1, len(streams)),
        )

        l1d_hit_rate = (
            mem.l1d_hits / mem.l1d_accesses if mem.l1d_accesses else 1.0
        )
        dtlb_miss_rate = (
            mem.dtlb_misses / mem.dtlb_accesses if mem.dtlb_accesses else 0.0
        )
        l2_hit_rate = mem.l2_hits / mem.l2_accesses if mem.l2_accesses else 1.0
        l1i_hit_rate = (
            i_hits / (i_hits + i_misses) if (i_hits + i_misses) else 1.0
        )
        mispredict_rate = mispredicts / branch_lookups if branch_lookups else 0.0

        group_fractions = program.group_fractions()

        return SimStats(
            core=self.core.name,
            instructions=total,
            cycles=cycles,
            ipc=total / cycles,
            l1i_hit_rate=l1i_hit_rate,
            l1d_hit_rate=l1d_hit_rate,
            l2_hit_rate=l2_hit_rate,
            mispredict_rate=mispredict_rate,
            dtlb_miss_rate=dtlb_miss_rate,
            group_fractions=group_fractions,
            breakdown=breakdown,
            extra={
                "iterations": measure_iters,
                "warmup_iterations": warmup_iters,
                "dep_cycles_per_iteration": dep_cycles,
                "branch_lookups": branch_lookups,
                "l1d_accesses": mem.l1d_accesses,
                "l2_accesses": mem.l2_accesses,
                "load_l2_misses": mem.load_l2_misses,
                "store_l2_misses": mem.store_l2_misses,
                "prefetch_installs": mem.prefetch_installs,
                "prefetch_hits": mem.prefetch_hits,
                "class_counts": {
                    c.value: n for c, n in class_counts.items()
                },
            },
        )
