"""Top-level simulator: program in, :class:`SimStats` out.

The simulation is an explicit three-stage pipeline:

1. **Trace artifact** (:mod:`repro.sim.artifact`) — expand the dynamic
   trace, analyze the dependency graph and characterize the instruction
   mix once per (program fingerprint, instruction budget);
2. **Event simulation** (:mod:`repro.sim.events`) — drive the cache
   hierarchy, branch predictor and TLB of one core config over the
   shared trace, memoized per the core parameters each event sim reads;
3. **Interval timing** (:mod:`repro.sim.interval`) — convert instruction
   mix + miss events into cycles, batched over core configs.

:meth:`Simulator.run` evaluates one core; :meth:`Simulator.run_many`
evaluates a batch of core configs against one shared artifact, which is
several times faster than independent runs because stages 1-2 are shared
wherever the configs' parameters cannot distinguish them.
"""

from __future__ import annotations

from repro import obs
from repro.isa.program import Program
from repro.sim import events
from repro.sim.artifact import (
    MAX_MEASURE_ITERATIONS as _MAX_MEASURE_ITERATIONS,
    MAX_WARMUP_ITERATIONS as _MAX_WARMUP_ITERATIONS,
    MIN_MEASURE_ITERATIONS as _MIN_MEASURE_ITERATIONS,
    TraceArtifact,
    TraceArtifactCache,
    artifact_for,
    program_fingerprint,
)
from repro.sim.config import CoreConfig
from repro.sim.interval import IntervalInputs, MissProfile, compute_cycles_batch
from repro.sim.stats import SimStats

#: Default dynamic-instruction budget per evaluation.  The paper runs 10M
#: dynamic instructions; our loops are periodic so steady-state metrics
#: converge far earlier (see EXPERIMENTS.md convergence check), and the
#: default keeps a full tuning run laptop-fast.  Pass a larger budget to
#: :meth:`Simulator.run` to match the paper exactly.
DEFAULT_INSTRUCTIONS = 20_000

#: Artifacts retained per Simulator instance (platforms re-evaluate the
#: same program under one core repeatedly during a tuning epoch).
_INSTANCE_CACHE_SIZE = 8


class Simulator:
    """Cycle-approximate simulator for one core configuration.

    Example::

        stats = Simulator(LARGE_CORE).run(program)
        print(stats.ipc, stats.metrics())

    For a multi-config sweep over one program, use the batched form,
    which shares the trace artifact across the whole batch::

        stats_list = Simulator.run_many([core_a, core_b], program)
    """

    #: Iteration-schedule bounds (kept as class attributes for
    #: backwards compatibility; the values live in ``repro.sim.artifact``).
    MAX_WARMUP_ITERATIONS = _MAX_WARMUP_ITERATIONS
    MIN_MEASURE_ITERATIONS = _MIN_MEASURE_ITERATIONS
    MAX_MEASURE_ITERATIONS = _MAX_MEASURE_ITERATIONS

    def __init__(self, core: CoreConfig,
                 artifact_cache: TraceArtifactCache | None = None):
        self.core = core
        self._artifacts = artifact_cache or TraceArtifactCache(
            maxsize=_INSTANCE_CACHE_SIZE
        )

    # The artifact cache is per-process working state: excluding it from
    # the pickled form keeps worker shipping cheap and — critically —
    # keeps the pickled bytes identical to pre-pipeline Simulators, so
    # platform-identity hashes (disk-cache contexts) survive unchanged.
    # Unpickled simulators (i.e. worker-side platform clones) join the
    # process-wide cache rather than getting a private one, so every
    # chunk a worker evaluates — and the on-disk artifact store, when
    # one is attached — shares trace work across the whole process.
    def __getstate__(self) -> dict:
        return {"core": self.core}

    def __setstate__(self, state: dict) -> None:
        from repro.sim.artifact import GLOBAL_ARTIFACT_CACHE

        self.core = state["core"]
        self._artifacts = GLOBAL_ARTIFACT_CACHE

    # ------------------------------------------------------------------
    # staged pipeline
    # ------------------------------------------------------------------

    @staticmethod
    def _event_pass(
        core: CoreConfig,
        artifact: TraceArtifact,
        warmup_fraction: float,
        engine: str | None = None,
    ) -> tuple[IntervalInputs, dict]:
        """Stages 1-2 for one core: schedule, events, interval inputs."""
        warmup_iters, measure_iters = artifact.schedule(core, warmup_fraction)
        iterations = warmup_iters + measure_iters

        mem = artifact.memory_events(
            core, warmup_iters, iterations, engine=engine
        )
        mispredicts, branch_lookups = artifact.branch_events(
            core, warmup_iters, iterations, engine=engine
        )
        i_hits, i_misses, i_l2_misses = artifact.icache_events(
            core, measure_iters, engine=engine
        )

        class_counts = {
            c: n * measure_iters for c, n in artifact.static_counts.items()
        }
        inputs = IntervalInputs(
            core=core,
            total_instructions=artifact.loop_size * measure_iters,
            class_counts=class_counts,
            dep_cycles_per_iteration=artifact.dep_cycles(core),
            loop_size=artifact.loop_size,
            misses=MissProfile(
                branch_mispredicts=mispredicts,
                icache_l1_misses=i_misses,
                icache_l2_misses=i_l2_misses,
                load_l1_misses=mem.load_l1_misses,
                load_l2_misses=mem.load_l2_misses,
                store_l1_misses=mem.store_l1_misses,
                store_l2_misses=mem.store_l2_misses,
                dtlb_misses=mem.dtlb_misses,
            ),
            dependency_distance=artifact.dependency_distance,
            parallel_streams=artifact.parallel_streams,
        )
        context = {
            "mem": mem,
            "mispredicts": mispredicts,
            "branch_lookups": branch_lookups,
            "i_hits": i_hits,
            "i_misses": i_misses,
            "warmup_iters": warmup_iters,
            "measure_iters": measure_iters,
        }
        return inputs, context

    @staticmethod
    def _assemble_stats(
        core: CoreConfig,
        artifact: TraceArtifact,
        inputs: IntervalInputs,
        context: dict,
        timing,
    ) -> SimStats:
        """Package one core's pipeline outputs into :class:`SimStats`."""
        mem = context["mem"]
        mispredicts = context["mispredicts"]
        branch_lookups = context["branch_lookups"]
        i_hits, i_misses = context["i_hits"], context["i_misses"]
        total = inputs.total_instructions

        l1d_hit_rate = (
            mem.l1d_hits / mem.l1d_accesses if mem.l1d_accesses else 1.0
        )
        dtlb_miss_rate = (
            mem.dtlb_misses / mem.dtlb_accesses if mem.dtlb_accesses else 0.0
        )
        l2_hit_rate = mem.l2_hits / mem.l2_accesses if mem.l2_accesses else 1.0
        l1i_hit_rate = (
            i_hits / (i_hits + i_misses) if (i_hits + i_misses) else 1.0
        )
        mispredict_rate = (
            mispredicts / branch_lookups if branch_lookups else 0.0
        )

        cycles = timing.cycles
        return SimStats(
            core=core.name,
            instructions=total,
            cycles=cycles,
            ipc=total / cycles,
            l1i_hit_rate=l1i_hit_rate,
            l1d_hit_rate=l1d_hit_rate,
            l2_hit_rate=l2_hit_rate,
            mispredict_rate=mispredict_rate,
            dtlb_miss_rate=dtlb_miss_rate,
            group_fractions=dict(artifact.group_fractions),
            breakdown=timing.breakdown,
            binding_bound=timing.binding_bound,
            extra={
                "iterations": context["measure_iters"],
                "warmup_iterations": context["warmup_iters"],
                "dep_cycles_per_iteration": inputs.dep_cycles_per_iteration,
                "branch_lookups": branch_lookups,
                "l1d_accesses": mem.l1d_accesses,
                "l2_accesses": mem.l2_accesses,
                "load_l2_misses": mem.load_l2_misses,
                "store_l2_misses": mem.store_l2_misses,
                "prefetch_installs": mem.prefetch_installs,
                "prefetch_hits": mem.prefetch_hits,
                "class_counts": {
                    c.value: n for c, n in inputs.class_counts.items()
                },
            },
        )

    # ------------------------------------------------------------------
    # main entry points
    # ------------------------------------------------------------------

    def run(
        self,
        program: Program,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_fraction: float = 0.2,
        artifact: TraceArtifact | None = None,
        engine: str | None = None,
    ) -> SimStats:
        """Simulate ``instructions`` dynamic instructions of ``program``.

        Args:
            program: generated test case (endless loop body).
            instructions: dynamic instruction budget; rounded to whole
                loop iterations (minimum 2).
            warmup_fraction: leading fraction of iterations used to warm
                caches and predictors, excluded from the measured window.
            artifact: optionally, a prebuilt trace artifact for this
                (program, budget) pair — e.g. one shared by a
                :class:`~repro.core.platform.CompositePlatform`.
            engine: stage-2 event engine (``reference`` / ``vectorized``,
                see :mod:`repro.sim.events`); ``None`` uses the process
                default.  Engines are bit-identical.

        Returns:
            Measured-window statistics.
        """
        return self.run_many(
            [self.core],
            program,
            instructions=instructions,
            warmup_fraction=warmup_fraction,
            artifact=artifact,
            artifact_cache=self._artifacts,
            engine=engine,
        )[0]

    def run_group(
        self,
        program: Program,
        count: int,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_fraction: float = 0.2,
        artifact: TraceArtifact | None = None,
        engine: str | None = None,
    ) -> list[SimStats]:
        """Simulate ``count`` equivalent evaluations of ``program``.

        The generation-batched tuning path collapses a group of knob
        configurations that provably generate this exact program into
        one dispatch; this is its entry point.  It is literally
        ``run_many([self.core] * count, ..., config_batch=True)``: the
        group's identical cores dedup to one shared event pass, and each
        caller gets its own (bit-identical) :class:`SimStats` back.
        """
        return self.run_many(
            [self.core] * count,
            program,
            instructions=instructions,
            warmup_fraction=warmup_fraction,
            artifact=artifact,
            artifact_cache=self._artifacts,
            engine=engine,
            config_batch=True,
        )

    @classmethod
    def run_many(
        cls,
        cores: list[CoreConfig],
        program: Program,
        instructions: int = DEFAULT_INSTRUCTIONS,
        warmup_fraction: float = 0.2,
        artifact: TraceArtifact | None = None,
        artifact_cache: TraceArtifactCache | None = None,
        engine: str | None = None,
        config_batch: bool = True,
    ) -> list[SimStats]:
        """Simulate one program under a batch of core configurations.

        The trace artifact is computed (or fetched) once and shared by
        the whole batch: trace expansion, dependency analysis and every
        event simulation are memoized on the core parameters they read,
        so configs differing only in back-end structure reuse each
        other's event streams outright.  With ``config_batch`` (the
        default) the vectorized engine additionally evaluates all
        *distinct* event keys in the batch over one shared block of
        precomputed trace columns before the per-core passes run, so a
        sweep pays for the trace-derived work once instead of once per
        config.  Results are bit-identical to
        ``[Simulator(c).run(program, ...) for c in cores]``.

        Args:
            cores: core configurations to evaluate, in order.
            program: generated test case (endless loop body).
            instructions: dynamic instruction budget per evaluation.
            warmup_fraction: warmup share of the iteration budget.
            artifact: optional prebuilt artifact for (program, budget).
            artifact_cache: cache to fetch/build the artifact through;
                defaults to the process-wide artifact cache.
            engine: stage-2 event engine (``reference`` / ``vectorized``);
                ``None`` uses the process default.  Engines are
                bit-identical, and event memoization is engine-stamped.
            config_batch: prefill the artifact's event memos through the
                config-batched kernels when the vectorized engine is
                active.  Disable to force independent per-config passes
                (the benchmark baseline); outputs are identical.

        Returns:
            One :class:`SimStats` per core, in input order.
        """
        with obs.span("sim.run_many"):
            return cls._run_many(
                cores, program, instructions, warmup_fraction,
                artifact, artifact_cache, engine, config_batch,
            )

    @classmethod
    def _run_many(
        cls,
        cores: list[CoreConfig],
        program: Program,
        instructions: int,
        warmup_fraction: float,
        artifact: TraceArtifact | None,
        artifact_cache: TraceArtifactCache | None,
        engine: str | None,
        config_batch: bool,
    ) -> list[SimStats]:
        cache = None
        if artifact is None:
            from repro.sim.artifact import GLOBAL_ARTIFACT_CACHE

            cache = (
                artifact_cache if artifact_cache is not None
                else GLOBAL_ARTIFACT_CACHE
            )
            artifact = artifact_for(
                program, instructions, cache=artifact_cache
            )
        elif artifact.instructions != instructions:
            raise ValueError(
                f"artifact was built for a budget of "
                f"{artifact.instructions} instructions, not {instructions}"
            )
        elif (
            artifact.program is not program
            and artifact.fingerprint != program_fingerprint(program)
        ):
            # Same-object is the common sharing path (free to check);
            # otherwise the fingerprint catches an artifact reused
            # across the wrong program before it misattributes stats.
            raise ValueError(
                "artifact was built for a different program "
                f"(fingerprint {artifact.fingerprint})"
            )
        if (
            config_batch
            and len(cores) > 1
            and events.resolve_engine(engine) == "vectorized"
        ):
            # One config-batched kernel pass per event family fills the
            # memos; the per-core passes below then hit them outright.
            schedules = [
                artifact.schedule(core, warmup_fraction) for core in cores
            ]
            warmups = [w for w, _ in schedules]
            iterations = [w + m for w, m in schedules]
            artifact.memory_events_batch(
                cores, warmups, iterations, engine=engine
            )
            artifact.branch_events_batch(
                cores, warmups, iterations, engine=engine
            )
            artifact.icache_events_batch(
                cores, [m for _, m in schedules], engine=engine
            )
        passes = [
            cls._event_pass(core, artifact, warmup_fraction, engine=engine)
            for core in cores
        ]
        if cache is not None:
            # Capture the stages this batch memoized in the on-disk
            # artifact store (no-op unless one is attached).
            cache.persist(artifact)
        timings = compute_cycles_batch([inputs for inputs, _ in passes])
        return [
            cls._assemble_stats(core, artifact, inputs, context, timing)
            for core, (inputs, context), timing in zip(
                cores, passes, timings
            )
        ]
