"""Register dependency-graph analysis of the loop body.

The timing model needs the data-dependency throughput bound: the critical
path length added per loop iteration in steady state, including loop-carried
dependencies.  Unrolling the body a few iterations and taking the increment
of the longest finish time converges to that bound because the dependence
structure is periodic.
"""

from __future__ import annotations

from repro.isa.instructions import InstrClass
from repro.isa.program import Program
from repro.sim.config import CoreConfig


def instruction_latency(iclass_latency: int, iclass: InstrClass,
                        core: CoreConfig) -> float:
    """Effective dataflow latency of one instruction.

    Loads use the L1D hit latency (miss stalls are charged separately by
    the interval model); everything else uses its definition latency.
    """
    if iclass is InstrClass.LOAD:
        return float(core.l1d.latency)
    if iclass is InstrClass.STORE:
        return 1.0
    return float(iclass_latency)


def critical_path_per_iteration(
    program: Program, core: CoreConfig, unroll: int = 6
) -> float:
    """Steady-state critical path cycles added per loop iteration.

    Performs longest-path dynamic programming over ``unroll`` copies of the
    body, honouring register dependencies (including loop-carried ones),
    and returns the increment between the last two iterations' completion
    times.
    """
    if not program.body:
        return 0.0
    last_write: dict = {}
    totals: list[float] = []
    finish_max = 0.0
    for _ in range(unroll):
        for instr in program.body:
            ready = 0.0
            for src in instr.srcs:
                ready = max(ready, last_write.get(src, 0.0))
            finish = ready + instruction_latency(
                instr.idef.latency, instr.iclass, core
            )
            for dst in instr.dests:
                last_write[dst] = finish
            if finish > finish_max:
                finish_max = finish
        totals.append(finish_max)
    if len(totals) < 2:
        return totals[0]
    return max(0.0, totals[-1] - totals[-2])
