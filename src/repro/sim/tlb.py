"""Data TLB model.

Section II-A2 lists TLB miss rates among the low-level target metrics a
clone may need to match.  The model is a fully-associative LRU TLB over
4 KB pages; misses charge a page-walk penalty in the interval model.
Implemented over an ordered dict so both hit and eviction paths are O(1).
"""

from __future__ import annotations

from collections import OrderedDict

PAGE_BYTES = 4096


class DataTLB:
    """Fully-associative LRU translation buffer.

    Attributes:
        entries: translation capacity.
        hits / misses: access counters.
    """

    def __init__(self, entries: int = 64):
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        """Zero counters, keep translations (for warmup boundaries)."""
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Translate one byte address; returns True on TLB hit."""
        page = address // PAGE_BYTES
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = None
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Missed fraction of all translations (0.0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0


def tlb_for_core(core_name: str) -> DataTLB:
    """Default DTLB sizing per Table II core.

    Derived cores (``large-tournament`` etc., see
    :func:`repro.sim.branch.predictor_for_core`) inherit their base
    family's sizing.
    """
    large = core_name == "large" or core_name.startswith("large-")
    return DataTLB(entries=128 if large else 48)
