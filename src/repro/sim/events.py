"""Stage 2 of the simulator pipeline: per-core event simulation.

The functions here drive one core configuration's cache hierarchy, branch
predictor, TLB and instruction cache over a shared
:class:`~repro.sim.trace.ExpandedTrace` (stage 1,
:mod:`repro.sim.artifact`) and count the miss events the interval timing
model (stage 3, :mod:`repro.sim.interval`) charges for.

Each simulation is a pure function of (core parameters, trace, warmup
boundary), and each exposes a ``*_key`` companion returning exactly the
core parameters it reads.  The keys let :class:`~repro.sim.artifact.
TraceArtifact` memoize event results across a batch of core configs: two
configs that differ only in back-end width share one memory simulation
bit-for-bit, which is where ``Simulator.run_many`` earns its speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.branch import predictor_for_core
from repro.sim.cache import cyclic_code_hits
from repro.sim.config import CoreConfig
from repro.sim.tlb import tlb_for_core
from repro.sim.trace import ExpandedTrace


@dataclass
class MemoryEvents:
    """L1D/L2/TLB/prefetch event counts for one measurement window."""

    load_l1_misses: int = 0
    load_l2_misses: int = 0
    store_l1_misses: int = 0
    store_l2_misses: int = 0
    l1d_hits: int = 0
    l1d_accesses: int = 0
    l2_hits: int = 0
    l2_accesses: int = 0
    prefetch_installs: int = 0
    prefetch_hits: int = 0
    dtlb_misses: int = 0
    dtlb_accesses: int = 0


def memory_event_key(core: CoreConfig) -> tuple:
    """Every core parameter :func:`simulate_memory` reads."""
    return (
        core.l1d.num_sets,
        core.l1d.assoc,
        core.l1d.line_bytes,
        core.l2.num_sets,
        core.l2.assoc,
        core.l2_prefetcher,
        tlb_for_core(core.name).entries,
    )


def simulate_memory(
    core: CoreConfig, trace: ExpandedTrace, warmup_accesses: int
) -> MemoryEvents:
    """Drive the L1D/L2 hierarchy over the exact access trace.

    This is the simulator's hot loop (tens of thousands of accesses per
    evaluation, hundreds of evaluations per tuning run), so the per-set
    LRU state is inlined as plain lists rather than going through
    :class:`SetAssociativeCache` method calls.
    """
    l1_sets: list[list[int]] = [[] for _ in range(core.l1d.num_sets)]
    l2_sets: list[list[int]] = [[] for _ in range(core.l2.num_sets)]
    n1 = core.l1d.num_sets
    n2 = core.l2.num_sets
    a1 = core.l1d.assoc
    a2 = core.l2.assoc
    prefetching = core.l2_prefetcher
    # Reference-prediction table: pc -> (last_line, stride, confirmed).
    rpt: dict[int, tuple[int, int, bool]] = {}
    prefetched: set[int] = set()
    tlb = tlb_for_core(core.name)
    # 64-byte lines, 4 KB pages: page = line >> 6.
    page_shift = 6

    res = MemoryEvents()
    lines = trace.mem_lines.tolist()
    stores = trace.mem_is_store.tolist()
    pcs = trace.mem_pcs.tolist()
    counting = warmup_accesses == 0
    for k, (pc, line, is_store) in enumerate(zip(pcs, lines, stores)):
        if not counting and k >= warmup_accesses:
            counting = True
            tlb.reset_stats()
        tlb.access(line << page_shift)
        set1 = l1_sets[line % n1]
        if line in set1:
            set1.remove(line)
            set1.append(line)
            if counting:
                res.l1d_hits += 1
                res.l1d_accesses += 1
            continue
        # L1 miss: fill L1, look up L2.
        set1.append(line)
        if len(set1) > a1:
            del set1[0]
        set2 = l2_sets[line % n2]
        if line in set2:
            l2_hit = True
            set2.remove(line)
            set2.append(line)
            if counting and line in prefetched:
                prefetched.discard(line)
                res.prefetch_hits += 1
        else:
            l2_hit = False
            set2.append(line)
            if len(set2) > a2:
                evicted = set2[0]
                del set2[0]
                prefetched.discard(evicted)
        if prefetching:
            last_line, last_stride, confirmed = rpt.get(pc, (line, 0, False))
            stride = line - last_line
            if stride:
                confirmed = stride == last_stride
            if confirmed and stride:
                for d in (1, 2):
                    target = line + stride * d
                    pset = l2_sets[target % n2]
                    if target not in pset:
                        pset.append(target)
                        if len(pset) > a2:
                            evicted = pset[0]
                            del pset[0]
                            prefetched.discard(evicted)
                        prefetched.add(target)
                        if counting:
                            res.prefetch_installs += 1
            rpt[pc] = (line, stride if stride else last_stride, confirmed)
        if counting:
            res.l1d_accesses += 1
            res.l2_accesses += 1
            if l2_hit:
                res.l2_hits += 1
            if is_store:
                res.store_l1_misses += 1
                if not l2_hit:
                    res.store_l2_misses += 1
            else:
                res.load_l1_misses += 1
                if not l2_hit:
                    res.load_l2_misses += 1
    res.dtlb_misses = tlb.misses
    res.dtlb_accesses = tlb.accesses
    return res


def branch_event_key(core: CoreConfig) -> tuple:
    """Every core parameter :func:`simulate_branches` reads."""
    reference = predictor_for_core(core.name)
    return (reference.table.entries, getattr(reference, "history_bits", 0))


def simulate_branches(
    core: CoreConfig, trace: ExpandedTrace, warmup_branches: int
) -> tuple[int, int]:
    """gshare direction prediction over the exact outcome trace.

    Functionally identical to :class:`repro.sim.branch.GSharePredictor`
    but inlined with plain Python lists — this loop runs for every
    dynamic branch of every evaluation and dominates tuning runtime
    otherwise.  Returns ``(mispredicts, lookups)`` for the measured
    window.
    """
    entries, history_bits = branch_event_key(core)
    entry_mask = entries - 1
    history_mask = (1 << history_bits) - 1

    counters = [2] * entries  # weakly taken
    history = 0
    mispredicts = 0
    lookups = 0
    pcs = trace.branch_pcs.tolist()
    outcomes = trace.branch_outcomes.tolist()
    counting = warmup_branches == 0
    for k, (pc, taken) in enumerate(zip(pcs, outcomes)):
        if not counting and k >= warmup_branches:
            counting = True
        index = ((pc >> 2) ^ history) & entry_mask
        c = counters[index]
        if counting:
            lookups += 1
            if (c >= 2) != taken:
                mispredicts += 1
        if taken:
            if c < 3:
                counters[index] = c + 1
            history = ((history << 1) | 1) & history_mask
        else:
            if c > 0:
                counters[index] = c - 1
            history = (history << 1) & history_mask
    return mispredicts, lookups


def icache_event_key(core: CoreConfig) -> tuple:
    """Every core parameter :func:`simulate_icache` reads."""
    return (
        core.l1i.num_sets,
        core.l1i.assoc,
        core.l1i.line_bytes,
        core.l2.size_bytes,
        core.l2.line_bytes,
        core.l2.num_sets,
        core.l2.assoc,
    )


def simulate_icache(
    core: CoreConfig, code_bytes: int, iterations: int
) -> tuple[int, int, int]:
    """(l1i hits, l1i misses, l2-side code misses) for the window."""
    num_lines = max(1, code_bytes // core.l1i.line_bytes)
    hits, misses = cyclic_code_hits(
        num_lines, core.l1i.num_sets, core.l1i.assoc, iterations
    )
    # The loop's code always fits somewhere up the hierarchy; L2-side
    # code misses only occur if the code exceeds the L2 too.
    l2_lines_capacity = core.l2.size_bytes // core.l2.line_bytes
    if num_lines > l2_lines_capacity:
        _, l2_misses = cyclic_code_hits(
            num_lines,
            core.l2.num_sets,
            core.l2.assoc,
            iterations,
        )
    else:
        l2_misses = 0
    return hits, misses, l2_misses
