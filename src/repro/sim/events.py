"""Stage 2 of the simulator pipeline: per-core event simulation.

The functions here drive one core configuration's cache hierarchy, branch
predictor, TLB and instruction cache over a shared
:class:`~repro.sim.trace.ExpandedTrace` (stage 1,
:mod:`repro.sim.artifact`) and count the miss events the interval timing
model (stage 3, :mod:`repro.sim.interval`) charges for.

Each simulation is a pure function of (core parameters, trace, warmup
boundary), and each exposes a ``*_key`` companion returning exactly the
core parameters it reads.  The keys let :class:`~repro.sim.artifact.
TraceArtifact` memoize event results across a batch of core configs: two
configs that differ only in back-end width share one memory simulation
bit-for-bit, which is where ``Simulator.run_many`` earns its speedup.

Two engines implement the same semantics:

* ``engine="reference"`` — the original per-access Python loops, kept as
  the oracle for property tests and as a fallback;
* ``engine="vectorized"`` (default) — numpy array kernels.  Branch
  predictors (gshare, bimodal, tournament) are evaluated with segmented
  saturating-counter scans over precomputed table indices; the memory
  hierarchy precomputes per-access set indices and page numbers with
  numpy, then either extrapolates the steady state of a periodic trace
  (simulate one cycle of the cache/TLB/prefetcher state machine, skip
  the repeats) or — for aperiodic/streaming traces — computes exact
  per-access LRU recency ranks with a set-parallel scan (see
  :func:`_lru_position_kernel`), so ``_trace_period() == 0`` no longer
  means reference speed.

Config batching: :func:`simulate_memory_batch` and
:func:`simulate_branches_batch` evaluate N core configs over one trace
in a single pass, sharing the precomputed trace columns (set indices,
pages, recency ranks, packed branch histories) across every config that
cannot distinguish them.  The shared columns live in the trace's
``_kernel_cache`` scratch dict, keyed by the geometry that shapes them.

Both engines are bit-identical: every event count an engine returns is
exactly equal to the reference loop's.  ``REPRO_EVENT_ENGINE`` selects
the process-wide default.  Because engine equality is asserted on whole
result objects, the engine path that actually ran (periodic
extrapolation, aperiodic recency-rank, straight fallback, reference
loop) is reported out-of-band: :func:`engine_path_counts` counts every
path taken since the last :func:`reset_engine_path_counts`, and each
simulation logs its path at DEBUG level.
"""

from __future__ import annotations

import logging
import os
from collections import OrderedDict, defaultdict
from dataclasses import dataclass
from itertools import repeat

import numpy as np

from repro import obs
from repro.sim.branch import (
    GSharePredictor,
    TournamentPredictor,
    predictor_for_core,
)
from repro.sim.cache import cyclic_code_hits, cyclic_code_hits_closed
from repro.sim.config import CoreConfig
from repro.sim.tlb import tlb_for_core
from repro.sim.trace import ExpandedTrace

logger = logging.getLogger(__name__)

#: Supported event-simulation engines.
ENGINES = ("reference", "vectorized")

#: Engine used when callers pass ``engine=None`` and the environment
#: does not override it.
DEFAULT_ENGINE = "vectorized"

#: Environment override for the process-wide default engine.
ENGINE_ENV_VAR = "REPRO_EVENT_ENGINE"

# 64-byte lines, 4 KB pages: page = line >> 6.
_PAGE_SHIFT = 6

#: Cap on state snapshots taken while hunting for a steady-state cycle;
#: traces that do not revisit a state within this many periods fall back
#: to straight simulation of the remainder.
_MAX_SNAPSHOTS = 32

#: Aperiodic recency-rank kernel feasibility.  The set-parallel scan
#: runs one python-level round per position of the *longest* per-set
#: access stream, so it only wins when accesses spread across sets;
#: tiny traces or heavily skewed set distributions run the straight
#: per-access loop instead (and are counted as such).
_MIN_ROUNDS_TRACE = 128
_ROUNDS_IMBALANCE = 8

#: Engine-path observability: counters now live in the process-wide
#: metrics registry (:mod:`repro.obs`) under this prefix, which makes
#: them atomic under concurrent ``run_many`` calls (the old module
#: ``Counter`` lost ``+= 1`` updates across threads) and lets worker
#: processes ship them home in :class:`~repro.obs.MetricsSnapshot`\ s.
#: The functions below are the stable compat surface benchmarks and
#: tests were written against.
_PATH_PREFIX = "engine_path."


def _record_path(path: str) -> None:
    obs.inc(_PATH_PREFIX + path)
    logger.debug("event engine path: %s", path)


def engine_path_counts() -> dict[str, int]:
    """Simulations per engine path since the last reset.

    Compat view over the ``engine_path.*`` counters of the default
    :mod:`repro.obs` registry (prefix stripped).

    Keys are ``"<stage>.<path>"``: ``memory.reference``,
    ``memory.vectorized.periodic``, ``memory.vectorized.aperiodic``,
    ``memory.vectorized.straight`` (the per-access fallback inside the
    vectorized engine), ``memory.batch`` (one per config-batched call),
    the ``branch.*`` and ``icache.*`` equivalents, and the
    ``evaluate.*`` family recorded by the grouped evaluation path in
    ``repro.exec.jobs`` (``evaluate.batch`` per grouped chunk,
    ``evaluate.group`` per shared-pass dispatch, ``evaluate.single``
    per config evaluated one-at-a-time).  Benchmarks use this to assert
    "no silent fallback"; sweeps can log it to spot slow paths.
    """
    prefix_len = len(_PATH_PREFIX)
    return {
        name[prefix_len:]: int(value)
        for name, value in obs.counters(_PATH_PREFIX).items()
    }


def record_engine_path(path: str, count: int = 1) -> None:
    """Record *count* traversals of an evaluation path.

    Exposed so layers above the event engine (the grouped evaluation
    path in ``repro.exec.jobs``) report into the same counter that
    benchmarks assert no-silent-fallback against.
    """
    obs.inc(_PATH_PREFIX + path, count)


def reset_engine_path_counts() -> None:
    """Zero the engine-path counters (benchmarks, tests)."""
    obs.reset(_PATH_PREFIX)


def resolve_engine(engine: str | None = None) -> str:
    """Resolve an engine name, falling back to the configured default.

    Raises:
        ValueError: for names outside :data:`ENGINES`.
    """
    resolved = engine or os.environ.get(ENGINE_ENV_VAR) or DEFAULT_ENGINE
    if resolved not in ENGINES:
        raise ValueError(
            f"unknown event engine {resolved!r}; choose from {ENGINES}"
        )
    return resolved


@dataclass
class MemoryEvents:
    """L1D/L2/TLB/prefetch event counts for one measurement window."""

    load_l1_misses: int = 0
    load_l2_misses: int = 0
    store_l1_misses: int = 0
    store_l2_misses: int = 0
    l1d_hits: int = 0
    l1d_accesses: int = 0
    l2_hits: int = 0
    l2_accesses: int = 0
    prefetch_installs: int = 0
    prefetch_hits: int = 0
    dtlb_misses: int = 0
    dtlb_accesses: int = 0


def memory_event_key(core: CoreConfig) -> tuple:
    """Every core parameter :func:`simulate_memory` reads."""
    return (
        core.l1d.num_sets,
        core.l1d.assoc,
        core.l1d.line_bytes,
        core.l2.num_sets,
        core.l2.assoc,
        core.l2_prefetcher,
        tlb_for_core(core.name).entries,
    )


def _clamped_warmup(warmup: int, total: int) -> int:
    """Warmup boundary clamped into ``[0, total]``.

    A requested warmup at or beyond the end of the trace leaves an empty
    measurement window: nothing is counted (previously the counting flag
    never flipped, so warmup-inclusive TLB counters leaked into an
    otherwise all-zero result).
    """
    return min(max(warmup, 0), total)


def simulate_memory(
    core: CoreConfig,
    trace: ExpandedTrace,
    warmup_accesses: int,
    engine: str | None = None,
) -> MemoryEvents:
    """Drive the L1D/L2 hierarchy over the exact access trace.

    Args:
        core: core configuration (cache geometry, prefetcher, TLB).
        trace: shared expanded trace.
        warmup_accesses: leading accesses that warm state without being
            counted; clamped to the trace length.
        engine: event engine (:data:`ENGINES`); ``None`` uses the
            process default.
    """
    if resolve_engine(engine) == "vectorized":
        return _simulate_memory_vectorized(core, trace, warmup_accesses)
    return _simulate_memory_reference(core, trace, warmup_accesses)


def _simulate_memory_reference(
    core: CoreConfig, trace: ExpandedTrace, warmup_accesses: int
) -> MemoryEvents:
    """Per-access loop over the trace (the oracle engine).

    The per-set LRU state is inlined as plain lists rather than going
    through :class:`SetAssociativeCache` method calls; this loop is what
    the vectorized engine must match bit for bit.
    """
    _record_path("memory.reference")
    res = MemoryEvents()
    lines = trace.mem_lines.tolist()
    n = len(lines)
    warmup = _clamped_warmup(warmup_accesses, n)
    if warmup >= n:
        return res

    l1_sets: list[list[int]] = [[] for _ in range(core.l1d.num_sets)]
    l2_sets: list[list[int]] = [[] for _ in range(core.l2.num_sets)]
    n1 = core.l1d.num_sets
    n2 = core.l2.num_sets
    a1 = core.l1d.assoc
    a2 = core.l2.assoc
    prefetching = core.l2_prefetcher
    # Reference-prediction table: pc -> (last_line, stride, confirmed).
    rpt: dict[int, tuple[int, int, bool]] = {}
    prefetched: set[int] = set()
    tlb = tlb_for_core(core.name)

    stores = trace.mem_is_store.tolist()
    pcs = trace.mem_pcs.tolist()
    counting = warmup == 0
    for k, (pc, line, is_store) in enumerate(zip(pcs, lines, stores)):
        if not counting and k >= warmup:
            counting = True
            tlb.reset_stats()
        tlb.access(line << _PAGE_SHIFT)
        set1 = l1_sets[line % n1]
        if line in set1:
            set1.remove(line)
            set1.append(line)
            if counting:
                res.l1d_hits += 1
                res.l1d_accesses += 1
            continue
        # L1 miss: fill L1, look up L2.
        set1.append(line)
        if len(set1) > a1:
            del set1[0]
        set2 = l2_sets[line % n2]
        if line in set2:
            l2_hit = True
            set2.remove(line)
            set2.append(line)
            # A prefetched line's first use consumes its prefetched
            # mark whether or not the use lands in the measured window;
            # only the *count* is gated on measuring.  (Discarding only
            # while counting let warmup-covered prefetches inflate a
            # later measured prefetch_hits.)
            if line in prefetched:
                prefetched.discard(line)
                if counting:
                    res.prefetch_hits += 1
        else:
            l2_hit = False
            set2.append(line)
            if len(set2) > a2:
                evicted = set2[0]
                del set2[0]
                prefetched.discard(evicted)
        if prefetching:
            last_line, last_stride, confirmed = rpt.get(pc, (line, 0, False))
            stride = line - last_line
            if stride:
                confirmed = stride == last_stride
            if confirmed and stride:
                for d in (1, 2):
                    target = line + stride * d
                    pset = l2_sets[target % n2]
                    if target not in pset:
                        pset.append(target)
                        if len(pset) > a2:
                            evicted = pset[0]
                            del pset[0]
                            prefetched.discard(evicted)
                        prefetched.add(target)
                        if counting:
                            res.prefetch_installs += 1
            rpt[pc] = (line, stride if stride else last_stride, confirmed)
        if counting:
            res.l1d_accesses += 1
            res.l2_accesses += 1
            if l2_hit:
                res.l2_hits += 1
            if is_store:
                res.store_l1_misses += 1
                if not l2_hit:
                    res.store_l2_misses += 1
            else:
                res.load_l1_misses += 1
                if not l2_hit:
                    res.load_l2_misses += 1
    res.dtlb_misses = tlb.misses
    res.dtlb_accesses = tlb.accesses
    return res


def _trace_period(trace: ExpandedTrace) -> int:
    """Minimal iteration period of the memory access pattern (0 = none).

    The generated loops expand to purely periodic per-iteration access
    slabs (strided streams wrap their footprints, reuse windows repeat),
    so the (lines, pcs, stores) arrays reshaped to one row per iteration
    repeat with some row period ``p``.  Candidate periods are rows equal
    to row 0; each is verified with a full shift comparison, so a
    returned period is exact, never a heuristic.  The result is
    core-independent and memoized on the trace, so one detection serves
    every memory simulation of a config sweep.
    """
    if trace.min_period is not None:
        return trace.min_period
    trace.min_period = _detect_trace_period(trace)
    return trace.min_period


def _detect_trace_period(trace: ExpandedTrace) -> int:
    n = int(trace.mem_lines.shape[0])
    iters = trace.iterations
    if iters <= 1 or n == 0 or n % iters:
        return 0
    m = n // iters
    lines = np.ascontiguousarray(trace.mem_lines).reshape(iters, m)
    pcs = np.ascontiguousarray(trace.mem_pcs).reshape(iters, m)
    stores = np.ascontiguousarray(trace.mem_is_store).reshape(iters, m)
    rows_eq = (
        np.all(lines == lines[0], axis=1)
        & np.all(pcs == pcs[0], axis=1)
        & np.all(stores == stores[0], axis=1)
    )
    # Every candidate gets considered (a silent cap here misclassified
    # long-period traces as aperiodic), but most are rejected by a cheap
    # necessary condition first: if p is the period, every p-th row
    # equals row 0, so one strided all() prunes a false candidate
    # without the full three-array shift comparison.
    candidates = np.nonzero(rows_eq[1:])[0] + 1
    for p in candidates.tolist():
        if not bool(np.all(rows_eq[p::p])):
            continue
        if (
            np.array_equal(lines[p:], lines[:-p])
            and np.array_equal(pcs[p:], pcs[:-p])
            and np.array_equal(stores[p:], stores[:-p])
        ):
            return int(p)
    return 0


class _MemoryKernel:
    """Cache/TLB/prefetcher state machine over precomputed access arrays.

    Owns exactly the per-access semantics of the reference loop; the
    vectorized engine owns the schedule — which trace slices are
    simulated and which whole steady-state cycles are skipped via
    extrapolation.  Set indices and page numbers arrive precomputed
    (numpy) so the inner loop does no address arithmetic.
    """

    #: Counter attributes, in :class:`MemoryEvents` field order followed
    #: by the measured-window TLB counters.
    _COUNTERS = (
        "load_l1_misses", "load_l2_misses", "store_l1_misses",
        "store_l2_misses", "l1d_hits", "l1d_accesses", "l2_hits",
        "l2_accesses", "prefetch_installs", "prefetch_hits",
        "tlb_hits", "tlb_misses",
    )

    def __init__(self, core: CoreConfig, lines, stores, pcs,
                 set1_idx, set2_idx, pages):
        # Access arrays stay numpy; run() converts just the slices it
        # actually simulates (extrapolation skips most of the trace, so
        # eager whole-trace .tolist() would dominate the engine's cost).
        self.lines = lines
        self.stores = stores
        self.pcs = pcs
        self.set1_idx = set1_idx
        self.set2_idx = set2_idx
        self.pages = pages
        self.n1 = core.l1d.num_sets
        self.n2 = core.l2.num_sets
        self.a1 = core.l1d.assoc
        self.a2 = core.l2.assoc
        self.prefetching = core.l2_prefetcher
        self.tlb_entries = tlb_for_core(core.name).entries
        # Sets materialize lazily: only the footprint's sets ever exist,
        # which also keeps state snapshots proportional to resident
        # lines instead of cache geometry.
        self.l1_sets: defaultdict[int, list[int]] = defaultdict(list)
        self.l2_sets: defaultdict[int, list[int]] = defaultdict(list)
        self.rpt: dict[int, tuple[int, int, bool]] = {}
        self.prefetched: set[int] = set()
        self.tlb_pages: OrderedDict[int, None] = OrderedDict()
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def snapshot_key(self) -> tuple:
        """Hashable snapshot of every state bit that drives evolution."""
        return (
            tuple(sorted(
                (s, tuple(w)) for s, w in self.l1_sets.items() if w
            )),
            tuple(sorted(
                (s, tuple(w)) for s, w in self.l2_sets.items() if w
            )),
            tuple(sorted(self.rpt.items())),
            frozenset(self.prefetched),
            tuple(self.tlb_pages),
        )

    def counts_key(self) -> tuple:
        return tuple(getattr(self, name) for name in self._COUNTERS)

    def add_counts(self, delta: tuple, times: int) -> None:
        """Extrapolate: add ``times`` repetitions of a per-cycle delta."""
        for name, value in zip(self._COUNTERS, delta):
            setattr(self, name, getattr(self, name) + value * times)

    def finish(self) -> MemoryEvents:
        return MemoryEvents(
            load_l1_misses=self.load_l1_misses,
            load_l2_misses=self.load_l2_misses,
            store_l1_misses=self.store_l1_misses,
            store_l2_misses=self.store_l2_misses,
            l1d_hits=self.l1d_hits,
            l1d_accesses=self.l1d_accesses,
            l2_hits=self.l2_hits,
            l2_accesses=self.l2_accesses,
            prefetch_installs=self.prefetch_installs,
            prefetch_hits=self.prefetch_hits,
            dtlb_misses=self.tlb_misses,
            dtlb_accesses=self.tlb_hits + self.tlb_misses,
        )

    def run(self, start: int, stop: int, counting: bool) -> None:
        """Simulate accesses ``[start, stop)``, counting if measuring."""
        if stop <= start:
            return
        l1_sets = self.l1_sets
        l2_sets = self.l2_sets
        a1 = self.a1
        a2 = self.a2
        n2 = self.n2
        prefetching = self.prefetching
        rpt = self.rpt
        prefetched = self.prefetched
        tlb_pages = self.tlb_pages
        tlb_entries = self.tlb_entries
        tlb_hits = tlb_misses = 0
        l1d_hits = l1d_accesses = l2_hits = l2_accesses = 0
        load_l1 = load_l2 = store_l1 = store_l2 = 0
        pf_installs = pf_hits = 0
        # Convert only the simulated slice to Python scalars; skip the
        # columns this run cannot read (pcs feed only the prefetcher,
        # store flags only the measured-window attribution).
        pcs = (
            self.pcs[start:stop].tolist() if self.prefetching
            else repeat(0)
        )
        stores = (
            self.stores[start:stop].tolist() if counting
            else repeat(False)
        )
        for pc, line, is_store, s1, s2, page in zip(
            pcs, self.lines[start:stop].tolist(), stores,
            self.set1_idx[start:stop].tolist(),
            self.set2_idx[start:stop].tolist(),
            self.pages[start:stop].tolist(),
        ):
            if page in tlb_pages:
                tlb_pages.move_to_end(page)
                tlb_hits += 1
            else:
                tlb_misses += 1
                if len(tlb_pages) >= tlb_entries:
                    tlb_pages.popitem(last=False)
                tlb_pages[page] = None
            set1 = l1_sets[s1]
            if line in set1:
                set1.remove(line)
                set1.append(line)
                if counting:
                    l1d_hits += 1
                    l1d_accesses += 1
                continue
            set1.append(line)
            if len(set1) > a1:
                del set1[0]
            set2 = l2_sets[s2]
            if line in set2:
                l2_hit = True
                set2.remove(line)
                set2.append(line)
                if line in prefetched:
                    prefetched.discard(line)
                    if counting:
                        pf_hits += 1
            else:
                l2_hit = False
                set2.append(line)
                if len(set2) > a2:
                    evicted = set2[0]
                    del set2[0]
                    prefetched.discard(evicted)
            if prefetching:
                last_line, last_stride, confirmed = rpt.get(
                    pc, (line, 0, False)
                )
                stride = line - last_line
                if stride:
                    confirmed = stride == last_stride
                if confirmed and stride:
                    for d in (1, 2):
                        target = line + stride * d
                        pset = l2_sets[target % n2]
                        if target not in pset:
                            pset.append(target)
                            if len(pset) > a2:
                                evicted = pset[0]
                                del pset[0]
                                prefetched.discard(evicted)
                            prefetched.add(target)
                            if counting:
                                pf_installs += 1
                rpt[pc] = (line, stride if stride else last_stride, confirmed)
            if counting:
                l1d_accesses += 1
                l2_accesses += 1
                if l2_hit:
                    l2_hits += 1
                if is_store:
                    store_l1 += 1
                    if not l2_hit:
                        store_l2 += 1
                else:
                    load_l1 += 1
                    if not l2_hit:
                        load_l2 += 1
        if counting:
            self.tlb_hits += tlb_hits
            self.tlb_misses += tlb_misses
            self.l1d_hits += l1d_hits
            self.l1d_accesses += l1d_accesses
            self.l2_hits += l2_hits
            self.l2_accesses += l2_accesses
            self.load_l1_misses += load_l1
            self.load_l2_misses += load_l2
            self.store_l1_misses += store_l1
            self.store_l2_misses += store_l2
            self.prefetch_installs += pf_installs
            self.prefetch_hits += pf_hits


def _trace_kernel_cache(trace: ExpandedTrace) -> dict:
    """The trace's config-batch scratch dict (see ExpandedTrace)."""
    cache = getattr(trace, "_kernel_cache", None)
    if cache is None:
        cache = {}
        trace._kernel_cache = cache
    return cache


def _shared_get(shared: dict | None, key: tuple, build):
    """Memoize ``build()`` under ``key`` when a shared dict is present."""
    if shared is None:
        return build()
    value = shared.get(key)
    if value is None:
        value = build()
        shared[key] = value
    return value


def _shared_ranks(shared: dict | None, key: tuple, depth: int, build):
    """Recency ranks capped at ``depth``, reusing any run at least that
    deep: ranks past the needed associativity are all equally "miss"."""
    if shared is not None:
        cached = shared.get(key)
        if cached is not None and cached[0] >= depth:
            return cached[1]
    ranks = build()
    if shared is not None:
        shared[key] = (depth, ranks)
    return ranks


def _memory_columns(
    core: CoreConfig, trace: ExpandedTrace, shared: dict | None
) -> tuple:
    """Precomputed per-access columns, shared across a config batch."""
    lines = _shared_get(
        shared, ("lines",),
        lambda: np.asarray(trace.mem_lines, dtype=np.int64),
    )
    stores = _shared_get(
        shared, ("stores",),
        lambda: np.asarray(trace.mem_is_store, dtype=bool),
    )
    pcs = _shared_get(
        shared, ("pcs",),
        lambda: np.asarray(trace.mem_pcs, dtype=np.int64),
    )
    set1 = _shared_get(
        shared, ("set", core.l1d.num_sets),
        lambda: lines % core.l1d.num_sets,
    )
    set2 = _shared_get(
        shared, ("set", core.l2.num_sets),
        lambda: lines % core.l2.num_sets,
    )
    pages = _shared_get(
        shared, ("pages",), lambda: lines >> _PAGE_SHIFT
    )
    return lines, stores, pcs, set1, set2, pages


def _rounds_feasible(n: int, max_stream: int) -> bool:
    """Whether the set-parallel rank kernel beats the straight loop."""
    return n >= _MIN_ROUNDS_TRACE and max_stream <= n // _ROUNDS_IMBALANCE


def _lru_position_kernel(
    set_idx: np.ndarray, keys: np.ndarray, num_sets: int, depth: int
) -> np.ndarray:
    """Exact per-access LRU recency ranks, set-parallel.

    For every access, the rank of its key in its set's LRU recency
    stack *before* the access (0 = most recent, ``depth`` = not among
    the ``depth`` most recent).  Because an LRU stack is the recency
    order of distinct keys — capacity only truncates it — rank < assoc
    decides hit/miss for **every** associativity up to ``depth``, which
    is what lets one kernel pass serve a whole config batch.

    Sets evolve independently, so the sequential dependence is only
    within a set's own access stream: the kernel walks stream positions
    (rounds), updating all sets' stacks at that position in one
    vectorized step.  Cost is O(max stream length) numpy rounds; the
    caller gates on :func:`_rounds_feasible`.
    """
    n = int(keys.shape[0])
    counts = np.bincount(set_idx, minlength=num_sets)
    # Longest-stream-first set order makes each round's active sets a
    # contiguous prefix of the state arrays.
    set_rank = np.argsort(-counts, kind="stable")
    max_len = int(counts.max()) if num_sets else 0
    order = np.argsort(set_idx, kind="stable")
    offsets = np.zeros(num_sets + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    offsets_ranked = offsets[set_rank]
    active = num_sets - np.searchsorted(
        np.sort(counts), np.arange(max_len), side="right"
    )
    stack = np.full((num_sets, depth), -1, dtype=np.int64)
    ranks = np.empty(n, dtype=np.int64)
    col = np.arange(1, depth, dtype=np.int64)
    for r in range(max_len):
        m = active[r]
        tp = order[offsets_ranked[:m] + r]
        line = keys[tp]
        st = stack[:m]
        eq = st == line[:, None]
        hit = eq.any(axis=1)
        rank = np.where(hit, eq.argmax(axis=1), depth)
        ranks[tp] = rank
        # Insert at the front: entries above the old position (or the
        # evicted tail on a miss) shift down one slot.
        shift_to = np.where(hit, rank, depth - 1)
        st[:, 1:] = np.where(
            col[None, :] <= shift_to[:, None], st[:, :-1], st[:, 1:]
        )
        st[:, 0] = line
    return ranks


def _tlb_miss_mask(pages: np.ndarray, entries: int) -> np.ndarray:
    """Exact per-access DTLB miss flags (fully-associative LRU).

    Consecutive same-page accesses are guaranteed hits that leave the
    recency order unchanged, so only the run-compressed page stream is
    replayed through an OrderedDict LRU — typically a small fraction of
    the accesses — and the result is config-independent (the mask is
    per TLB size, not per core).
    """
    n = int(pages.shape[0])
    miss = np.zeros(n, dtype=bool)
    if n == 0:
        return miss
    change = np.empty(n, dtype=bool)
    change[0] = True
    change[1:] = pages[1:] != pages[:-1]
    starts = np.nonzero(change)[0]
    tlb: OrderedDict[int, None] = OrderedDict()
    run_miss = []
    for page in pages[starts].tolist():
        if page in tlb:
            tlb.move_to_end(page)
            run_miss.append(False)
        else:
            run_miss.append(True)
            if len(tlb) >= entries:
                tlb.popitem(last=False)
            tlb[page] = None
    miss[starts] = run_miss
    return miss


def _l2_substream_loop(
    lines: np.ndarray,
    pcs: np.ndarray | None,
    set2_idx: np.ndarray,
    a2: int,
    n2: int,
    prefetching: bool,
    counting_mask: np.ndarray | None,
) -> tuple[np.ndarray, int, int]:
    """Reference-exact L2 (+ prefetcher) replay over the L1-miss substream.

    Mirrors the L1-miss branch of :func:`_simulate_memory_reference`
    line for line; the caller supplies exactly the accesses that miss
    the L1.  Returns (per-access L2 hit flags, prefetch installs,
    prefetch hits); the prefetch counts are gated on ``counting_mask``.
    """
    hits = np.zeros(int(lines.shape[0]), dtype=bool)
    l2_sets: defaultdict[int, list[int]] = defaultdict(list)
    rpt: dict[int, tuple[int, int, bool]] = {}
    prefetched: set[int] = set()
    pf_installs = pf_hits = 0
    pcs_it = pcs.tolist() if prefetching else repeat(0)
    counting_it = (
        counting_mask.tolist() if counting_mask is not None
        else repeat(False)
    )
    for k, (pc, line, s2, counting) in enumerate(zip(
        pcs_it, lines.tolist(), set2_idx.tolist(), counting_it
    )):
        set2 = l2_sets[s2]
        if line in set2:
            hits[k] = True
            set2.remove(line)
            set2.append(line)
            if line in prefetched:
                prefetched.discard(line)
                if counting:
                    pf_hits += 1
        else:
            set2.append(line)
            if len(set2) > a2:
                evicted = set2[0]
                del set2[0]
                prefetched.discard(evicted)
        if prefetching:
            last_line, last_stride, confirmed = rpt.get(pc, (line, 0, False))
            stride = line - last_line
            if stride:
                confirmed = stride == last_stride
            if confirmed and stride:
                for d in (1, 2):
                    target = line + stride * d
                    pset = l2_sets[target % n2]
                    if target not in pset:
                        pset.append(target)
                        if len(pset) > a2:
                            evicted = pset[0]
                            del pset[0]
                            prefetched.discard(evicted)
                        prefetched.add(target)
                        if counting:
                            pf_installs += 1
            rpt[pc] = (line, stride if stride else last_stride, confirmed)
    return hits, pf_installs, pf_hits


def _assemble_memory_events(
    n: int,
    warmup: int,
    stores: np.ndarray,
    l1_hit: np.ndarray,
    sub_idx: np.ndarray,
    l2_hit: np.ndarray,
    pf_installs: int,
    pf_hits: int,
    tlb_miss: np.ndarray,
) -> MemoryEvents:
    """Fold per-access hit/miss flags into measured-window counts."""
    measured = n - warmup
    sub_meas = sub_idx >= warmup
    l2_accesses = int(np.count_nonzero(sub_meas))
    miss2_meas = sub_meas & ~l2_hit
    sub_stores = stores[sub_idx]
    store_l1 = int(np.count_nonzero(sub_stores & sub_meas))
    return MemoryEvents(
        load_l1_misses=l2_accesses - store_l1,
        load_l2_misses=int(np.count_nonzero(~sub_stores & miss2_meas)),
        store_l1_misses=store_l1,
        store_l2_misses=int(np.count_nonzero(sub_stores & miss2_meas)),
        l1d_hits=int(np.count_nonzero(l1_hit[warmup:])),
        l1d_accesses=measured,
        l2_hits=int(np.count_nonzero(l2_hit & sub_meas)),
        l2_accesses=l2_accesses,
        prefetch_installs=pf_installs,
        prefetch_hits=pf_hits,
        dtlb_misses=int(np.count_nonzero(tlb_miss[warmup:])),
        dtlb_accesses=measured,
    )


def _run_straight(
    core: CoreConfig, columns: tuple, warmup: int, n: int
) -> MemoryEvents:
    """Whole-trace per-access kernel (vectorized engine's last resort)."""
    lines, stores, pcs, set1, set2, pages = columns
    kernel = _MemoryKernel(core, lines, stores, pcs, set1, set2, pages)
    kernel.run(0, warmup, counting=False)
    kernel.run(warmup, n, counting=True)
    return kernel.finish()


def _simulate_memory_aperiodic(
    core: CoreConfig,
    trace: ExpandedTrace,
    warmup: int,
    shared: dict | None,
    l1_depths: dict | None,
    l2_depths: dict | None,
) -> MemoryEvents:
    """Exact aperiodic/streaming memory engine (no steady state needed).

    The L1 and the DTLB see the full access stream, so their hit/miss
    flags come straight from :func:`_lru_position_kernel` recency ranks
    and the :func:`_tlb_miss_mask` compressed replay — both shared
    across every config in a batch that agrees on the shaping geometry
    (L1 ranks per num_sets, TLB mask per TLB size).  The L2 sees
    exactly the L1-miss substream: non-prefetching cores rank it with
    the same kernel; prefetching cores replay only the substream
    through the reference L2+prefetcher loop (prefetch targets feed the
    L2's own future, so that part stays sequential — but it runs on the
    miss substream, not the full trace).
    """
    n1, a1 = core.l1d.num_sets, core.l1d.assoc
    n2, a2 = core.l2.num_sets, core.l2.assoc
    n = int(trace.mem_lines.shape[0])
    columns = _memory_columns(core, trace, shared)
    lines, stores, pcs, set1, set2, pages = columns
    counts1 = np.bincount(set1, minlength=n1)
    if not _rounds_feasible(n, int(counts1.max())):
        _record_path("memory.vectorized.straight")
        return _run_straight(core, columns, warmup, n)
    depth1 = max(a1, (l1_depths or {}).get(n1, 0))
    l1_rank = _shared_ranks(
        shared, ("l1rank", n1), depth1,
        lambda: _lru_position_kernel(set1, lines, n1, depth1),
    )
    tlb_entries = tlb_for_core(core.name).entries
    tlb_miss = _shared_get(
        shared, ("tlb", tlb_entries),
        lambda: _tlb_miss_mask(pages, tlb_entries),
    )
    sub_idx = _shared_get(
        shared, ("sub", n1, a1),
        lambda: np.nonzero(l1_rank >= a1)[0],
    )
    sub_lines = lines[sub_idx]
    sub_set2 = set2[sub_idx]
    pf_installs = pf_hits = 0
    if core.l2_prefetcher:
        l2_hit, pf_installs, pf_hits = _l2_substream_loop(
            sub_lines, pcs[sub_idx], sub_set2, a2, n2,
            True, sub_idx >= warmup,
        )
    else:
        sub_n = int(sub_idx.size)
        counts2 = np.bincount(sub_set2, minlength=n2) if sub_n else None
        if counts2 is not None and _rounds_feasible(
            sub_n, int(counts2.max())
        ):
            depth2 = max(a2, (l2_depths or {}).get((n1, a1, n2), 0))
            l2_rank = _shared_ranks(
                shared, ("l2rank", n1, a1, n2), depth2,
                lambda: _lru_position_kernel(
                    sub_set2, sub_lines, n2, depth2
                ),
            )
            l2_hit = l2_rank < a2
        else:
            l2_hit, _, _ = _l2_substream_loop(
                sub_lines, None, sub_set2, a2, n2, False, None
            )
    _record_path("memory.vectorized.aperiodic")
    return _assemble_memory_events(
        n, warmup, stores, l1_rank < a1, sub_idx, l2_hit,
        pf_installs, pf_hits, tlb_miss,
    )


def _simulate_memory_vectorized(
    core: CoreConfig,
    trace: ExpandedTrace,
    warmup_accesses: int,
    shared: dict | None = None,
    l1_depths: dict | None = None,
    l2_depths: dict | None = None,
) -> MemoryEvents:
    """Array-kernel memory engine: dispatch on the trace's structure.

    Periodic traces take the steady-state extrapolation path; aperiodic
    and streaming traces (no detectable period within the window) take
    the exact recency-rank path.  Both are bit-identical to
    :func:`_simulate_memory_reference`.  ``shared`` (plus the depth
    hints) is the config-batch scratch — see
    :func:`simulate_memory_batch`.
    """
    n = int(trace.mem_lines.shape[0])
    warmup = _clamped_warmup(warmup_accesses, n)
    if warmup >= n:
        return MemoryEvents()
    m = n // trace.iterations if trace.iterations else 0
    p_acc = _trace_period(trace) * m
    if p_acc == 0 or n < 2 * p_acc:
        return _simulate_memory_aperiodic(
            core, trace, warmup, shared, l1_depths, l2_depths
        )
    return _simulate_memory_periodic(core, trace, warmup, p_acc, shared)


def simulate_memory_batch(
    cores: list[CoreConfig],
    trace: ExpandedTrace,
    warmup_accesses: list[int],
    engine: str | None = None,
) -> list[MemoryEvents]:
    """Memory events for N core configs over one trace, config-batched.

    One pass precomputes the trace columns the whole batch shares —
    line/store/pc arrays, per-num_sets set indices, page numbers,
    per-TLB-size miss masks, per-num_sets LRU recency ranks at the
    deepest associativity any config needs — then evaluates each
    *distinct* (memory key, warmup) combination against them.  The
    shared columns persist in the trace's ``_kernel_cache``, so
    successive batches over the same trace keep reusing them.
    Bit-identical to calling :func:`simulate_memory` per core.
    """
    if len(cores) != len(warmup_accesses):
        raise ValueError("one warmup boundary per core required")
    engine = resolve_engine(engine)
    if engine == "reference":
        return [
            _simulate_memory_reference(core, trace, warmup)
            for core, warmup in zip(cores, warmup_accesses)
        ]
    _record_path("memory.batch")
    n = int(trace.mem_lines.shape[0])
    uniques: dict[tuple, int] = {}
    work: list[tuple[CoreConfig, int]] = []
    assignment: list[int] = []
    for core, warmup in zip(cores, warmup_accesses):
        key = memory_event_key(core) + (_clamped_warmup(warmup, n),)
        slot = uniques.get(key)
        if slot is None:
            slot = len(work)
            uniques[key] = slot
            work.append((core, warmup))
        assignment.append(slot)
    # Deepest rank each geometry needs, so one kernel pass serves every
    # associativity in the batch (LRU inclusion).
    l1_depths: dict[int, int] = {}
    l2_depths: dict[tuple, int] = {}
    for core, _ in work:
        n1, a1 = core.l1d.num_sets, core.l1d.assoc
        l1_depths[n1] = max(l1_depths.get(n1, 0), a1)
        sub = (n1, a1, core.l2.num_sets)
        l2_depths[sub] = max(l2_depths.get(sub, 0), core.l2.assoc)
    shared = _trace_kernel_cache(trace)
    results = [
        _simulate_memory_vectorized(
            core, trace, warmup,
            shared=shared, l1_depths=l1_depths, l2_depths=l2_depths,
        )
        for core, warmup in work
    ]
    return [results[slot] for slot in assignment]


def _simulate_memory_periodic(
    core: CoreConfig,
    trace: ExpandedTrace,
    warmup: int,
    p_acc: int,
    shared: dict | None,
) -> MemoryEvents:
    """Steady-state extrapolation over a periodic trace.

    The LRU/TLB/prefetcher state machine runs over the minimal trace
    period, snapshotting state at period boundaries.  As soon as a
    boundary state recurs, every later period is an exact replay, so
    the remaining whole cycles are extrapolated (warmup: state is
    simply known; measurement: per-cycle event deltas repeat) and only
    the partial tail is simulated.  Bit-identical to
    :func:`_simulate_memory_reference` by construction.
    """
    _record_path("memory.vectorized.periodic")
    n = int(trace.mem_lines.shape[0])
    lines, stores, pcs, set1, set2, pages = _memory_columns(
        core, trace, shared
    )
    kernel = _MemoryKernel(core, lines, stores, pcs, set1, set2, pages)

    # Snapshots are taken at positions congruent to the warmup boundary
    # (mod the trace period): a warmup cycle then jumps *exactly* to the
    # boundary, and the measurement phase detects its steady state from
    # the very first counted period — no partial-period alignment runs.
    pos = warmup % p_acc
    kernel.run(0, pos, counting=False)
    seen_warm: dict[tuple, int] = {}
    while pos < warmup and len(seen_warm) < _MAX_SNAPSHOTS:
        key = kernel.snapshot_key()
        first = seen_warm.get(key)
        if first is not None:
            # State recurs with this cycle length; whole cycles are
            # exact no-ops on state, so skip as many as fit.
            cycle = pos - first
            pos += (warmup - pos) // cycle * cycle
            break
        seen_warm[key] = pos
        kernel.run(pos, pos + p_acc, counting=False)
        pos += p_acc
    kernel.run(pos, warmup, counting=False)

    # Measurement: simulate counted periods until a boundary state
    # recurs, then extrapolate that cycle's event deltas over the
    # remaining whole cycles and simulate only the tail.
    pos = warmup
    seen: dict[tuple, tuple[int, tuple]] = {}
    while n - pos >= p_acc and len(seen) < _MAX_SNAPSHOTS:
        key = kernel.snapshot_key()
        first = seen.get(key)
        if first is not None:
            first_pos, first_counts = first
            cycle = pos - first_pos
            counts = kernel.counts_key()
            delta = tuple(
                now - then for now, then in zip(counts, first_counts)
            )
            reps = (n - pos) // cycle
            kernel.add_counts(delta, reps)
            pos += reps * cycle
            break
        seen[key] = (pos, kernel.counts_key())
        kernel.run(pos, pos + p_acc, counting=True)
        pos += p_acc
    kernel.run(pos, n, counting=True)
    return kernel.finish()


def branch_event_key(core: CoreConfig) -> tuple:
    """Every core parameter :func:`simulate_branches` reads.

    The key leads with the predictor *kind* and spells out each
    component table: two cores whose predictors differ in kind (or in
    tournament chooser size) but share ``(entries, history_bits)`` used
    to collide in the branch-event memo and reuse each other's results.
    """
    reference = predictor_for_core(core.name)
    if isinstance(reference, TournamentPredictor):
        return (
            "tournament",
            reference.bimodal.table.entries,
            reference.gshare.table.entries,
            reference.gshare.history_bits,
            reference.chooser.entries,
        )
    if isinstance(reference, GSharePredictor):
        return ("gshare", reference.table.entries, reference.history_bits)
    return ("bimodal", reference.table.entries)


def simulate_branches(
    core: CoreConfig,
    trace: ExpandedTrace,
    warmup_branches: int,
    engine: str | None = None,
) -> tuple[int, int]:
    """Branch direction prediction over the exact outcome trace.

    Functionally identical to the core's
    :func:`~repro.sim.branch.predictor_for_core` predictor (gshare,
    bimodal or tournament).  Returns ``(mispredicts, lookups)`` for the
    measured window, which starts after ``warmup_branches`` (clamped)
    trained-but-uncounted branches.
    """
    if resolve_engine(engine) == "vectorized":
        return _simulate_branches_vectorized(core, trace, warmup_branches)
    return _simulate_branches_reference(core, trace, warmup_branches)


def simulate_branches_batch(
    cores: list[CoreConfig],
    trace: ExpandedTrace,
    warmup_branches: list[int],
    engine: str | None = None,
) -> list[tuple[int, int]]:
    """Branch events for N core configs over one trace, config-batched.

    Packed global histories are computed once per history width (shared
    through the trace's ``_kernel_cache``), component table indices are
    stacked along a leading config axis, and every distinct predictor in
    the batch rides one multi-row :func:`_counter_prestates` scan (plus
    one more for tournament choosers, whose steps depend on the
    component predictions).  Bit-identical to calling
    :func:`simulate_branches` per core.
    """
    if len(cores) != len(warmup_branches):
        raise ValueError("one warmup boundary per core required")
    engine = resolve_engine(engine)
    if engine == "reference":
        return [
            _simulate_branches_reference(core, trace, warmup)
            for core, warmup in zip(cores, warmup_branches)
        ]
    _record_path("branch.batch")
    outcomes = np.asarray(trace.branch_outcomes, dtype=bool)
    n = int(outcomes.shape[0])
    uniques: dict[tuple, int] = {}
    work: list[tuple[tuple, int]] = []
    assignment: list[int] = []
    for core, warmup in zip(cores, warmup_branches):
        key = (branch_event_key(core), _clamped_warmup(warmup, n))
        slot = uniques.get(key)
        if slot is None:
            slot = len(work)
            uniques[key] = slot
            work.append(key)
        assignment.append(slot)

    shared = _trace_kernel_cache(trace)
    pcs = None
    steps = None
    rows: list[np.ndarray] = []
    row_of: dict[int, tuple[int, ...]] = {}
    for slot, (key, warmup) in enumerate(work):
        if warmup >= n:
            continue
        if pcs is None:
            pcs = np.asarray(trace.branch_pcs, dtype=np.int64) >> 2
            steps = np.where(outcomes, np.int8(1), np.int8(-1))
        row_of[slot] = tuple(
            range(len(rows), len(rows) + (2 if key[0] == "tournament" else 1))
        )
        rows.extend(_component_index_rows(key, pcs, outcomes, shared))
    layout = None
    if rows:
        stacked = np.stack(rows)
        layout = _counter_layout(stacked)
        states = _counter_prestates(stacked, steps, layout)
    else:
        states = None

    results: list[tuple[int, int]] = []
    chooser_rows: list[tuple[int, np.ndarray, np.ndarray]] = []
    for slot, (key, warmup) in enumerate(work):
        if warmup >= n:
            results.append((0, 0))
            continue
        if key[0] == "tournament":
            g_row, b_row = row_of[slot]
            chooser_rows.append((slot, states[g_row] >= 2, states[b_row] >= 2))
            results.append((0, n - warmup))  # mispredicts filled below
        else:
            pred = states[row_of[slot][0]] >= 2
            results.append((
                int(np.count_nonzero(pred[warmup:] != outcomes[warmup:])),
                n - warmup,
            ))
    if chooser_rows:
        c_steps = [
            np.where(
                g_pred == b_pred,
                np.int8(0),
                np.where(g_pred == outcomes, np.int8(1), np.int8(-1)),
            )
            for slot, g_pred, b_pred in chooser_rows
        ]
        # Choosers sized like their bimodal component (the common case)
        # are indexed identically, so they reuse phase A's bimodal rows
        # — indices and layouts both.
        if all(work[slot][0][4] == work[slot][0][1]
               for slot, _, _ in chooser_rows):
            b_rows = [row_of[slot][1] for slot, _, _ in chooser_rows]
            c_stack = stacked[b_rows]
            c_layout = _layout_rows(layout, b_rows, n)
        else:
            c_stack = np.stack([
                pcs & (work[slot][0][4] - 1)
                for slot, _, _ in chooser_rows
            ])
            c_layout = None
        c_states = _counter_prestates(c_stack, np.stack(c_steps), c_layout)
        for (slot, g_pred, b_pred), c_state in zip(chooser_rows, c_states):
            warmup = work[slot][1]
            pred = np.where(c_state >= 2, g_pred, b_pred)
            results[slot] = (
                int(np.count_nonzero(pred[warmup:] != outcomes[warmup:])),
                n - warmup,
            )
    return [results[slot] for slot in assignment]


def _simulate_branches_reference(
    core: CoreConfig, trace: ExpandedTrace, warmup_branches: int
) -> tuple[int, int]:
    """Per-branch predictor loops (the oracle engine)."""
    _record_path("branch.reference")
    pcs = trace.branch_pcs.tolist()
    outcomes = trace.branch_outcomes.tolist()
    n = len(pcs)
    warmup = _clamped_warmup(warmup_branches, n)
    if warmup >= n:
        return 0, 0
    key = branch_event_key(core)
    if key[0] == "tournament":
        return _branches_reference_tournament(pcs, outcomes, warmup, key)
    entries = key[1]
    history_bits = key[2] if key[0] == "gshare" else 0
    return _branches_reference_gshare(
        pcs, outcomes, warmup, entries, history_bits
    )


def _branches_reference_gshare(
    pcs: list, outcomes: list, warmup: int,
    entries: int, history_bits: int,
) -> tuple[int, int]:
    """gshare loop; with ``history_bits=0`` the history stays zero and
    this is exactly the bimodal predictor."""
    entry_mask = entries - 1
    history_mask = (1 << history_bits) - 1

    counters = [2] * entries  # weakly taken
    history = 0
    mispredicts = 0
    lookups = 0
    counting = warmup == 0
    for k, (pc, taken) in enumerate(zip(pcs, outcomes)):
        if not counting and k >= warmup:
            counting = True
        index = ((pc >> 2) ^ history) & entry_mask
        c = counters[index]
        if counting:
            lookups += 1
            if (c >= 2) != taken:
                mispredicts += 1
        if taken:
            if c < 3:
                counters[index] = c + 1
            history = ((history << 1) | 1) & history_mask
        else:
            if c > 0:
                counters[index] = c - 1
            history = (history << 1) & history_mask
    return mispredicts, lookups


def _branches_reference_tournament(
    pcs: list, outcomes: list, warmup: int, key: tuple
) -> tuple[int, int]:
    """Tournament loop mirroring
    :class:`repro.sim.branch.TournamentPredictor`: chooser picks
    bimodal vs gshare, trains toward the correct component only when
    they disagree, and both components train on every branch."""
    _, b_entries, g_entries, g_history_bits, c_entries = key
    b_mask = b_entries - 1
    g_mask = g_entries - 1
    c_mask = c_entries - 1
    history_mask = (1 << g_history_bits) - 1

    bimodal = [2] * b_entries
    gshare = [2] * g_entries
    chooser = [2] * c_entries
    history = 0
    mispredicts = 0
    lookups = 0
    counting = warmup == 0
    for k, (pc, taken) in enumerate(zip(pcs, outcomes)):
        if not counting and k >= warmup:
            counting = True
        pc2 = pc >> 2
        b_index = pc2 & b_mask
        g_index = (pc2 ^ history) & g_mask
        c_index = pc2 & c_mask
        b_pred = bimodal[b_index] >= 2
        g_pred = gshare[g_index] >= 2
        prediction = g_pred if chooser[c_index] >= 2 else b_pred
        if counting:
            lookups += 1
            if prediction != taken:
                mispredicts += 1
        if g_pred != b_pred:
            c = chooser[c_index]
            if g_pred == taken:
                if c < 3:
                    chooser[c_index] = c + 1
            elif c > 0:
                chooser[c_index] = c - 1
        c = bimodal[b_index]
        if taken:
            if c < 3:
                bimodal[b_index] = c + 1
        elif c > 0:
            bimodal[b_index] = c - 1
        c = gshare[g_index]
        if taken:
            if c < 3:
                gshare[g_index] = c + 1
            history = ((history << 1) | 1) & history_mask
        else:
            if c > 0:
                gshare[g_index] = c - 1
            history = (history << 1) & history_mask
    return mispredicts, lookups


def _branch_history(
    outcomes: np.ndarray, history_bits: int, shared: dict | None = None
) -> np.ndarray:
    """Packed global history before each branch (independent of the
    counters): bit ``b`` of entry ``k`` is outcome ``k-1-b``.

    Width-independent sharing: the cache keeps the widest packing
    computed so far, and any narrower history is its low-bit mask —
    one packing serves gshare components of every size in a batch.
    Narrow histories (≤16 bits, every Table II predictor) come back
    uint16 so the downstream index math stays quarter-width.
    """
    n = int(outcomes.shape[0])
    if history_bits <= 0:
        return np.zeros(n, dtype=np.uint16)
    if shared is not None:
        cached = shared.get(("history",))
        if cached is not None and cached[0] >= history_bits:
            bits, packed = cached
            if bits == history_bits:
                return packed
            return packed & ((1 << history_bits) - 1)
    # Bit b of entry k is outcome k-1-b: one shifted add per history
    # bit (far cheaper in a narrow dtype than an int64 matmul).
    dtype = np.uint16 if history_bits <= 16 else np.int64
    taken = outcomes.view(np.uint8)
    history = np.zeros(n, dtype=dtype)
    for b in range(min(history_bits, n - 1)):
        np.add(
            history[b + 1:],
            taken[: n - 1 - b].astype(dtype) << dtype(b),
            out=history[b + 1:],
        )
    if shared is not None:
        cached = shared.get(("history",))
        if cached is None or cached[0] < history_bits:
            shared[("history",)] = (history_bits, history)
    return history


def _component_index_rows(
    key: tuple,
    pcs2: np.ndarray,
    outcomes: np.ndarray,
    shared: dict | None,
) -> np.ndarray:
    """Per-access table indices for a predictor's component tables,
    stacked as one matrix (tournament: gshare row then bimodal row;
    others: one row).

    Tables that fit (≤ 2**15 entries — all of Table II) are indexed in
    uint16: masking distributes over the gshare XOR, so the whole row
    is built quarter-width, which also puts the downstream layout sort
    straight onto numpy's 16-bit radix path.
    """
    kind = key[0]
    if kind == "tournament":
        _, b_entries, g_entries, g_history_bits, _ = key
        specs = [
            (g_entries, g_history_bits,
             _branch_history(outcomes, g_history_bits, shared)),
            (b_entries, 0, None),
        ]
    elif kind == "gshare":
        _, entries, history_bits = key
        specs = [
            (entries, history_bits,
             _branch_history(outcomes, history_bits, shared)),
        ]
    else:
        specs = [(key[1], 0, None)]
    narrow = all(
        entries <= 1 << 15
        and (history is None or history.dtype == np.uint16)
        for entries, _, history in specs
    )
    dtype = np.uint16 if narrow else np.int64
    out = np.empty((len(specs), pcs2.shape[0]), dtype=dtype)
    masked: dict[int, np.ndarray] = {}
    for row, (entries, history_bits, history) in enumerate(specs):
        base = masked.get(entries)
        if base is None:
            base = np.bitwise_and(
                pcs2, entries - 1, dtype=dtype, casting="unsafe"
            )
            masked[entries] = base
        if history is None:
            out[row] = base
        else:
            np.bitwise_xor(
                base, history.astype(dtype, copy=False), out=out[row]
            )
            if (1 << history_bits) > entries:
                out[row] &= entries - 1
    return out


def _counter_layout(indices: np.ndarray) -> tuple:
    """Segment layout grouping each table entry's accesses in program
    order, per row of an (R, n) index matrix.

    Returns ``(order, seg_start, starts, seg_id, pos, max_len)``:
    the per-row stable sort order, segment-start mask, and — over the
    row-major flattening, where each row's segments stay contiguous —
    flat segment start offsets, each element's segment id, its offset
    within that segment, and the longest segment.

    Split out from :func:`_counter_prestates` so callers can reuse a
    layout across scans over the *same* index rows — the tournament
    chooser is indexed identically to its bimodal component, so its
    second-phase scan rides the component's ordering for free (see
    :func:`_layout_rows`).  Table indices are bounded by the table
    size, so they almost always arrive (or fit) 16-bit — where numpy's
    stable sort is a radix sort an order of magnitude faster than the
    32/64-bit comparison sorts.
    """
    if indices.dtype in (np.uint16, np.int16):
        keys = indices
    elif indices.size and int(indices.max()) < np.iinfo(np.int16).max:
        keys = indices.astype(np.int16)
    else:
        keys = indices.astype(np.int64, copy=False)
    order = np.argsort(keys, axis=1, kind="stable")
    grouped = np.take_along_axis(keys, order, axis=1)
    seg_start = np.empty(indices.shape, dtype=bool)
    seg_start[:, 0] = True
    seg_start[:, 1:] = grouped[:, 1:] != grouped[:, :-1]
    flat = seg_start.ravel()
    starts = np.nonzero(flat)[0].astype(np.int32)
    seg_id = np.cumsum(flat, dtype=np.int32) - 1
    total = indices.size
    pos = np.arange(total, dtype=np.int32) - starts[seg_id]
    max_len = int(np.diff(np.append(starts, total)).max()) if total else 0
    return order, seg_start, starts, seg_id, pos, max_len


def _layout_rows(layout: tuple, rows: list[int], n: int) -> tuple:
    """Sub-layout of :func:`_counter_layout` restricted to ``rows``.

    Re-bases the flat segment metadata instead of re-deriving it, so a
    scan over a subset of already-laid-out index rows (the tournament
    chooser reusing its bimodal component's rows) skips the sort *and*
    the cumulative segment passes.  ``max_len`` keeps the parent's
    value — an upper bound, exact whenever the selected rows contain
    the longest segment.
    """
    order, seg_start, starts, seg_id, pos, max_len = layout
    starts_parts, segid_parts, pos_parts = [], [], []
    seg_base = 0
    for k, r in enumerate(rows):
        lo, hi = r * n, (r + 1) * n
        s0 = int(seg_id[lo])
        s1 = int(seg_id[hi - 1]) + 1
        starts_parts.append(starts[s0:s1] + np.int32((k - r) * n))
        segid_parts.append(seg_id[lo:hi] + np.int32(seg_base - s0))
        pos_parts.append(pos[lo:hi])
        seg_base += s1 - s0
    return (
        order[rows],
        seg_start[rows],
        np.concatenate(starts_parts) if rows else starts[:0],
        np.concatenate(segid_parts) if rows else seg_id[:0],
        np.concatenate(pos_parts) if rows else pos[:0],
        max_len,
    )


def _counter_prestates(
    indices: np.ndarray,
    steps: np.ndarray,
    layout: tuple | None = None,
    grouped_steps: bool = False,
    keep_grouped: bool = False,
) -> np.ndarray:
    """Pre-access 2-bit saturating-counter states for R independent
    tables at once.

    ``indices``/``steps`` are (R, n): row r gives table r's entry index
    and saturating step per access.  Grouping accesses by index makes
    each table entry an independent segment, evaluated by one of two
    bit-identical kernels:

    * **rounds** (the fast path on loop branch traces, whose segments —
      one per static branch site per table — are long and plentiful):
      every segment steps its walk simultaneously, one numpy
      ``clip(state + d)`` per stream position over a padded
      (position, segment) matrix.  The round count is the longest
      segment (≈ the loop iteration count), *independent of the trace
      length*, so cost is dominated by the O(n) layout passes.
    * **doubling scan** (fallback for short or skewed segment layouts
      where padding would blow up): a run of saturating steps composes
      into a clamp ``x -> min(b, max(a, x + d))``, and a Hillis–Steele
      scan evaluates every prefix in ``O(log longest-segment)`` array
      passes over all rows together.

    A zero step is the identity under both kernels — that is what lets
    the tournament chooser (trained only when its components disagree)
    ride the same machinery.  Returns the int8 counter value *before*
    each access (initial state: weakly taken, 2), in original access
    order per row.  ``steps`` may be 1-D when every row steps
    identically (gather through the order is cheaper than a broadcast
    take_along).

    ``grouped_steps``/``keep_grouped`` let a caller who already lives
    in the layout's sorted domain (the tournament chooser phase, whose
    steps come from component predictions) skip the permutation on the
    way in and/or out.
    """
    rows, n = indices.shape
    if layout is None:
        layout = _counter_layout(indices)
    order, seg_start, starts, seg_id, pos, max_len = layout
    if grouped_steps:
        d8 = steps.astype(np.int8, copy=False).reshape(rows, n)
    elif steps.ndim == 1:
        d8 = steps.astype(np.int8, copy=False)[order]
    else:
        d8 = np.take_along_axis(
            steps.astype(np.int8, copy=False), order, axis=1
        )

    total = rows * n
    if (
        n >= _MIN_ROUNDS_TRACE
        and max_len <= n // _ROUNDS_IMBALANCE
        and starts.shape[0] * max_len <= 4 * total
    ):
        num_segs = starts.shape[0]
        # Zero-padding freezes exhausted segments (clip(s + 0) = s), so
        # the rounds loop needs no activity masking; (position, segment)
        # layout keeps each round's reads contiguous.  Raw ufunc calls
        # with explicit outputs: np.clip's dispatch overhead rivals the
        # array work itself at these widths.  Adjacent steps are
        # pre-composed pairwise — two saturating steps collapse into
        # one clamp ``min(b, max(a, s + d))`` — halving the sequential
        # round count; odd positions are filled back in with a single
        # vectorized clip at the end.
        paired = max_len + (max_len & 1)
        mat = np.zeros((paired, num_segs), dtype=np.int8)
        mat[pos, seg_id] = d8.ravel()
        d1, d2 = mat[0::2], mat[1::2]
        comp_a = np.maximum(d2, 0)
        comp_b = np.minimum(d2 + 3, 3)
        comp_d = d1 + d2
        half = paired // 2
        even = np.empty((half, num_segs), dtype=np.int8)
        even[0] = 2
        for r in range(1, half):
            np.add(even[r - 1], comp_d[r - 1], out=even[r])
            np.maximum(even[r], comp_a[r - 1], out=even[r])
            np.minimum(even[r], comp_b[r - 1], out=even[r])
        odd = even + d1
        np.maximum(odd, 0, out=odd)
        np.minimum(odd, 3, out=odd)
        pre = np.empty((paired, num_segs), dtype=np.int8)
        pre[0::2] = even
        pre[1::2] = odd
        state_sorted = pre[pos, seg_id].reshape(rows, n)
        if keep_grouped:
            return state_sorted
        states = np.empty((rows, n), dtype=np.int8)
        np.put_along_axis(states, order, state_sorted, axis=1)
        return states

    # Each step is f(x) = min(3, max(0, x + step)): triple (a=0, b=3, d).
    d = d8.astype(np.int64)
    a = np.zeros((rows, n), dtype=np.int64)
    b = np.full((rows, n), 3, dtype=np.int64)

    flag = seg_start.copy()
    off = 1
    while off < n and not flag.all():
        prev_a, prev_b, prev_d = a[:, :-off], b[:, :-off], d[:, :-off]
        cur_a, cur_b, cur_d = a[:, off:], b[:, off:], d[:, off:]
        can = ~flag[:, off:]
        comp_a = np.where(can, np.maximum(cur_a, prev_a + cur_d), cur_a)
        comp_b = np.where(
            can, np.minimum(cur_b, np.maximum(cur_a, prev_b + cur_d)), cur_b
        )
        comp_d = np.where(can, prev_d + cur_d, cur_d)
        a[:, off:] = comp_a
        b[:, off:] = comp_b
        d[:, off:] = comp_d
        flag[:, off:] = flag[:, off:] | flag[:, :-off]
        off <<= 1

    # Counter value *before* access k: exclusive prefix applied to the
    # initial weakly-taken state (2).
    state_sorted = np.empty((rows, n), dtype=np.int64)
    state_sorted[:, 0] = 2
    applied = np.minimum(
        b[:, :-1], np.maximum(a[:, :-1], 2 + d[:, :-1])
    )
    state_sorted[:, 1:] = np.where(seg_start[:, 1:], 2, applied)

    if keep_grouped:
        return state_sorted.astype(np.int8)
    states = np.empty((rows, n), dtype=np.int8)
    np.put_along_axis(states, order, state_sorted.astype(np.int8), axis=1)
    return states


def _simulate_branches_vectorized(
    core: CoreConfig,
    trace: ExpandedTrace,
    warmup_branches: int,
    shared: dict | None = None,
) -> tuple[int, int]:
    """Segmented-scan branch engine for all predictor kinds.

    gshare/bimodal need one :func:`_counter_prestates` row.  The
    tournament predictor needs two phases: its gshare and bimodal
    components scan in parallel rows (their training is unconditional,
    so their steps are known upfront), then the chooser — whose steps
    depend on the component *predictions* — runs one more scan with
    steps in {-1, 0, +1}.  A chooser sized like the bimodal component
    (every Table II tournament core) is indexed identically to it, so
    phase two runs entirely in that row's sorted domain: the component
    layout is reused and no permutation back to program order is ever
    materialised — mispredicts are counted through the order itself.
    Bit-identical to the reference loops.
    """
    outcomes = np.asarray(trace.branch_outcomes, dtype=bool)
    n = int(outcomes.shape[0])
    warmup = _clamped_warmup(warmup_branches, n)
    if warmup >= n:
        return 0, 0
    _record_path("branch.vectorized.scan")
    key = branch_event_key(core)
    pcs2 = np.asarray(trace.branch_pcs, dtype=np.int64) >> 2
    steps = np.where(outcomes, np.int8(1), np.int8(-1))
    stacked = _component_index_rows(key, pcs2, outcomes, shared)
    layout = _counter_layout(stacked)
    if key[0] == "tournament" and key[4] == key[1]:
        grouped = _counter_prestates(stacked, steps, layout,
                                     keep_grouped=True)
        g_order, b_order = layout[0]
        g_pred = np.empty(n, dtype=bool)
        g_pred[g_order] = grouped[0] >= 2
        g_pred_b = g_pred[b_order]
        b_pred_b = grouped[1] >= 2
        out_b = outcomes[b_order]
        # Chooser step: +1/-1 toward gshare when the components
        # disagree and gshare was right/wrong, else 0 — which is just
        # (gshare correct) - (bimodal correct).
        c_steps_b = (
            (g_pred_b == out_b).view(np.int8)
            - (b_pred_b == out_b).view(np.int8)
        )
        c_state_b = _counter_prestates(
            stacked[1:2], c_steps_b, _layout_rows(layout, [1], n),
            grouped_steps=True, keep_grouped=True,
        )[0]
        wrong = np.where(c_state_b >= 2, g_pred_b, b_pred_b) != out_b
        if warmup:
            wrong &= b_order >= warmup
        return int(np.count_nonzero(wrong)), n - warmup
    states = _counter_prestates(stacked, steps, layout)
    if key[0] == "tournament":
        g_pred = states[0] >= 2
        b_pred = states[1] >= 2
        c_steps = np.where(
            g_pred == b_pred,
            np.int8(0),
            np.where(g_pred == outcomes, np.int8(1), np.int8(-1)),
        )
        c_index = (pcs2 & (key[4] - 1))[None, :]
        c_state = _counter_prestates(c_index, c_steps)[0]
        prediction = np.where(c_state >= 2, g_pred, b_pred)
    else:
        prediction = states[0] >= 2
    mispredicts = int(
        np.count_nonzero(prediction[warmup:] != outcomes[warmup:])
    )
    return mispredicts, n - warmup


def icache_event_key(core: CoreConfig) -> tuple:
    """Every core parameter :func:`simulate_icache` reads."""
    return (
        core.l1i.num_sets,
        core.l1i.assoc,
        core.l1i.line_bytes,
        core.l2.size_bytes,
        core.l2.line_bytes,
        core.l2.num_sets,
        core.l2.assoc,
    )


def _icache_counts(
    core: CoreConfig, code_bytes: int, iterations: int, code_hits
) -> tuple[int, int, int]:
    num_lines = max(1, code_bytes // core.l1i.line_bytes)
    hits, misses = code_hits(
        num_lines, core.l1i.num_sets, core.l1i.assoc, iterations
    )
    # The loop's code always fits somewhere up the hierarchy; L2-side
    # code misses only occur if the code exceeds the L2 too.
    l2_lines_capacity = core.l2.size_bytes // core.l2.line_bytes
    if num_lines > l2_lines_capacity:
        _, l2_misses = code_hits(
            num_lines,
            core.l2.num_sets,
            core.l2.assoc,
            iterations,
        )
    else:
        l2_misses = 0
    return hits, misses, l2_misses


def simulate_icache(
    core: CoreConfig, code_bytes: int, iterations: int,
    engine: str | None = None,
) -> tuple[int, int, int]:
    """(l1i hits, l1i misses, l2-side code misses) for the window.

    ``engine="reference"`` runs :func:`cyclic_code_hits`'s per-set loop;
    the vectorized engine uses the bit-identical closed form over the at
    most two distinct per-set line counts.
    """
    if resolve_engine(engine) == "reference":
        _record_path("icache.reference")
        code_hits = cyclic_code_hits
    else:
        _record_path("icache.vectorized")
        code_hits = cyclic_code_hits_closed
    return _icache_counts(core, code_bytes, iterations, code_hits)


def simulate_icache_batch(
    cores: "list[CoreConfig]",
    code_bytes: int,
    iterations_list: "list[int]",
    engine: str | None = None,
) -> "list[tuple[int, int, int]]":
    """Batched :func:`simulate_icache` over one program's code bytes.

    The instruction-cache model is closed-form in the core geometry and
    iteration count — unlike the memory/branch sims it reads no trace
    columns — so the batch win is pure dedup: each distinct
    ``icache_event_key(core) + (iterations,)`` is evaluated once and
    fanned back out in input order.  Bit-identical to calling
    :func:`simulate_icache` per core under the same engine.
    """
    if len(cores) != len(iterations_list):
        raise ValueError(
            f"{len(cores)} cores but {len(iterations_list)} iteration counts"
        )
    code_hits = (
        cyclic_code_hits
        if resolve_engine(engine) == "reference"
        else cyclic_code_hits_closed
    )
    _record_path("icache.batch")
    memo: dict[tuple, tuple[int, int, int]] = {}
    out = []
    for core, iterations in zip(cores, iterations_list):
        key = icache_event_key(core) + (iterations,)
        if key not in memo:
            memo[key] = _icache_counts(core, code_bytes, iterations, code_hits)
        out.append(memo[key])
    return out
