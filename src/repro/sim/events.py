"""Stage 2 of the simulator pipeline: per-core event simulation.

The functions here drive one core configuration's cache hierarchy, branch
predictor, TLB and instruction cache over a shared
:class:`~repro.sim.trace.ExpandedTrace` (stage 1,
:mod:`repro.sim.artifact`) and count the miss events the interval timing
model (stage 3, :mod:`repro.sim.interval`) charges for.

Each simulation is a pure function of (core parameters, trace, warmup
boundary), and each exposes a ``*_key`` companion returning exactly the
core parameters it reads.  The keys let :class:`~repro.sim.artifact.
TraceArtifact` memoize event results across a batch of core configs: two
configs that differ only in back-end width share one memory simulation
bit-for-bit, which is where ``Simulator.run_many`` earns its speedup.

Two engines implement the same semantics:

* ``engine="reference"`` — the original per-access Python loops, kept as
  the oracle for property tests and as a fallback;
* ``engine="vectorized"`` (default) — numpy array kernels.  The gshare
  predictor is evaluated with a segmented saturating-counter scan over
  precomputed table indices; the memory hierarchy precomputes per-access
  set indices and page numbers with numpy, detects the periodic
  structure of the cyclic trace, simulates one steady-state cycle of the
  cache/TLB/prefetcher state machine and extrapolates the remaining
  periods instead of replaying them.

Both engines are bit-identical: every event count an engine returns is
exactly equal to the reference loop's.  ``REPRO_EVENT_ENGINE`` selects
the process-wide default.
"""

from __future__ import annotations

import os
from collections import OrderedDict, defaultdict
from dataclasses import dataclass
from itertools import repeat

import numpy as np

from repro.sim.branch import predictor_for_core
from repro.sim.cache import cyclic_code_hits
from repro.sim.config import CoreConfig
from repro.sim.tlb import tlb_for_core
from repro.sim.trace import ExpandedTrace

#: Supported event-simulation engines.
ENGINES = ("reference", "vectorized")

#: Engine used when callers pass ``engine=None`` and the environment
#: does not override it.
DEFAULT_ENGINE = "vectorized"

#: Environment override for the process-wide default engine.
ENGINE_ENV_VAR = "REPRO_EVENT_ENGINE"

# 64-byte lines, 4 KB pages: page = line >> 6.
_PAGE_SHIFT = 6

#: Cap on state snapshots taken while hunting for a steady-state cycle;
#: traces that do not revisit a state within this many periods fall back
#: to straight simulation of the remainder.
_MAX_SNAPSHOTS = 32


def resolve_engine(engine: str | None = None) -> str:
    """Resolve an engine name, falling back to the configured default.

    Raises:
        ValueError: for names outside :data:`ENGINES`.
    """
    resolved = engine or os.environ.get(ENGINE_ENV_VAR) or DEFAULT_ENGINE
    if resolved not in ENGINES:
        raise ValueError(
            f"unknown event engine {resolved!r}; choose from {ENGINES}"
        )
    return resolved


@dataclass
class MemoryEvents:
    """L1D/L2/TLB/prefetch event counts for one measurement window."""

    load_l1_misses: int = 0
    load_l2_misses: int = 0
    store_l1_misses: int = 0
    store_l2_misses: int = 0
    l1d_hits: int = 0
    l1d_accesses: int = 0
    l2_hits: int = 0
    l2_accesses: int = 0
    prefetch_installs: int = 0
    prefetch_hits: int = 0
    dtlb_misses: int = 0
    dtlb_accesses: int = 0


def memory_event_key(core: CoreConfig) -> tuple:
    """Every core parameter :func:`simulate_memory` reads."""
    return (
        core.l1d.num_sets,
        core.l1d.assoc,
        core.l1d.line_bytes,
        core.l2.num_sets,
        core.l2.assoc,
        core.l2_prefetcher,
        tlb_for_core(core.name).entries,
    )


def _clamped_warmup(warmup: int, total: int) -> int:
    """Warmup boundary clamped into ``[0, total]``.

    A requested warmup at or beyond the end of the trace leaves an empty
    measurement window: nothing is counted (previously the counting flag
    never flipped, so warmup-inclusive TLB counters leaked into an
    otherwise all-zero result).
    """
    return min(max(warmup, 0), total)


def simulate_memory(
    core: CoreConfig,
    trace: ExpandedTrace,
    warmup_accesses: int,
    engine: str | None = None,
) -> MemoryEvents:
    """Drive the L1D/L2 hierarchy over the exact access trace.

    Args:
        core: core configuration (cache geometry, prefetcher, TLB).
        trace: shared expanded trace.
        warmup_accesses: leading accesses that warm state without being
            counted; clamped to the trace length.
        engine: event engine (:data:`ENGINES`); ``None`` uses the
            process default.
    """
    if resolve_engine(engine) == "vectorized":
        return _simulate_memory_vectorized(core, trace, warmup_accesses)
    return _simulate_memory_reference(core, trace, warmup_accesses)


def _simulate_memory_reference(
    core: CoreConfig, trace: ExpandedTrace, warmup_accesses: int
) -> MemoryEvents:
    """Per-access loop over the trace (the oracle engine).

    The per-set LRU state is inlined as plain lists rather than going
    through :class:`SetAssociativeCache` method calls; this loop is what
    the vectorized engine must match bit for bit.
    """
    res = MemoryEvents()
    lines = trace.mem_lines.tolist()
    n = len(lines)
    warmup = _clamped_warmup(warmup_accesses, n)
    if warmup >= n:
        return res

    l1_sets: list[list[int]] = [[] for _ in range(core.l1d.num_sets)]
    l2_sets: list[list[int]] = [[] for _ in range(core.l2.num_sets)]
    n1 = core.l1d.num_sets
    n2 = core.l2.num_sets
    a1 = core.l1d.assoc
    a2 = core.l2.assoc
    prefetching = core.l2_prefetcher
    # Reference-prediction table: pc -> (last_line, stride, confirmed).
    rpt: dict[int, tuple[int, int, bool]] = {}
    prefetched: set[int] = set()
    tlb = tlb_for_core(core.name)

    stores = trace.mem_is_store.tolist()
    pcs = trace.mem_pcs.tolist()
    counting = warmup == 0
    for k, (pc, line, is_store) in enumerate(zip(pcs, lines, stores)):
        if not counting and k >= warmup:
            counting = True
            tlb.reset_stats()
        tlb.access(line << _PAGE_SHIFT)
        set1 = l1_sets[line % n1]
        if line in set1:
            set1.remove(line)
            set1.append(line)
            if counting:
                res.l1d_hits += 1
                res.l1d_accesses += 1
            continue
        # L1 miss: fill L1, look up L2.
        set1.append(line)
        if len(set1) > a1:
            del set1[0]
        set2 = l2_sets[line % n2]
        if line in set2:
            l2_hit = True
            set2.remove(line)
            set2.append(line)
            # A prefetched line's first use consumes its prefetched
            # mark whether or not the use lands in the measured window;
            # only the *count* is gated on measuring.  (Discarding only
            # while counting let warmup-covered prefetches inflate a
            # later measured prefetch_hits.)
            if line in prefetched:
                prefetched.discard(line)
                if counting:
                    res.prefetch_hits += 1
        else:
            l2_hit = False
            set2.append(line)
            if len(set2) > a2:
                evicted = set2[0]
                del set2[0]
                prefetched.discard(evicted)
        if prefetching:
            last_line, last_stride, confirmed = rpt.get(pc, (line, 0, False))
            stride = line - last_line
            if stride:
                confirmed = stride == last_stride
            if confirmed and stride:
                for d in (1, 2):
                    target = line + stride * d
                    pset = l2_sets[target % n2]
                    if target not in pset:
                        pset.append(target)
                        if len(pset) > a2:
                            evicted = pset[0]
                            del pset[0]
                            prefetched.discard(evicted)
                        prefetched.add(target)
                        if counting:
                            res.prefetch_installs += 1
            rpt[pc] = (line, stride if stride else last_stride, confirmed)
        if counting:
            res.l1d_accesses += 1
            res.l2_accesses += 1
            if l2_hit:
                res.l2_hits += 1
            if is_store:
                res.store_l1_misses += 1
                if not l2_hit:
                    res.store_l2_misses += 1
            else:
                res.load_l1_misses += 1
                if not l2_hit:
                    res.load_l2_misses += 1
    res.dtlb_misses = tlb.misses
    res.dtlb_accesses = tlb.accesses
    return res


def _trace_period(trace: ExpandedTrace) -> int:
    """Minimal iteration period of the memory access pattern (0 = none).

    The generated loops expand to purely periodic per-iteration access
    slabs (strided streams wrap their footprints, reuse windows repeat),
    so the (lines, pcs, stores) arrays reshaped to one row per iteration
    repeat with some row period ``p``.  Candidate periods are rows equal
    to row 0; each is verified with a full shift comparison, so a
    returned period is exact, never a heuristic.  The result is
    core-independent and memoized on the trace, so one detection serves
    every memory simulation of a config sweep.
    """
    if trace.min_period is not None:
        return trace.min_period
    trace.min_period = _detect_trace_period(trace)
    return trace.min_period


def _detect_trace_period(trace: ExpandedTrace) -> int:
    n = int(trace.mem_lines.shape[0])
    iters = trace.iterations
    if iters <= 1 or n == 0 or n % iters:
        return 0
    m = n // iters
    lines = np.ascontiguousarray(trace.mem_lines).reshape(iters, m)
    pcs = np.ascontiguousarray(trace.mem_pcs).reshape(iters, m)
    stores = np.ascontiguousarray(trace.mem_is_store).reshape(iters, m)
    rows_eq = (
        np.all(lines == lines[0], axis=1)
        & np.all(pcs == pcs[0], axis=1)
        & np.all(stores == stores[0], axis=1)
    )
    candidates = (np.nonzero(rows_eq[1:])[0] + 1)[:8]
    for p in candidates.tolist():
        if (
            np.array_equal(lines[p:], lines[:-p])
            and np.array_equal(pcs[p:], pcs[:-p])
            and np.array_equal(stores[p:], stores[:-p])
        ):
            return int(p)
    return 0


class _MemoryKernel:
    """Cache/TLB/prefetcher state machine over precomputed access arrays.

    Owns exactly the per-access semantics of the reference loop; the
    vectorized engine owns the schedule — which trace slices are
    simulated and which whole steady-state cycles are skipped via
    extrapolation.  Set indices and page numbers arrive precomputed
    (numpy) so the inner loop does no address arithmetic.
    """

    #: Counter attributes, in :class:`MemoryEvents` field order followed
    #: by the measured-window TLB counters.
    _COUNTERS = (
        "load_l1_misses", "load_l2_misses", "store_l1_misses",
        "store_l2_misses", "l1d_hits", "l1d_accesses", "l2_hits",
        "l2_accesses", "prefetch_installs", "prefetch_hits",
        "tlb_hits", "tlb_misses",
    )

    def __init__(self, core: CoreConfig, lines, stores, pcs,
                 set1_idx, set2_idx, pages):
        # Access arrays stay numpy; run() converts just the slices it
        # actually simulates (extrapolation skips most of the trace, so
        # eager whole-trace .tolist() would dominate the engine's cost).
        self.lines = lines
        self.stores = stores
        self.pcs = pcs
        self.set1_idx = set1_idx
        self.set2_idx = set2_idx
        self.pages = pages
        self.n1 = core.l1d.num_sets
        self.n2 = core.l2.num_sets
        self.a1 = core.l1d.assoc
        self.a2 = core.l2.assoc
        self.prefetching = core.l2_prefetcher
        self.tlb_entries = tlb_for_core(core.name).entries
        # Sets materialize lazily: only the footprint's sets ever exist,
        # which also keeps state snapshots proportional to resident
        # lines instead of cache geometry.
        self.l1_sets: defaultdict[int, list[int]] = defaultdict(list)
        self.l2_sets: defaultdict[int, list[int]] = defaultdict(list)
        self.rpt: dict[int, tuple[int, int, bool]] = {}
        self.prefetched: set[int] = set()
        self.tlb_pages: OrderedDict[int, None] = OrderedDict()
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def snapshot_key(self) -> tuple:
        """Hashable snapshot of every state bit that drives evolution."""
        return (
            tuple(sorted(
                (s, tuple(w)) for s, w in self.l1_sets.items() if w
            )),
            tuple(sorted(
                (s, tuple(w)) for s, w in self.l2_sets.items() if w
            )),
            tuple(sorted(self.rpt.items())),
            frozenset(self.prefetched),
            tuple(self.tlb_pages),
        )

    def counts_key(self) -> tuple:
        return tuple(getattr(self, name) for name in self._COUNTERS)

    def add_counts(self, delta: tuple, times: int) -> None:
        """Extrapolate: add ``times`` repetitions of a per-cycle delta."""
        for name, value in zip(self._COUNTERS, delta):
            setattr(self, name, getattr(self, name) + value * times)

    def finish(self) -> MemoryEvents:
        return MemoryEvents(
            load_l1_misses=self.load_l1_misses,
            load_l2_misses=self.load_l2_misses,
            store_l1_misses=self.store_l1_misses,
            store_l2_misses=self.store_l2_misses,
            l1d_hits=self.l1d_hits,
            l1d_accesses=self.l1d_accesses,
            l2_hits=self.l2_hits,
            l2_accesses=self.l2_accesses,
            prefetch_installs=self.prefetch_installs,
            prefetch_hits=self.prefetch_hits,
            dtlb_misses=self.tlb_misses,
            dtlb_accesses=self.tlb_hits + self.tlb_misses,
        )

    def run(self, start: int, stop: int, counting: bool) -> None:
        """Simulate accesses ``[start, stop)``, counting if measuring."""
        if stop <= start:
            return
        l1_sets = self.l1_sets
        l2_sets = self.l2_sets
        a1 = self.a1
        a2 = self.a2
        n2 = self.n2
        prefetching = self.prefetching
        rpt = self.rpt
        prefetched = self.prefetched
        tlb_pages = self.tlb_pages
        tlb_entries = self.tlb_entries
        tlb_hits = tlb_misses = 0
        l1d_hits = l1d_accesses = l2_hits = l2_accesses = 0
        load_l1 = load_l2 = store_l1 = store_l2 = 0
        pf_installs = pf_hits = 0
        # Convert only the simulated slice to Python scalars; skip the
        # columns this run cannot read (pcs feed only the prefetcher,
        # store flags only the measured-window attribution).
        pcs = (
            self.pcs[start:stop].tolist() if self.prefetching
            else repeat(0)
        )
        stores = (
            self.stores[start:stop].tolist() if counting
            else repeat(False)
        )
        for pc, line, is_store, s1, s2, page in zip(
            pcs, self.lines[start:stop].tolist(), stores,
            self.set1_idx[start:stop].tolist(),
            self.set2_idx[start:stop].tolist(),
            self.pages[start:stop].tolist(),
        ):
            if page in tlb_pages:
                tlb_pages.move_to_end(page)
                tlb_hits += 1
            else:
                tlb_misses += 1
                if len(tlb_pages) >= tlb_entries:
                    tlb_pages.popitem(last=False)
                tlb_pages[page] = None
            set1 = l1_sets[s1]
            if line in set1:
                set1.remove(line)
                set1.append(line)
                if counting:
                    l1d_hits += 1
                    l1d_accesses += 1
                continue
            set1.append(line)
            if len(set1) > a1:
                del set1[0]
            set2 = l2_sets[s2]
            if line in set2:
                l2_hit = True
                set2.remove(line)
                set2.append(line)
                if line in prefetched:
                    prefetched.discard(line)
                    if counting:
                        pf_hits += 1
            else:
                l2_hit = False
                set2.append(line)
                if len(set2) > a2:
                    evicted = set2[0]
                    del set2[0]
                    prefetched.discard(evicted)
            if prefetching:
                last_line, last_stride, confirmed = rpt.get(
                    pc, (line, 0, False)
                )
                stride = line - last_line
                if stride:
                    confirmed = stride == last_stride
                if confirmed and stride:
                    for d in (1, 2):
                        target = line + stride * d
                        pset = l2_sets[target % n2]
                        if target not in pset:
                            pset.append(target)
                            if len(pset) > a2:
                                evicted = pset[0]
                                del pset[0]
                                prefetched.discard(evicted)
                            prefetched.add(target)
                            if counting:
                                pf_installs += 1
                rpt[pc] = (line, stride if stride else last_stride, confirmed)
            if counting:
                l1d_accesses += 1
                l2_accesses += 1
                if l2_hit:
                    l2_hits += 1
                if is_store:
                    store_l1 += 1
                    if not l2_hit:
                        store_l2 += 1
                else:
                    load_l1 += 1
                    if not l2_hit:
                        load_l2 += 1
        if counting:
            self.tlb_hits += tlb_hits
            self.tlb_misses += tlb_misses
            self.l1d_hits += l1d_hits
            self.l1d_accesses += l1d_accesses
            self.l2_hits += l2_hits
            self.l2_accesses += l2_accesses
            self.load_l1_misses += load_l1
            self.load_l2_misses += load_l2
            self.store_l1_misses += store_l1
            self.store_l2_misses += store_l2
            self.prefetch_installs += pf_installs
            self.prefetch_hits += pf_hits


def _simulate_memory_vectorized(
    core: CoreConfig, trace: ExpandedTrace, warmup_accesses: int
) -> MemoryEvents:
    """Array-kernel memory engine with steady-state extrapolation.

    Per-access set indices, tags and page numbers are precomputed with
    numpy; the LRU/TLB/prefetcher state machine then runs over the
    minimal trace period, snapshotting state at period boundaries.  As
    soon as a boundary state recurs, every later period is an exact
    replay, so the remaining whole cycles are extrapolated (warmup:
    state is simply known; measurement: per-cycle event deltas repeat)
    and only the partial tail is simulated.  Bit-identical to
    :func:`_simulate_memory_reference` by construction.
    """
    n = int(trace.mem_lines.shape[0])
    warmup = _clamped_warmup(warmup_accesses, n)
    if warmup >= n:
        return MemoryEvents()

    lines_arr = np.asarray(trace.mem_lines, dtype=np.int64)
    kernel = _MemoryKernel(
        core,
        lines_arr,
        np.asarray(trace.mem_is_store, dtype=bool),
        np.asarray(trace.mem_pcs, dtype=np.int64),
        lines_arr % core.l1d.num_sets,
        lines_arr % core.l2.num_sets,
        lines_arr >> _PAGE_SHIFT,
    )

    m = n // trace.iterations if trace.iterations else 0
    p_acc = _trace_period(trace) * m
    if p_acc == 0 or n < 2 * p_acc:
        kernel.run(0, warmup, counting=False)
        kernel.run(warmup, n, counting=True)
        return kernel.finish()

    # Snapshots are taken at positions congruent to the warmup boundary
    # (mod the trace period): a warmup cycle then jumps *exactly* to the
    # boundary, and the measurement phase detects its steady state from
    # the very first counted period — no partial-period alignment runs.
    pos = warmup % p_acc
    kernel.run(0, pos, counting=False)
    seen_warm: dict[tuple, int] = {}
    while pos < warmup and len(seen_warm) < _MAX_SNAPSHOTS:
        key = kernel.snapshot_key()
        first = seen_warm.get(key)
        if first is not None:
            # State recurs with this cycle length; whole cycles are
            # exact no-ops on state, so skip as many as fit.
            cycle = pos - first
            pos += (warmup - pos) // cycle * cycle
            break
        seen_warm[key] = pos
        kernel.run(pos, pos + p_acc, counting=False)
        pos += p_acc
    kernel.run(pos, warmup, counting=False)

    # Measurement: simulate counted periods until a boundary state
    # recurs, then extrapolate that cycle's event deltas over the
    # remaining whole cycles and simulate only the tail.
    pos = warmup
    seen: dict[tuple, tuple[int, tuple]] = {}
    while n - pos >= p_acc and len(seen) < _MAX_SNAPSHOTS:
        key = kernel.snapshot_key()
        first = seen.get(key)
        if first is not None:
            first_pos, first_counts = first
            cycle = pos - first_pos
            counts = kernel.counts_key()
            delta = tuple(
                now - then for now, then in zip(counts, first_counts)
            )
            reps = (n - pos) // cycle
            kernel.add_counts(delta, reps)
            pos += reps * cycle
            break
        seen[key] = (pos, kernel.counts_key())
        kernel.run(pos, pos + p_acc, counting=True)
        pos += p_acc
    kernel.run(pos, n, counting=True)
    return kernel.finish()


def branch_event_key(core: CoreConfig) -> tuple:
    """Every core parameter :func:`simulate_branches` reads."""
    reference = predictor_for_core(core.name)
    return (reference.table.entries, getattr(reference, "history_bits", 0))


def simulate_branches(
    core: CoreConfig,
    trace: ExpandedTrace,
    warmup_branches: int,
    engine: str | None = None,
) -> tuple[int, int]:
    """gshare direction prediction over the exact outcome trace.

    Functionally identical to :class:`repro.sim.branch.GSharePredictor`.
    Returns ``(mispredicts, lookups)`` for the measured window, which
    starts after ``warmup_branches`` (clamped) trained-but-uncounted
    branches.
    """
    if resolve_engine(engine) == "vectorized":
        return _simulate_branches_vectorized(core, trace, warmup_branches)
    return _simulate_branches_reference(core, trace, warmup_branches)


def _simulate_branches_reference(
    core: CoreConfig, trace: ExpandedTrace, warmup_branches: int
) -> tuple[int, int]:
    """Per-branch gshare loop (the oracle engine)."""
    pcs = trace.branch_pcs.tolist()
    outcomes = trace.branch_outcomes.tolist()
    n = len(pcs)
    warmup = _clamped_warmup(warmup_branches, n)
    if warmup >= n:
        return 0, 0

    entries, history_bits = branch_event_key(core)
    entry_mask = entries - 1
    history_mask = (1 << history_bits) - 1

    counters = [2] * entries  # weakly taken
    history = 0
    mispredicts = 0
    lookups = 0
    counting = warmup == 0
    for k, (pc, taken) in enumerate(zip(pcs, outcomes)):
        if not counting and k >= warmup:
            counting = True
        index = ((pc >> 2) ^ history) & entry_mask
        c = counters[index]
        if counting:
            lookups += 1
            if (c >= 2) != taken:
                mispredicts += 1
        if taken:
            if c < 3:
                counters[index] = c + 1
            history = ((history << 1) | 1) & history_mask
        else:
            if c > 0:
                counters[index] = c - 1
            history = (history << 1) & history_mask
    return mispredicts, lookups


def _simulate_branches_vectorized(
    core: CoreConfig, trace: ExpandedTrace, warmup_branches: int
) -> tuple[int, int]:
    """Closed-form gshare over numpy arrays.

    The global history before branch ``k`` is just the previous
    ``history_bits`` outcomes packed as bits (independent of the
    counters), so every table index is precomputable.  Grouping accesses
    by index then reduces each 2-bit saturating counter to a segmented
    scan: a run of ±1 saturating steps composes into a clamp function
    ``x -> min(b, max(a, x + d))``, which a Hillis–Steele doubling scan
    evaluates for every prefix in ``O(log n)`` array passes.  The
    prediction at each access applies the exclusive prefix to the
    initial weakly-taken counter.  Bit-identical to the reference loop.
    """
    outcomes = np.asarray(trace.branch_outcomes, dtype=bool)
    n = int(outcomes.shape[0])
    warmup = _clamped_warmup(warmup_branches, n)
    if warmup >= n:
        return 0, 0

    entries, history_bits = branch_event_key(core)
    entry_mask = entries - 1
    pcs = np.asarray(trace.branch_pcs, dtype=np.int64)

    if history_bits > 0:
        taken_bits = outcomes.astype(np.int64)
        padded = np.concatenate(
            [np.zeros(history_bits, dtype=np.int64), taken_bits]
        )
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, history_bits
        )[:n]
        # Window column j holds outcome k-history_bits+j, i.e. history
        # bit history_bits-1-j.
        weights = np.left_shift(
            np.int64(1), np.arange(history_bits - 1, -1, -1, dtype=np.int64)
        )
        history = windows @ weights
    else:
        history = np.zeros(n, dtype=np.int64)
    index = ((pcs >> 2) ^ history) & entry_mask

    # Stable sort groups each table entry's accesses in program order.
    order = np.argsort(index, kind="stable")
    grouped = index[order]
    taken_sorted = outcomes[order]

    # Each step is f(x) = min(3, max(0, x + step)): triple (a=0, b=3, d).
    a = np.zeros(n, dtype=np.int64)
    b = np.full(n, 3, dtype=np.int64)
    d = np.where(taken_sorted, 1, -1).astype(np.int64)
    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = grouped[1:] != grouped[:-1]

    flag = seg_start.copy()
    off = 1
    while off < n:
        prev_a, prev_b, prev_d = a[:-off], b[:-off], d[:-off]
        cur_a, cur_b, cur_d = a[off:], b[off:], d[off:]
        can = ~flag[off:]
        comp_a = np.where(can, np.maximum(cur_a, prev_a + cur_d), cur_a)
        comp_b = np.where(
            can, np.minimum(cur_b, np.maximum(cur_a, prev_b + cur_d)), cur_b
        )
        comp_d = np.where(can, prev_d + cur_d, cur_d)
        a[off:] = comp_a
        b[off:] = comp_b
        d[off:] = comp_d
        flag[off:] = flag[off:] | flag[:-off]
        off <<= 1

    # Counter value *before* access k: exclusive prefix applied to the
    # initial weakly-taken state (2).
    state = np.empty(n, dtype=np.int64)
    state[0] = 2
    applied = np.minimum(b[:-1], np.maximum(a[:-1], 2 + d[:-1]))
    state[1:] = np.where(seg_start[1:], 2, applied)

    mis_sorted = (state >= 2) != taken_sorted
    mispredicted = np.empty(n, dtype=bool)
    mispredicted[order] = mis_sorted
    mispredicts = int(np.count_nonzero(mispredicted[warmup:]))
    return mispredicts, n - warmup


def icache_event_key(core: CoreConfig) -> tuple:
    """Every core parameter :func:`simulate_icache` reads."""
    return (
        core.l1i.num_sets,
        core.l1i.assoc,
        core.l1i.line_bytes,
        core.l2.size_bytes,
        core.l2.line_bytes,
        core.l2.num_sets,
        core.l2.assoc,
    )


def simulate_icache(
    core: CoreConfig, code_bytes: int, iterations: int
) -> tuple[int, int, int]:
    """(l1i hits, l1i misses, l2-side code misses) for the window."""
    num_lines = max(1, code_bytes // core.l1i.line_bytes)
    hits, misses = cyclic_code_hits(
        num_lines, core.l1i.num_sets, core.l1i.assoc, iterations
    )
    # The loop's code always fits somewhere up the hierarchy; L2-side
    # code misses only occur if the code exceeds the L2 too.
    l2_lines_capacity = core.l2.size_bytes // core.l2.line_bytes
    if num_lines > l2_lines_capacity:
        _, l2_misses = cyclic_code_hits(
            num_lines,
            core.l2.num_sets,
            core.l2.assoc,
            iterations,
        )
    else:
        l2_misses = 0
    return hits, misses, l2_misses
