"""Stage 1 of the simulator pipeline: shared per-program trace artifacts.

Every :meth:`Simulator.run` used to re-expand the dynamic trace and
re-analyze the dependency graph from scratch, even when the same program
was evaluated under several core configs (sensitivity / stress /
bottleneck sweeps, simpoint cloning) or by several platforms at once.
A :class:`TraceArtifact` computes the program-derived work once per
(program fingerprint, instruction budget) and memoizes every
core-dependent stage under a key of exactly the core parameters that
stage reads (see :mod:`repro.sim.events`), so a batch of core configs
shares all the work their parameters cannot distinguish:

* the expanded dynamic trace, per (iterations, line size);
* the dependency-graph critical path, per L1D hit latency;
* the stream wrap count, per L2 capacity;
* cache / branch / TLB / I-cache event simulations, per the geometry
  and predictor parameters each one consumes.

Artifacts are held in a bounded :class:`TraceArtifactCache` (LRU); the
module-level :func:`artifact_for` uses a process-wide cache shared by
``Simulator.run_many`` and ``CompositePlatform``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.isa.instructions import InstrClass
from repro.isa.program import Program
from repro.sim import events
from repro.sim.config import CoreConfig
from repro.sim.depgraph import critical_path_per_iteration
from repro.sim.trace import ExpandedTrace, expand

#: Upper bound on the adaptive warmup (loop iterations), keeping
#: worst-case evaluation cost bounded.  Streams that cannot wrap within
#: this many iterations behave identically cold or warm (they stream
#: through caches far smaller than their footprint).
MAX_WARMUP_ITERATIONS = 400
#: Measured-window bounds (loop iterations).  The generated loops are
#: periodic, so a short steady-state window yields exact rates.
MIN_MEASURE_ITERATIONS = 24
MAX_MEASURE_ITERATIONS = 160

#: Identity of the trace-expansion / artifact semantics.  Bump when a
#: change makes artifacts (and therefore metrics) non-bit-identical to
#: earlier versions; persistent result caches record it per entry and
#: treat a mismatch as a miss.
#:
#: v2: warmup-accounting fixes in :mod:`repro.sim.events` (clamped
#: warmup boundaries, warmup prefetch-hit leakage) changed event counts,
#: and memoized stage-2 results are now keyed by the engine that
#: produced them — v1 artifacts and result-cache entries must not be
#: reused.
TRACE_SCHEMA = "trace-artifact-v2"


def trace_schema_fingerprint() -> str:
    """Short stable hash of the active trace schema."""
    return hashlib.sha256(TRACE_SCHEMA.encode()).hexdigest()[:12]


def program_fingerprint(program: Program) -> str:
    """Stable content hash of everything the simulator reads.

    Two programs with equal fingerprints expand to bit-identical traces
    and dependency graphs, so they can share one
    :class:`TraceArtifact`.  The hash covers the full instruction stream
    (operands, addresses, declarative memory/branch behaviour) plus the
    metadata keys the timing model consumes.
    """
    hasher = hashlib.sha256()
    hasher.update(f"entry={program.entry_address};".encode())
    meta = program.metadata
    hasher.update(
        (
            f"code_bytes={meta.get('code_bytes')};"
            f"dep={meta.get('dependency_distance')};"
            f"streams={len(meta.get('memory_streams') or [])};"
        ).encode()
    )
    for instr in program.body:
        mem = instr.memory
        mem_sig = (
            (mem.stream_id, mem.base, mem.footprint, mem.stride,
             mem.reuse_count, mem.reuse_period, mem.phase, mem.step)
            if mem is not None
            else None
        )
        br = instr.branch
        br_sig = (
            (br.pattern, br.random_ratio, br.seed, br.taken_bias)
            if br is not None
            else None
        )
        hasher.update(
            repr(
                (
                    instr.idef.mnemonic,
                    instr.idef.latency,
                    instr.iclass.value,
                    tuple(r.name for r in instr.dests),
                    tuple(r.name for r in instr.srcs),
                    instr.immediate,
                    instr.address,
                    mem_sig,
                    br_sig,
                )
            ).encode()
        )
    return hasher.hexdigest()[:32]


@dataclass
class TraceArtifact:
    """Everything one (program, instruction budget) pair shares.

    Build with :meth:`TraceArtifact.build` (which validates the program
    once) or fetch from a :class:`TraceArtifactCache`.  The accessor
    methods memoize per core-parameter key, so calling them for many
    core configs only pays for the distinct parameter combinations.
    """

    program: Program
    fingerprint: str
    instructions: int
    loop_size: int
    budget_iters: int
    mem_per_iter: int
    br_per_iter: int
    static_counts: dict[InstrClass, int]
    group_fractions: dict[str, float]
    code_bytes: int
    dependency_distance: float
    parallel_streams: int
    _traces: dict[tuple, ExpandedTrace] = field(
        default_factory=dict, repr=False
    )
    _wrap: dict[tuple, int] = field(default_factory=dict, repr=False)
    _dep: dict[tuple, float] = field(default_factory=dict, repr=False)
    _schedules: dict[tuple, tuple[int, int]] = field(
        default_factory=dict, repr=False
    )
    _memory: dict[tuple, events.MemoryEvents] = field(
        default_factory=dict, repr=False
    )
    _branches: dict[tuple, tuple[int, int]] = field(
        default_factory=dict, repr=False
    )
    _icache: dict[tuple, tuple[int, int, int]] = field(
        default_factory=dict, repr=False
    )

    @classmethod
    def build(
        cls,
        program: Program,
        instructions: int,
        fingerprint: str | None = None,
    ) -> "TraceArtifact":
        """Characterize ``program`` once for the given budget."""
        with obs.span("trace.build"):
            return cls._build(program, instructions, fingerprint)

    @classmethod
    def _build(
        cls,
        program: Program,
        instructions: int,
        fingerprint: str | None,
    ) -> "TraceArtifact":
        program.validate()
        loop = len(program)
        meta = program.metadata
        return cls(
            program=program,
            fingerprint=fingerprint or program_fingerprint(program),
            instructions=instructions,
            loop_size=loop,
            budget_iters=max(2, round(instructions / loop)),
            mem_per_iter=len(program.memory_instructions()),
            br_per_iter=len(program.branch_instructions()),
            static_counts=program.class_counts(),
            group_fractions=program.group_fractions(),
            code_bytes=meta.get("code_bytes", loop * 4),
            dependency_distance=float(meta.get("dependency_distance", 4)),
            parallel_streams=max(1, len(meta.get("memory_streams") or [])),
        )

    # -- stage 1: program-derived, core-parameter-keyed ------------------

    def trace(self, iterations: int, line_bytes: int) -> ExpandedTrace:
        """The expanded dynamic trace, shared across equal windows."""
        key = (iterations, line_bytes)
        trace = self._traces.get(key)
        if trace is None:
            trace = expand(self.program, iterations, line_bytes=line_bytes)
            self._traces[key] = trace
        return trace

    def wrap_iterations(self, core: CoreConfig) -> int:
        """Iterations until the slowest relevant stream wraps once."""
        key = (core.l2.size_bytes,)
        wrap = self._wrap.get(key)
        if wrap is None:
            wrap = 0
            for instr in self.program.memory_instructions():
                mem = instr.memory
                if mem is None or mem.step <= 0:
                    continue
                # Footprints beyond ~1.2x the L2 stream cold or warm.
                if mem.footprint > 1.2 * core.l2.size_bytes:
                    continue
                distinct_per_sweep = max(1, mem.footprint // mem.stride)
                distinct_per_iter = max(1, mem.step // mem.reuse_period)
                wrap = max(
                    wrap, int(distinct_per_sweep / distinct_per_iter) + 1
                )
            self._wrap[key] = wrap
        return wrap

    def schedule(
        self, core: CoreConfig, warmup_fraction: float
    ) -> tuple[int, int]:
        """(warmup iterations, measured iterations) for one core.

        Mid-sized footprints (bigger than L1, not much bigger than L2)
        only reach cache steady state after the streams wrap; the warmup
        extends so they wrap once, then a short periodic window is
        measured.  Footprints far beyond the L2 behave identically cold
        or warm (both stream), so the budget is not wasted on them.
        """
        key = (core.l2.size_bytes, warmup_fraction)
        cached = self._schedules.get(key)
        if cached is not None:
            return cached
        wrap = self.wrap_iterations(core)
        if wrap:
            warmup_iters = min(
                max(int(1.05 * wrap) + 1,
                    int(self.budget_iters * warmup_fraction)),
                MAX_WARMUP_ITERATIONS,
            )
        else:
            warmup_iters = max(1, int(self.budget_iters * warmup_fraction))
        measure_iters = min(
            max(MIN_MEASURE_ITERATIONS, self.budget_iters - warmup_iters),
            MAX_MEASURE_ITERATIONS,
        )
        self._schedules[key] = (warmup_iters, measure_iters)
        return warmup_iters, measure_iters

    def dep_cycles(self, core: CoreConfig) -> float:
        """Steady-state critical-path cycles added per loop iteration."""
        key = (core.l1d.latency,)
        dep = self._dep.get(key)
        if dep is None:
            dep = critical_path_per_iteration(self.program, core)
            self._dep[key] = dep
        return dep

    # -- stage 2: per-core event simulations, memoized -------------------

    def memory_events(
        self,
        core: CoreConfig,
        warmup_iters: int,
        iterations: int,
        engine: str | None = None,
    ) -> events.MemoryEvents:
        """Cache/TLB/prefetch events; shared across equal hierarchies.

        Memo keys carry the resolved engine stamp: engines are
        bit-identical, but keeping their entries distinct means a
        persisted artifact can never satisfy a lookup with a result
        produced under different engine semantics (and lets property
        tests hold both engines' results side by side).
        """
        engine = events.resolve_engine(engine)
        key = (
            (engine,) + events.memory_event_key(core)
            + (warmup_iters, iterations)
        )
        res = self._memory.get(key)
        if res is None:
            with obs.span("events.memory"):
                trace = self.trace(iterations, core.l1d.line_bytes)
                res = events.simulate_memory(
                    core, trace, warmup_iters * self.mem_per_iter,
                    engine=engine,
                )
            self._memory[key] = res
        return res

    def branch_events(
        self,
        core: CoreConfig,
        warmup_iters: int,
        iterations: int,
        engine: str | None = None,
    ) -> tuple[int, int]:
        """(mispredicts, lookups); shared across equal predictors."""
        engine = events.resolve_engine(engine)
        key = (
            (engine,) + events.branch_event_key(core)
            + (warmup_iters, iterations)
        )
        res = self._branches.get(key)
        if res is None:
            # Branch outcomes are independent of the cache line size, so
            # any trace with the right window length serves.
            with obs.span("events.branch"):
                trace = self.trace(iterations, core.l1d.line_bytes)
                res = events.simulate_branches(
                    core, trace, warmup_iters * self.br_per_iter,
                    engine=engine,
                )
            self._branches[key] = res
        return res

    def memory_events_batch(
        self,
        cores: list[CoreConfig],
        warmup_iters_list: list[int],
        iterations_list: list[int],
        engine: str | None = None,
    ) -> list[events.MemoryEvents]:
        """Config-batched :meth:`memory_events`: one call fills the memo
        for a whole core sweep.

        Cores still missing from the memo are grouped per trace window
        (iterations, line size) and handed to
        :func:`repro.sim.events.simulate_memory_batch`, which dedupes by
        event key and shares precomputed trace columns (set indices,
        LRU recency ranks, ...) across the group.  Memo contents end up
        identical to per-core calls — batching only changes when the
        work happens, never what is stored.
        """
        engine = events.resolve_engine(engine)
        keys = [
            (engine,) + events.memory_event_key(core) + (warmup, iters)
            for core, warmup, iters in zip(
                cores, warmup_iters_list, iterations_list
            )
        ]
        groups: dict[tuple, list[int]] = {}
        for i, (core, key) in enumerate(zip(cores, keys)):
            if key not in self._memory:
                groups.setdefault(
                    (iterations_list[i], core.l1d.line_bytes), []
                ).append(i)
        for (iterations, line_bytes), slots in groups.items():
            with obs.span("events.memory.batch"):
                trace = self.trace(iterations, line_bytes)
                batch = events.simulate_memory_batch(
                    [cores[i] for i in slots],
                    trace,
                    [warmup_iters_list[i] * self.mem_per_iter
                     for i in slots],
                    engine=engine,
                )
            for i, res in zip(slots, batch):
                self._memory[keys[i]] = res
        return [self._memory[key] for key in keys]

    def branch_events_batch(
        self,
        cores: list[CoreConfig],
        warmup_iters_list: list[int],
        iterations_list: list[int],
        engine: str | None = None,
    ) -> list[tuple[int, int]]:
        """Config-batched :meth:`branch_events` (same contract as
        :meth:`memory_events_batch`): distinct predictors in the batch
        share packed histories and ride stacked counter scans."""
        engine = events.resolve_engine(engine)
        keys = [
            (engine,) + events.branch_event_key(core) + (warmup, iters)
            for core, warmup, iters in zip(
                cores, warmup_iters_list, iterations_list
            )
        ]
        groups: dict[tuple, list[int]] = {}
        for i, (core, key) in enumerate(zip(cores, keys)):
            if key not in self._branches:
                groups.setdefault(
                    (iterations_list[i], core.l1d.line_bytes), []
                ).append(i)
        for (iterations, line_bytes), slots in groups.items():
            with obs.span("events.branch.batch"):
                trace = self.trace(iterations, line_bytes)
                batch = events.simulate_branches_batch(
                    [cores[i] for i in slots],
                    trace,
                    [warmup_iters_list[i] * self.br_per_iter
                     for i in slots],
                    engine=engine,
                )
            for i, res in zip(slots, batch):
                self._branches[keys[i]] = res
        return [self._branches[key] for key in keys]

    def icache_events(
        self, core: CoreConfig, measure_iters: int,
        engine: str | None = None,
    ) -> tuple[int, int, int]:
        """(l1i hits, l1i misses, l2-side code misses) for the window.

        Memo keys carry the resolved engine stamp like the memory and
        branch memos do — the engines are bit-identical, the stamp just
        keeps their entries distinct in persisted artifacts.
        """
        engine = events.resolve_engine(engine)
        key = (engine,) + events.icache_event_key(core) + (measure_iters,)
        res = self._icache.get(key)
        if res is None:
            with obs.span("events.icache"):
                res = events.simulate_icache(
                    core, self.code_bytes, measure_iters, engine=engine
                )
            self._icache[key] = res
        return res

    def icache_events_batch(
        self,
        cores: list[CoreConfig],
        measure_iters_list: list[int],
        engine: str | None = None,
    ) -> list[tuple[int, int, int]]:
        """Config-batched :meth:`icache_events` (same contract as
        :meth:`memory_events_batch`).  The icache model reads only the
        code footprint — no trace window — so all memo misses go to
        :func:`repro.sim.events.simulate_icache_batch` in one group."""
        engine = events.resolve_engine(engine)
        keys = [
            (engine,) + events.icache_event_key(core) + (iters,)
            for core, iters in zip(cores, measure_iters_list)
        ]
        slots = [i for i, key in enumerate(keys) if key not in self._icache]
        if slots:
            with obs.span("events.icache.batch"):
                batch = events.simulate_icache_batch(
                    [cores[i] for i in slots],
                    self.code_bytes,
                    [measure_iters_list[i] for i in slots],
                    engine=engine,
                )
            for i, res in zip(slots, batch):
                self._icache[keys[i]] = res
        return [self._icache[key] for key in keys]

    def memo_count(self) -> int:
        """Total memoized stage results (cheap dirty check for stores)."""
        return (
            len(self._traces) + len(self._wrap) + len(self._dep)
            + len(self._schedules) + len(self._memory)
            + len(self._branches) + len(self._icache)
        )


class DiskArtifactStore:
    """Shared on-disk store of :class:`TraceArtifact` pickles.

    Worker processes (process pools, distributed workers, repeated CLI
    runs) each used to rebuild every trace artifact from scratch; a
    store shared through a common directory makes the cluster compute
    each artifact — including its memoized event-simulation stages —
    **once**, with everyone else loading the pickle.

    Layout: ``root/<schema fingerprint>/<program fingerprint>-<budget>.pkl``.
    The schema directory stamps every entry with the trace-artifact
    semantics that produced it; after a semantics bump, old entries are
    simply never looked at (and compaction of the active schema keeps
    the store bounded).  Writes are atomic (temp + rename), so two
    processes racing to store the same fingerprint can only ever publish
    equivalent bytes — last writer wins, both entries are valid.

    Args:
        root: store directory (created if missing).
        max_entries: optional cap on entries *within the active schema*;
            least-recently-used pickles (by file mtime — hits re-touch)
            are compacted away once exceeded.
        schema: trace-semantics stamp; defaults to the fingerprint of
            the running :data:`TRACE_SCHEMA`.
    """

    def __init__(
        self,
        root: str | Path,
        max_entries: int | None = None,
        schema: str | None = None,
    ):
        self.root = Path(root)
        self.schema = schema or trace_schema_fingerprint()
        self.dir = self.root / self.schema
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ValueError(
                f"artifact store root {str(self.root)!r} is not usable"
            ) from exc
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._puts_since_compact = 0
        self.set_max_entries(max_entries)

    def set_max_entries(self, max_entries: int | None) -> None:
        """(Re)apply an entry cap, compacting immediately if needed."""
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.max_entries = max_entries
        # Same amortization as DiskResultCache: a glob per put is
        # O(entries), so compact every few writes.
        self._compact_interval = (
            min(64, max(1, max_entries // 8)) if max_entries else 0
        )
        if max_entries is not None:
            self.compact()

    def _path(self, fingerprint: str, instructions: int) -> Path:
        return self.dir / f"{fingerprint}-{instructions}.pkl"

    def get(self, fingerprint: str, instructions: int) -> TraceArtifact | None:
        """Load the stored artifact for a key; ``None`` on any miss.

        Unreadable or truncated pickles (a concurrent writer mid-publish
        cannot cause this — renames are atomic — but a copied or damaged
        store can) count as misses rather than errors.
        """
        path = self._path(fingerprint, instructions)
        try:
            artifact = pickle.loads(path.read_bytes())
        except Exception:
            self.misses += 1
            obs.inc("cache.artifact.misses")
            return None
        if (
            not isinstance(artifact, TraceArtifact)
            or artifact.fingerprint != fingerprint
            or artifact.instructions != instructions
        ):
            self.misses += 1
            obs.inc("cache.artifact.misses")
            return None
        try:
            # Hit: refresh recency so LRU compaction spares it.
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        obs.inc("cache.artifact.hits")
        return artifact

    def put(self, artifact: TraceArtifact) -> None:
        """Persist one artifact (atomic; best-effort on full disks)."""
        path = self._path(artifact.fingerprint, artifact.instructions)
        try:
            fd, tmp = tempfile.mkstemp(dir=self.dir, suffix=".tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(artifact, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            # Best-effort by design: full disks, unpicklable injected
            # state, or a thread memoizing into the artifact mid-dump
            # (dict-changed-size) must never fail the evaluation itself.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        if self.max_entries is not None:
            self._puts_since_compact += 1
            if self._puts_since_compact >= self._compact_interval:
                self._puts_since_compact = 0
                self.compact()

    def compact(self) -> int:
        """Evict least-recently-used entries beyond ``max_entries``."""
        if self.max_entries is None:
            return 0
        entries = []
        for path in self.dir.glob("*.pkl"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return 0
        entries.sort(key=lambda pair: pair[0])
        removed = 0
        for _, path in entries[:excess]:
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        self.evictions += removed
        obs.inc("cache.artifact.evictions", removed)
        return removed

    def recent(self, limit: int = 8) -> list[TraceArtifact]:
        """The newest stored artifacts, most recent first.

        This is the prefetch seed: a client session opening against a
        persistent cluster pushes these to the coordinator before its
        first dispatch, so the sweep's working set is warm on every
        worker before any of them traces a program.  Unreadable pickles
        are skipped, like :meth:`get` misses.
        """
        if limit < 1:
            return []
        entries = []
        for path in self.dir.glob("*.pkl"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue
        entries.sort(key=lambda pair: pair[0], reverse=True)
        artifacts: list[TraceArtifact] = []
        for _, path in entries:
            if len(artifacts) >= limit:
                break
            try:
                artifact = pickle.loads(path.read_bytes())
            except Exception:
                continue
            if isinstance(artifact, TraceArtifact):
                artifacts.append(artifact)
        return artifacts

    def __len__(self) -> int:
        return sum(1 for _ in self.dir.glob("*.pkl"))


#: Process-wide store attached by :func:`attach_artifact_store`; every
#: ``TraceArtifactCache`` built without an explicit ``store=`` consults
#: it, so one call wires instance caches and the global cache alike.
_ACTIVE_STORE: DiskArtifactStore | None = None

#: Sentinel: "use whatever store is attached process-wide".
_INHERIT = object()


def attach_artifact_store(
    root: str | Path, max_entries: int | None = None
) -> DiskArtifactStore:
    """Attach a process-wide on-disk artifact store rooted at ``root``.

    Idempotent per root: re-attaching the same directory keeps the
    existing store (and its hit/miss counters), though an explicit
    ``max_entries`` is re-applied so a newly requested cap takes effect.
    Execution backends call this in every worker when a ``cache_dir`` is
    configured, and the ``repro.cli worker`` subcommand calls it at
    startup, so one ``cache_dir=`` setting wires the whole cluster.
    """
    global _ACTIVE_STORE
    root = Path(root)
    if _ACTIVE_STORE is not None and _ACTIVE_STORE.root == root:
        if max_entries is not None \
                and max_entries != _ACTIVE_STORE.max_entries:
            _ACTIVE_STORE.set_max_entries(max_entries)
        return _ACTIVE_STORE
    _ACTIVE_STORE = DiskArtifactStore(root, max_entries=max_entries)
    return _ACTIVE_STORE


def detach_artifact_store() -> None:
    """Detach the process-wide store (tests, teardown)."""
    global _ACTIVE_STORE
    _ACTIVE_STORE = None


def active_artifact_store() -> DiskArtifactStore | None:
    """The store attached by :func:`attach_artifact_store`, if any."""
    return _ACTIVE_STORE


class TraceArtifactCache:
    """Bounded LRU cache of artifacts keyed by (fingerprint, budget).

    Thread-safe: ``ThreadBackend`` workers share platform simulators
    (and the process-wide cache), so lookup, LRU bookkeeping and
    eviction are serialized under a lock.  Artifacts are built under
    the lock too — a build is a one-time cost per (program, budget) and
    racing duplicate builds would waste exactly the work this cache
    exists to share.
    """

    #: Lock discipline, enforced by the ``lock-discipline`` checker of
    #: :mod:`repro.analysis`.  ``hits``/``misses`` are deliberately
    #: unguarded: they are only *written* under the lock, and external
    #: readers tolerate a stale count (they are statistics, not state).
    GUARDED_BY = {
        "_entries": "_lock",
        "_persisted": "_lock",
    }

    def __init__(self, maxsize: int = 16, store=_INHERIT):
        if maxsize < 1:
            raise ValueError("artifact cache needs maxsize >= 1")
        self.maxsize = maxsize
        self._store = store
        self._entries: OrderedDict[tuple, TraceArtifact] = OrderedDict()
        self._persisted: dict[tuple, int] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def store(self) -> DiskArtifactStore | None:
        """This cache's on-disk store (process-wide one by default)."""
        if self._store is _INHERIT:
            return _ACTIVE_STORE
        return self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._persisted.clear()

    def get_or_build(
        self, program: Program, instructions: int
    ) -> TraceArtifact:
        """Fetch the artifact for (program content, budget), building on miss.

        Misses consult the attached :class:`DiskArtifactStore` (when one
        is configured) before building, so sibling processes sharing a
        store directory build each artifact once between them.
        """
        key = (program_fingerprint(program), instructions)
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return artifact
            self.misses += 1
            store = self.store
            if store is not None:
                artifact = store.get(*key)
                if artifact is not None:
                    self._persisted[key] = artifact.memo_count()
            if artifact is None:
                artifact = TraceArtifact.build(
                    program, instructions, fingerprint=key[0]
                )
            self._entries[key] = artifact
            while len(self._entries) > self.maxsize:
                dropped_key, _ = self._entries.popitem(last=False)
                self._persisted.pop(dropped_key, None)
            return artifact

    def persist(self, artifact: TraceArtifact) -> bool:
        """Write ``artifact`` (with its memoized stages) to the store.

        Called after an evaluation pass so the store captures the event
        simulations memoized during it, not just the freshly built
        shell.  No-op without a store or when nothing new was memoized
        since the last persist.  Returns whether a write happened.
        """
        store = self.store
        if store is None:
            return False
        key = (artifact.fingerprint, artifact.instructions)
        with self._lock:
            memos = artifact.memo_count()
            if self._persisted.get(key) == memos:
                return False
            self._persisted[key] = memos
        store.put(artifact)
        return True


#: Process-wide artifact cache: ``Simulator.run_many`` and
#: ``CompositePlatform`` share trace work through it by default.
GLOBAL_ARTIFACT_CACHE = TraceArtifactCache(maxsize=32)


def artifact_for(
    program: Program,
    instructions: int,
    cache: TraceArtifactCache | None = None,
) -> TraceArtifact:
    """The shared artifact for (program, budget), via ``cache`` or the
    process-wide default."""
    # Explicit None check: an *empty* cache is falsy (``__len__``), and
    # ``cache or GLOBAL`` would silently bypass a fresh instance cache.
    if cache is None:
        cache = GLOBAL_ARTIFACT_CACHE
    return cache.get_or_build(program, instructions)
