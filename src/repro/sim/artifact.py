"""Stage 1 of the simulator pipeline: shared per-program trace artifacts.

Every :meth:`Simulator.run` used to re-expand the dynamic trace and
re-analyze the dependency graph from scratch, even when the same program
was evaluated under several core configs (sensitivity / stress /
bottleneck sweeps, simpoint cloning) or by several platforms at once.
A :class:`TraceArtifact` computes the program-derived work once per
(program fingerprint, instruction budget) and memoizes every
core-dependent stage under a key of exactly the core parameters that
stage reads (see :mod:`repro.sim.events`), so a batch of core configs
shares all the work their parameters cannot distinguish:

* the expanded dynamic trace, per (iterations, line size);
* the dependency-graph critical path, per L1D hit latency;
* the stream wrap count, per L2 capacity;
* cache / branch / TLB / I-cache event simulations, per the geometry
  and predictor parameters each one consumes.

Artifacts are held in a bounded :class:`TraceArtifactCache` (LRU); the
module-level :func:`artifact_for` uses a process-wide cache shared by
``Simulator.run_many`` and ``CompositePlatform``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.isa.instructions import InstrClass
from repro.isa.program import Program
from repro.sim import events
from repro.sim.config import CoreConfig
from repro.sim.depgraph import critical_path_per_iteration
from repro.sim.trace import ExpandedTrace, expand

#: Upper bound on the adaptive warmup (loop iterations), keeping
#: worst-case evaluation cost bounded.  Streams that cannot wrap within
#: this many iterations behave identically cold or warm (they stream
#: through caches far smaller than their footprint).
MAX_WARMUP_ITERATIONS = 400
#: Measured-window bounds (loop iterations).  The generated loops are
#: periodic, so a short steady-state window yields exact rates.
MIN_MEASURE_ITERATIONS = 24
MAX_MEASURE_ITERATIONS = 160

#: Identity of the trace-expansion / artifact semantics.  Bump when a
#: change makes artifacts (and therefore metrics) non-bit-identical to
#: earlier versions; persistent result caches record it per entry and
#: treat a mismatch as a miss.
TRACE_SCHEMA = "trace-artifact-v1"


def trace_schema_fingerprint() -> str:
    """Short stable hash of the active trace schema."""
    return hashlib.sha256(TRACE_SCHEMA.encode()).hexdigest()[:12]


def program_fingerprint(program: Program) -> str:
    """Stable content hash of everything the simulator reads.

    Two programs with equal fingerprints expand to bit-identical traces
    and dependency graphs, so they can share one
    :class:`TraceArtifact`.  The hash covers the full instruction stream
    (operands, addresses, declarative memory/branch behaviour) plus the
    metadata keys the timing model consumes.
    """
    hasher = hashlib.sha256()
    hasher.update(f"entry={program.entry_address};".encode())
    meta = program.metadata
    hasher.update(
        (
            f"code_bytes={meta.get('code_bytes')};"
            f"dep={meta.get('dependency_distance')};"
            f"streams={len(meta.get('memory_streams') or [])};"
        ).encode()
    )
    for instr in program.body:
        mem = instr.memory
        mem_sig = (
            (mem.stream_id, mem.base, mem.footprint, mem.stride,
             mem.reuse_count, mem.reuse_period, mem.phase, mem.step)
            if mem is not None
            else None
        )
        br = instr.branch
        br_sig = (
            (br.pattern, br.random_ratio, br.seed, br.taken_bias)
            if br is not None
            else None
        )
        hasher.update(
            repr(
                (
                    instr.idef.mnemonic,
                    instr.idef.latency,
                    instr.iclass.value,
                    tuple(r.name for r in instr.dests),
                    tuple(r.name for r in instr.srcs),
                    instr.immediate,
                    instr.address,
                    mem_sig,
                    br_sig,
                )
            ).encode()
        )
    return hasher.hexdigest()[:32]


@dataclass
class TraceArtifact:
    """Everything one (program, instruction budget) pair shares.

    Build with :meth:`TraceArtifact.build` (which validates the program
    once) or fetch from a :class:`TraceArtifactCache`.  The accessor
    methods memoize per core-parameter key, so calling them for many
    core configs only pays for the distinct parameter combinations.
    """

    program: Program
    fingerprint: str
    instructions: int
    loop_size: int
    budget_iters: int
    mem_per_iter: int
    br_per_iter: int
    static_counts: dict[InstrClass, int]
    group_fractions: dict[str, float]
    code_bytes: int
    dependency_distance: float
    parallel_streams: int
    _traces: dict[tuple, ExpandedTrace] = field(
        default_factory=dict, repr=False
    )
    _wrap: dict[tuple, int] = field(default_factory=dict, repr=False)
    _dep: dict[tuple, float] = field(default_factory=dict, repr=False)
    _schedules: dict[tuple, tuple[int, int]] = field(
        default_factory=dict, repr=False
    )
    _memory: dict[tuple, events.MemoryEvents] = field(
        default_factory=dict, repr=False
    )
    _branches: dict[tuple, tuple[int, int]] = field(
        default_factory=dict, repr=False
    )
    _icache: dict[tuple, tuple[int, int, int]] = field(
        default_factory=dict, repr=False
    )

    @classmethod
    def build(
        cls,
        program: Program,
        instructions: int,
        fingerprint: str | None = None,
    ) -> "TraceArtifact":
        """Characterize ``program`` once for the given budget."""
        program.validate()
        loop = len(program)
        meta = program.metadata
        return cls(
            program=program,
            fingerprint=fingerprint or program_fingerprint(program),
            instructions=instructions,
            loop_size=loop,
            budget_iters=max(2, round(instructions / loop)),
            mem_per_iter=len(program.memory_instructions()),
            br_per_iter=len(program.branch_instructions()),
            static_counts=program.class_counts(),
            group_fractions=program.group_fractions(),
            code_bytes=meta.get("code_bytes", loop * 4),
            dependency_distance=float(meta.get("dependency_distance", 4)),
            parallel_streams=max(1, len(meta.get("memory_streams") or [])),
        )

    # -- stage 1: program-derived, core-parameter-keyed ------------------

    def trace(self, iterations: int, line_bytes: int) -> ExpandedTrace:
        """The expanded dynamic trace, shared across equal windows."""
        key = (iterations, line_bytes)
        trace = self._traces.get(key)
        if trace is None:
            trace = expand(self.program, iterations, line_bytes=line_bytes)
            self._traces[key] = trace
        return trace

    def wrap_iterations(self, core: CoreConfig) -> int:
        """Iterations until the slowest relevant stream wraps once."""
        key = (core.l2.size_bytes,)
        wrap = self._wrap.get(key)
        if wrap is None:
            wrap = 0
            for instr in self.program.memory_instructions():
                mem = instr.memory
                if mem is None or mem.step <= 0:
                    continue
                # Footprints beyond ~1.2x the L2 stream cold or warm.
                if mem.footprint > 1.2 * core.l2.size_bytes:
                    continue
                distinct_per_sweep = max(1, mem.footprint // mem.stride)
                distinct_per_iter = max(1, mem.step // mem.reuse_period)
                wrap = max(
                    wrap, int(distinct_per_sweep / distinct_per_iter) + 1
                )
            self._wrap[key] = wrap
        return wrap

    def schedule(
        self, core: CoreConfig, warmup_fraction: float
    ) -> tuple[int, int]:
        """(warmup iterations, measured iterations) for one core.

        Mid-sized footprints (bigger than L1, not much bigger than L2)
        only reach cache steady state after the streams wrap; the warmup
        extends so they wrap once, then a short periodic window is
        measured.  Footprints far beyond the L2 behave identically cold
        or warm (both stream), so the budget is not wasted on them.
        """
        key = (core.l2.size_bytes, warmup_fraction)
        cached = self._schedules.get(key)
        if cached is not None:
            return cached
        wrap = self.wrap_iterations(core)
        if wrap:
            warmup_iters = min(
                max(int(1.05 * wrap) + 1,
                    int(self.budget_iters * warmup_fraction)),
                MAX_WARMUP_ITERATIONS,
            )
        else:
            warmup_iters = max(1, int(self.budget_iters * warmup_fraction))
        measure_iters = min(
            max(MIN_MEASURE_ITERATIONS, self.budget_iters - warmup_iters),
            MAX_MEASURE_ITERATIONS,
        )
        self._schedules[key] = (warmup_iters, measure_iters)
        return warmup_iters, measure_iters

    def dep_cycles(self, core: CoreConfig) -> float:
        """Steady-state critical-path cycles added per loop iteration."""
        key = (core.l1d.latency,)
        dep = self._dep.get(key)
        if dep is None:
            dep = critical_path_per_iteration(self.program, core)
            self._dep[key] = dep
        return dep

    # -- stage 2: per-core event simulations, memoized -------------------

    def memory_events(
        self, core: CoreConfig, warmup_iters: int, iterations: int
    ) -> events.MemoryEvents:
        """Cache/TLB/prefetch events; shared across equal hierarchies."""
        key = events.memory_event_key(core) + (warmup_iters, iterations)
        res = self._memory.get(key)
        if res is None:
            trace = self.trace(iterations, core.l1d.line_bytes)
            res = events.simulate_memory(
                core, trace, warmup_iters * self.mem_per_iter
            )
            self._memory[key] = res
        return res

    def branch_events(
        self, core: CoreConfig, warmup_iters: int, iterations: int
    ) -> tuple[int, int]:
        """(mispredicts, lookups); shared across equal predictors."""
        key = events.branch_event_key(core) + (warmup_iters, iterations)
        res = self._branches.get(key)
        if res is None:
            # Branch outcomes are independent of the cache line size, so
            # any trace with the right window length serves.
            trace = self.trace(iterations, core.l1d.line_bytes)
            res = events.simulate_branches(
                core, trace, warmup_iters * self.br_per_iter
            )
            self._branches[key] = res
        return res

    def icache_events(
        self, core: CoreConfig, measure_iters: int
    ) -> tuple[int, int, int]:
        """(l1i hits, l1i misses, l2-side code misses) for the window."""
        key = events.icache_event_key(core) + (measure_iters,)
        res = self._icache.get(key)
        if res is None:
            res = events.simulate_icache(core, self.code_bytes, measure_iters)
            self._icache[key] = res
        return res


class TraceArtifactCache:
    """Bounded LRU cache of artifacts keyed by (fingerprint, budget).

    Thread-safe: ``ThreadBackend`` workers share platform simulators
    (and the process-wide cache), so lookup, LRU bookkeeping and
    eviction are serialized under a lock.  Artifacts are built under
    the lock too — a build is a one-time cost per (program, budget) and
    racing duplicate builds would waste exactly the work this cache
    exists to share.
    """

    def __init__(self, maxsize: int = 16):
        if maxsize < 1:
            raise ValueError("artifact cache needs maxsize >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, TraceArtifact] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def get_or_build(
        self, program: Program, instructions: int
    ) -> TraceArtifact:
        """Fetch the artifact for (program content, budget), building on miss."""
        key = (program_fingerprint(program), instructions)
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return artifact
            self.misses += 1
            artifact = TraceArtifact.build(
                program, instructions, fingerprint=key[0]
            )
            self._entries[key] = artifact
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return artifact


#: Process-wide artifact cache: ``Simulator.run_many`` and
#: ``CompositePlatform`` share trace work through it by default.
GLOBAL_ARTIFACT_CACHE = TraceArtifactCache(maxsize=32)


def artifact_for(
    program: Program,
    instructions: int,
    cache: TraceArtifactCache | None = None,
) -> TraceArtifact:
    """The shared artifact for (program, budget), via ``cache`` or the
    process-wide default."""
    return (cache or GLOBAL_ARTIFACT_CACHE).get_or_build(
        program, instructions
    )
