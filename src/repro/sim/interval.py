"""Interval-analysis timing model.

Combines throughput bounds (front-end width, functional-unit contention,
data-dependency chains) with miss-event penalties (branch mispredicts,
I-cache fills, load/store misses with memory-level-parallelism overlap)
into a cycle count — the standard cycle-approximate substitute for a
detailed out-of-order simulator, preserving Gem5-like sensitivities.

:func:`compute_cycles` evaluates one core; :func:`compute_cycles_batch`
evaluates a whole sweep as numpy column arrays (stage 3 of the staged
pipeline), bit-identical to the scalar path: every arithmetic step is
performed in the same order on the same IEEE-754 doubles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.isa.instructions import InstrClass
from repro.sim.config import CoreConfig

#: Unpipelined units occupy their pipe for several cycles; these factors
#: convert a divide into equivalent issue slots.
DIV_OCCUPANCY = 8.0
FP_DIV_OCCUPANCY = 9.0


@dataclass
class MissProfile:
    """Dynamic miss/mispredict event counts for the measurement window."""

    branch_mispredicts: int = 0
    icache_l1_misses: int = 0
    icache_l2_misses: int = 0
    load_l1_misses: int = 0
    load_l2_misses: int = 0
    store_l1_misses: int = 0
    store_l2_misses: int = 0
    dtlb_misses: int = 0


#: Page-walk latency charged per DTLB miss (cycles).
TLB_WALK_LATENCY = 30.0

#: Throughput-bound names, in the tie-breaking order the binding bound
#: is chosen (first maximal bound wins).
BOUND_NAMES = ("width", "alu", "simd", "fp", "mem_ports")


@dataclass
class IntervalResult:
    """One core's timing-model output.

    Attributes:
        cycles: total cycles for the measurement window.
        breakdown: cycle contribution per component (base + each penalty
            class); purely numeric, so consumers may sum or plot
            ``breakdown.values()`` directly.
        binding_bound: name of the binding throughput bound (one of
            :data:`BOUND_NAMES`, or ``"dependency"`` when the critical
            path dominates).  Kept out of ``breakdown`` so the dict
            stays ``dict[str, float]``.
    """

    cycles: float
    breakdown: dict[str, float]
    binding_bound: str


def effective_mlp(core: CoreConfig, dependency_distance: float,
                  parallel_streams: int = 1) -> float:
    """Memory-level parallelism the window can sustain.

    Independent chains (dependency distance) and distinct streams expose
    parallel misses; the LSQ bounds how many can be outstanding.
    """
    exposed = 1.0 + 0.6 * max(0.0, dependency_distance - 1.0)
    exposed *= max(1, parallel_streams) ** 0.25
    return max(1.0, min(exposed, core.lsq / 4.0))


def throughput_cpi(core: CoreConfig, class_counts: dict[InstrClass, int],
                   total: int) -> dict[str, float]:
    """Per-resource cycles-per-instruction lower bounds."""
    n = max(1, total)
    count = lambda *cs: sum(class_counts.get(c, 0) for c in cs)

    alu_slots = count(InstrClass.INT_ALU, InstrClass.BRANCH, InstrClass.NOP)
    simd_slots = (
        count(InstrClass.INT_MUL) + DIV_OCCUPANCY * count(InstrClass.INT_DIV)
    )
    fp_slots = (
        count(InstrClass.FP_ADD, InstrClass.FP_MUL)
        + FP_DIV_OCCUPANCY * count(InstrClass.FP_DIV)
    )
    mem_slots = count(InstrClass.LOAD, InstrClass.STORE)

    return {
        "width": 1.0 / core.front_end_width,
        "alu": alu_slots / (core.alu_units * n),
        "simd": simd_slots / (core.simd_units * n),
        "fp": fp_slots / (core.fp_units * n),
        "mem_ports": mem_slots / (core.mem_ports * n),
    }


@dataclass
class IntervalInputs:
    """One core's inputs to the batched interval model.

    ``Simulator.run_many`` produces one of these per core config from a
    shared :class:`~repro.sim.artifact.TraceArtifact` (stages 1-2) and
    hands the whole batch to :func:`compute_cycles_batch` (stage 3).
    """

    core: CoreConfig
    total_instructions: int
    class_counts: dict[InstrClass, int]
    dep_cycles_per_iteration: float
    loop_size: int
    misses: MissProfile = field(default_factory=MissProfile)
    dependency_distance: float = 4.0
    parallel_streams: int = 1


def compute_cycles_batch(
    batch: Sequence[IntervalInputs],
) -> list[IntervalResult]:
    """Evaluate a batch of core configs through the interval model.

    The batch is laid out as numpy column arrays — one element per core —
    and every model term is computed as one vector expression, so stage 3
    costs a fixed number of array passes instead of a Python loop over
    cores.  Each result is bit-identical to a lone
    :func:`compute_cycles` call: the vector expressions perform exactly
    the scalar path's operations, in its order, on IEEE-754 doubles.

    Returns:
        One :class:`IntervalResult` per input, in input order.
    """
    if not batch:
        return []
    with obs.span("interval.batch"):
        return _compute_cycles_batch(batch)


def _compute_cycles_batch(
    batch: Sequence[IntervalInputs],
) -> list[IntervalResult]:
    total = np.array(
        [inputs.total_instructions for inputs in batch], dtype=np.int64
    )
    if np.any(total <= 0):
        raise ValueError("total_instructions must be positive")

    cores = [inputs.core for inputs in batch]
    as_i64 = lambda get: np.array([get(c) for c in cores], dtype=np.int64)
    lsq = as_i64(lambda c: c.lsq)
    l1d_latency = as_i64(lambda c: c.l1d.latency)
    l2_latency = as_i64(lambda c: c.l2.latency)
    memory_latency = as_i64(lambda c: c.memory_latency)
    mispredict_penalty = as_i64(lambda c: c.mispredict_penalty)

    # Throughput bounds via the single scalar definition, stacked as one
    # (bound, core) matrix in BOUND_NAMES order (= dict order).
    bounds = np.array([
        list(throughput_cpi(
            inputs.core, inputs.class_counts, inputs.total_instructions
        ).values())
        for inputs in batch
    ]).T
    bounds_max = np.max(bounds, axis=0)
    binding_index = np.argmax(bounds, axis=0)

    dep = np.array(
        [inputs.dep_cycles_per_iteration for inputs in batch],
        dtype=np.float64,
    )
    loop = np.maximum(
        1, np.array([inputs.loop_size for inputs in batch], dtype=np.int64)
    )
    dep_cpi = dep / loop
    base_cpi = np.maximum(bounds_max, dep_cpi)
    base_cycles = total * base_cpi

    dependency_distance = np.array(
        [inputs.dependency_distance for inputs in batch], dtype=np.float64
    )
    exposed = 1.0 + 0.6 * np.maximum(0.0, dependency_distance - 1.0)
    # Scalar pow keeps the fractional-power term bit-identical to the
    # scalar path regardless of numpy's pow implementation.
    exposed = exposed * np.array(
        [max(1, inputs.parallel_streams) ** 0.25 for inputs in batch],
        dtype=np.float64,
    )
    mlp = np.maximum(1.0, np.minimum(exposed, lsq / 4.0))
    l2_fill = np.maximum(0, l2_latency - l1d_latency)

    misses = [inputs.misses for inputs in batch]
    miss = lambda name: np.array(
        [getattr(m, name) for m in misses], dtype=np.int64
    )
    load_stall = (
        miss("load_l1_misses") * l2_fill
        + miss("load_l2_misses") * memory_latency
    ) / mlp
    store_stall = 0.15 * (
        miss("store_l1_misses") * l2_fill
        + miss("store_l2_misses") * memory_latency
    ) / mlp
    branch_stall = miss("branch_mispredicts") * mispredict_penalty
    icache_stall = (
        miss("icache_l1_misses") * l2_latency
        + miss("icache_l2_misses") * memory_latency
    )
    tlb_stall = (
        miss("dtlb_misses") * TLB_WALK_LATENCY / np.maximum(1.0, mlp / 2.0)
    )
    cycles = (base_cycles + load_stall + store_stall + branch_stall
              + icache_stall + tlb_stall)

    dependency_bound = dep_cpi > bounds_max
    return [
        IntervalResult(
            cycles=float(cycles[k]),
            breakdown={
                "base": float(base_cycles[k]),
                "load_miss": float(load_stall[k]),
                "store_miss": float(store_stall[k]),
                "branch_mispredict": int(branch_stall[k]),
                "icache": int(icache_stall[k]),
                "dtlb": float(tlb_stall[k]),
            },
            binding_bound=(
                "dependency" if dependency_bound[k]
                else BOUND_NAMES[binding_index[k]]
            ),
        )
        for k in range(len(batch))
    ]


def compute_cycles(
    core: CoreConfig,
    total_instructions: int,
    class_counts: dict[InstrClass, int],
    dep_cycles_per_iteration: float,
    loop_size: int,
    misses: MissProfile,
    dependency_distance: float = 4.0,
    parallel_streams: int = 1,
) -> IntervalResult:
    """Total cycles for the measurement window, with a breakdown.

    Returns:
        An :class:`IntervalResult`; ``breakdown`` maps component names
        to numeric cycle contributions, and the binding throughput bound
        travels separately in ``binding_bound``.
    """
    if total_instructions <= 0:
        raise ValueError("total_instructions must be positive")

    bounds = throughput_cpi(core, class_counts, total_instructions)
    dep_cpi = dep_cycles_per_iteration / max(1, loop_size)
    base_cpi = max(max(bounds.values()), dep_cpi)
    base_cycles = total_instructions * base_cpi

    mlp = effective_mlp(core, dependency_distance, parallel_streams)
    l2_fill = max(0, core.l2.latency - core.l1d.latency)

    load_stall = (
        misses.load_l1_misses * l2_fill
        + misses.load_l2_misses * core.memory_latency
    ) / mlp
    # Stores retire through the store buffer; only a fraction of their miss
    # latency surfaces as pipeline stall (write-allocate port pressure).
    store_stall = 0.15 * (
        misses.store_l1_misses * l2_fill
        + misses.store_l2_misses * core.memory_latency
    ) / mlp

    branch_stall = misses.branch_mispredicts * core.mispredict_penalty
    icache_stall = (
        misses.icache_l1_misses * core.l2.latency
        + misses.icache_l2_misses * core.memory_latency
    )
    # Page walks overlap less than data misses (translations serialize
    # the dependent access), so only half the MLP applies.
    tlb_stall = misses.dtlb_misses * TLB_WALK_LATENCY / max(1.0, mlp / 2.0)

    breakdown = {
        "base": base_cycles,
        "load_miss": load_stall,
        "store_miss": store_stall,
        "branch_mispredict": branch_stall,
        "icache": icache_stall,
        "dtlb": tlb_stall,
    }
    binding_bound = (
        max(bounds, key=bounds.get)
        if max(bounds.values()) >= dep_cpi else "dependency"
    )
    cycles = (base_cycles + load_stall + store_stall + branch_stall
              + icache_stall + tlb_stall)
    return IntervalResult(
        cycles=cycles, breakdown=breakdown, binding_bound=binding_bound
    )
