"""Interval-analysis timing model.

Combines throughput bounds (front-end width, functional-unit contention,
data-dependency chains) with miss-event penalties (branch mispredicts,
I-cache fills, load/store misses with memory-level-parallelism overlap)
into a cycle count — the standard cycle-approximate substitute for a
detailed out-of-order simulator, preserving Gem5-like sensitivities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.isa.instructions import InstrClass
from repro.sim.config import CoreConfig

#: Unpipelined units occupy their pipe for several cycles; these factors
#: convert a divide into equivalent issue slots.
DIV_OCCUPANCY = 8.0
FP_DIV_OCCUPANCY = 9.0


@dataclass
class MissProfile:
    """Dynamic miss/mispredict event counts for the measurement window."""

    branch_mispredicts: int = 0
    icache_l1_misses: int = 0
    icache_l2_misses: int = 0
    load_l1_misses: int = 0
    load_l2_misses: int = 0
    store_l1_misses: int = 0
    store_l2_misses: int = 0
    dtlb_misses: int = 0


#: Page-walk latency charged per DTLB miss (cycles).
TLB_WALK_LATENCY = 30.0


def effective_mlp(core: CoreConfig, dependency_distance: float,
                  parallel_streams: int = 1) -> float:
    """Memory-level parallelism the window can sustain.

    Independent chains (dependency distance) and distinct streams expose
    parallel misses; the LSQ bounds how many can be outstanding.
    """
    exposed = 1.0 + 0.6 * max(0.0, dependency_distance - 1.0)
    exposed *= max(1, parallel_streams) ** 0.25
    return max(1.0, min(exposed, core.lsq / 4.0))


def throughput_cpi(core: CoreConfig, class_counts: dict[InstrClass, int],
                   total: int) -> dict[str, float]:
    """Per-resource cycles-per-instruction lower bounds."""
    n = max(1, total)
    count = lambda *cs: sum(class_counts.get(c, 0) for c in cs)

    alu_slots = count(InstrClass.INT_ALU, InstrClass.BRANCH, InstrClass.NOP)
    simd_slots = (
        count(InstrClass.INT_MUL) + DIV_OCCUPANCY * count(InstrClass.INT_DIV)
    )
    fp_slots = (
        count(InstrClass.FP_ADD, InstrClass.FP_MUL)
        + FP_DIV_OCCUPANCY * count(InstrClass.FP_DIV)
    )
    mem_slots = count(InstrClass.LOAD, InstrClass.STORE)

    return {
        "width": 1.0 / core.front_end_width,
        "alu": alu_slots / (core.alu_units * n),
        "simd": simd_slots / (core.simd_units * n),
        "fp": fp_slots / (core.fp_units * n),
        "mem_ports": mem_slots / (core.mem_ports * n),
    }


@dataclass
class IntervalInputs:
    """One core's inputs to the batched interval model.

    ``Simulator.run_many`` produces one of these per core config from a
    shared :class:`~repro.sim.artifact.TraceArtifact` (stages 1-2) and
    hands the whole batch to :func:`compute_cycles_batch` (stage 3).
    """

    core: CoreConfig
    total_instructions: int
    class_counts: dict[InstrClass, int]
    dep_cycles_per_iteration: float
    loop_size: int
    misses: MissProfile = field(default_factory=MissProfile)
    dependency_distance: float = 4.0
    parallel_streams: int = 1


def compute_cycles_batch(
    batch: Sequence[IntervalInputs],
) -> list[tuple[float, dict[str, float]]]:
    """Evaluate a batch of core configs through the interval model.

    Each entry is independent — the batch form exists so the staged
    pipeline has a single timing entry point for N cores — and every
    result is bit-identical to a lone :func:`compute_cycles` call.

    Returns:
        One ``(cycles, breakdown)`` pair per input, in input order.
    """
    return [
        compute_cycles(
            inputs.core,
            inputs.total_instructions,
            inputs.class_counts,
            inputs.dep_cycles_per_iteration,
            inputs.loop_size,
            inputs.misses,
            dependency_distance=inputs.dependency_distance,
            parallel_streams=inputs.parallel_streams,
        )
        for inputs in batch
    ]


def compute_cycles(
    core: CoreConfig,
    total_instructions: int,
    class_counts: dict[InstrClass, int],
    dep_cycles_per_iteration: float,
    loop_size: int,
    misses: MissProfile,
    dependency_distance: float = 4.0,
    parallel_streams: int = 1,
) -> tuple[float, dict[str, float]]:
    """Total cycles for the measurement window, with a breakdown.

    Returns:
        ``(cycles, breakdown)`` where breakdown maps component names to
        cycle contributions (base + each penalty class).
    """
    if total_instructions <= 0:
        raise ValueError("total_instructions must be positive")

    bounds = throughput_cpi(core, class_counts, total_instructions)
    dep_cpi = dep_cycles_per_iteration / max(1, loop_size)
    base_cpi = max(max(bounds.values()), dep_cpi)
    base_cycles = total_instructions * base_cpi

    mlp = effective_mlp(core, dependency_distance, parallel_streams)
    l2_fill = max(0, core.l2.latency - core.l1d.latency)

    load_stall = (
        misses.load_l1_misses * l2_fill
        + misses.load_l2_misses * core.memory_latency
    ) / mlp
    # Stores retire through the store buffer; only a fraction of their miss
    # latency surfaces as pipeline stall (write-allocate port pressure).
    store_stall = 0.15 * (
        misses.store_l1_misses * l2_fill
        + misses.store_l2_misses * core.memory_latency
    ) / mlp

    branch_stall = misses.branch_mispredicts * core.mispredict_penalty
    icache_stall = (
        misses.icache_l1_misses * core.l2.latency
        + misses.icache_l2_misses * core.memory_latency
    )
    # Page walks overlap less than data misses (translations serialize
    # the dependent access), so only half the MLP applies.
    tlb_stall = misses.dtlb_misses * TLB_WALK_LATENCY / max(1.0, mlp / 2.0)

    breakdown = {
        "base": base_cycles,
        "load_miss": load_stall,
        "store_miss": store_stall,
        "branch_mispredict": branch_stall,
        "icache": icache_stall,
        "dtlb": tlb_stall,
        "binding_bound": max(bounds, key=bounds.get) if max(
            bounds.values()
        ) >= dep_cpi else "dependency",
    }
    cycles = (base_cycles + load_stall + store_stall + branch_stall
              + icache_stall + tlb_stall)
    return cycles, breakdown
