"""Dynamic trace expansion.

Generated test cases are fixed loop bodies, so the dynamic trace is the
static body repeated ``K`` iterations with per-iteration memory addresses
and branch outcomes expanded from each instruction's declarative
:class:`~repro.isa.program.MemoryAccess` / ``BranchBehavior``.  Expansion
is vectorized with numpy: one array per static instruction, interleaved
into program order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.instructions import InstrClass
from repro.isa.program import Program


@dataclass
class ExpandedTrace:
    """The dynamic trace of ``iterations`` runs of a loop body.

    Memory and branch event arrays are flattened in dynamic order
    (iteration-major, program order within an iteration).

    Attributes:
        iterations: number of loop iterations expanded.
        loop_size: static instructions per iteration.
        mem_pcs / mem_lines / mem_is_store: one entry per dynamic memory
            access (line addresses use the given line size).
        branch_pcs / branch_outcomes: one entry per dynamic conditional
            branch instance.
        class_counts: dynamic instruction count per class.
    """

    iterations: int
    loop_size: int
    line_bytes: int
    mem_pcs: np.ndarray
    mem_lines: np.ndarray
    mem_is_store: np.ndarray
    branch_pcs: np.ndarray
    branch_outcomes: np.ndarray
    class_counts: dict[InstrClass, int]
    #: Memoized minimal iteration period of the memory access pattern
    #: (see repro.sim.events._trace_period); None until first computed.
    #: Core-independent, so one detection serves a whole config sweep.
    min_period: int | None = field(default=None, repr=False)
    #: Config-batched kernel scratch (repro.sim.events): precomputed
    #: trace columns (set indices, pages, LRU recency ranks, packed
    #: branch histories) shared across the core configs of a batch.
    #: Derived data only — excluded from pickles so persisted artifacts
    #: stay small and loadable across schema versions.
    _kernel_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_kernel_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Traces pickled before the config-batched engine (or by
        # __getstate__ above) carry no scratch; rebuild lazily.
        self.__dict__.setdefault("_kernel_cache", {})

    @property
    def total_instructions(self) -> int:
        return self.iterations * self.loop_size


def expand(program: Program, iterations: int, line_bytes: int = 64) -> ExpandedTrace:
    """Expand ``iterations`` loop iterations of ``program`` into a trace.

    Args:
        program: a generated (validated) test case.
        iterations: loop iterations to expand (>= 1).
        line_bytes: cache line size used for line-address conversion.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    mem_instrs = program.memory_instructions()
    if mem_instrs:
        # Shape (M, K) per-instruction address streams -> (K, M) -> flat.
        addr_rows = [i.memory.addresses(iterations) for i in mem_instrs]
        addrs = np.stack(addr_rows).T.reshape(-1)
        pcs = np.tile(
            np.asarray([i.address or 0 for i in mem_instrs], dtype=np.int64),
            iterations,
        )
        stores = np.tile(
            np.asarray(
                [i.iclass is InstrClass.STORE for i in mem_instrs], dtype=bool
            ),
            iterations,
        )
        lines = addrs // line_bytes
    else:
        pcs = np.empty(0, dtype=np.int64)
        lines = np.empty(0, dtype=np.int64)
        stores = np.empty(0, dtype=bool)

    br_instrs = program.branch_instructions()
    if br_instrs:
        outcome_rows = [i.branch.outcomes(iterations) for i in br_instrs]
        outcomes = np.stack(outcome_rows).T.reshape(-1)
        br_pcs = np.tile(
            np.asarray([i.address or 0 for i in br_instrs], dtype=np.int64),
            iterations,
        )
    else:
        outcomes = np.empty(0, dtype=bool)
        br_pcs = np.empty(0, dtype=np.int64)

    static_counts = program.class_counts()
    class_counts = {c: n * iterations for c, n in static_counts.items()}

    return ExpandedTrace(
        iterations=iterations,
        loop_size=len(program),
        line_bytes=line_bytes,
        mem_pcs=pcs,
        mem_lines=lines,
        mem_is_store=stores,
        branch_pcs=br_pcs,
        branch_outcomes=outcomes,
        class_counts=class_counts,
    )
