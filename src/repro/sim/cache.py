"""Set-associative LRU caches and the L2 stride prefetcher.

The data-side hierarchy is simulated access-by-access on the exact address
trace the generated loop produces.  The instruction side exploits the fact
that every test case is a fixed loop: a cyclic reference pattern through a
set-associative LRU cache has a closed-form steady state (per set, all
lines hit if they fit in the ways, otherwise every access misses), which
:func:`cyclic_code_hits` computes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheConfig:
    """Convenience alias bundle for building a cache from raw numbers."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    latency: int = 2


#: Supported replacement policies for the standalone cache model.
REPLACEMENT_POLICIES = ("lru", "fifo", "random")


class SetAssociativeCache:
    """A set-associative cache with configurable replacement.

    The simulator drives :meth:`access`; statistics accumulate in
    :attr:`hits` / :attr:`misses`.  Lines installed by the prefetcher are
    tracked separately so prefetch coverage can be reported.

    Replacement policies: ``lru`` (default, and what the inlined
    simulator loop implements), ``fifo`` and ``random`` — the latter two
    support replacement-sensitivity studies on the substrate.
    """

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int = 64,
                 policy: str = "lru", seed: int = 0):
        if size_bytes % (assoc * line_bytes):
            raise ValueError("cache size must be a multiple of assoc * line")
        if policy not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement policy {policy!r}; "
                f"choose from {REPLACEMENT_POLICIES}"
            )
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.policy = policy
        self.num_sets = size_bytes // (assoc * line_bytes)
        # Per-set list of tags; for LRU, index -1 = most recent; for
        # FIFO, index 0 = oldest resident.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._rng = np.random.default_rng(seed)
        self.hits = 0
        self.misses = 0
        self.prefetch_installs = 0
        self.prefetch_hits = 0
        self._prefetched: set[int] = set()

    def reset_stats(self) -> None:
        """Zero the counters without flushing cache contents (for warmup)."""
        self.hits = 0
        self.misses = 0
        self.prefetch_installs = 0
        self.prefetch_hits = 0

    def _set_and_tag(self, line_addr: int) -> tuple[list[int], int]:
        return self._sets[line_addr % self.num_sets], line_addr

    def _evict_index(self, ways: list[int]) -> int:
        if self.policy == "random":
            return int(self._rng.integers(0, len(ways)))
        return 0  # both LRU and FIFO evict the head

    def access(self, line_addr: int) -> bool:
        """Access one line address; returns True on hit."""
        ways, tag = self._set_and_tag(line_addr)
        if tag in ways:
            if self.policy == "lru":
                ways.remove(tag)
                ways.append(tag)
            if tag in self._prefetched:
                self.prefetch_hits += 1
                self._prefetched.discard(tag)
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.assoc:
            evicted = ways.pop(self._evict_index(ways))
            self._prefetched.discard(evicted)
        ways.append(tag)
        return False

    def install(self, line_addr: int, prefetch: bool = False) -> None:
        """Install a line without counting an access (prefetch fill)."""
        ways, tag = self._set_and_tag(line_addr)
        if tag in ways:
            return
        if len(ways) >= self.assoc:
            evicted = ways.pop(self._evict_index(ways))
            self._prefetched.discard(evicted)
        ways.append(tag)
        if prefetch:
            self.prefetch_installs += 1
            self._prefetched.add(tag)

    def contains(self, line_addr: int) -> bool:
        """Lookup without side effects."""
        ways, tag = self._set_and_tag(line_addr)
        return tag in ways

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all counted accesses (1.0 when idle)."""
        total = self.accesses
        return self.hits / total if total else 1.0


class StridePrefetcher:
    """Per-PC stride prefetcher feeding the L2 (Large core, Table II).

    Keeps a reference-prediction table keyed by the accessing instruction;
    on two consecutive accesses with the same stride it prefetches
    ``degree`` lines ahead into the target cache.
    """

    def __init__(self, target: SetAssociativeCache, degree: int = 2,
                 table_size: int = 512):
        self.target = target
        self.degree = degree
        self.table_size = table_size
        self._table: dict[int, tuple[int, int, bool]] = {}

    def observe(self, pc: int, line_addr: int) -> None:
        """Train on one access and possibly issue prefetches."""
        last_addr, last_stride, confirmed = self._table.get(pc, (line_addr, 0, False))
        stride = line_addr - last_addr
        if stride != 0 and stride == last_stride:
            confirmed = True
        elif stride != 0:
            confirmed = False
        if confirmed and stride != 0:
            for d in range(1, self.degree + 1):
                self.target.install(line_addr + stride * d, prefetch=True)
        if len(self._table) >= self.table_size and pc not in self._table:
            self._table.pop(next(iter(self._table)))
        self._table[pc] = (line_addr, stride if stride else last_stride, confirmed)


#: Fraction of the idealized over-capacity residency that instruction
#: fetch actually achieves: taken branches reorder/skip parts of the loop
#: body, so code fetch does not thrash as pathologically as a perfectly
#: cyclic LRU reference stream would.
_FETCH_REORDER_FACTOR = 0.85


def cyclic_code_hits(
    num_lines: int, num_sets: int, assoc: int, iterations: int
) -> tuple[int, int]:
    """Steady-state (hits, misses) for a code loop through the I-cache.

    A loop body touching ``num_lines`` distinct instruction lines maps
    roughly ``num_lines / num_sets`` lines to each set.  Sets whose lines
    fit within the ways serve hits every iteration (cold misses belong to
    the warmup window, which the simulator discards).  For over-capacity
    sets a perfectly cyclic LRU stream would never hit; real instruction
    fetch is not perfectly cyclic (taken branches skip and reorder), so
    over-capacity sets are modelled with the random-replacement steady
    state — each access hits with probability ``assoc / lines_in_set`` —
    damped by :data:`_FETCH_REORDER_FACTOR`.

    Returns:
        Tuple of steady-state instruction-fetch line ``(hits, misses)``
        over ``iterations`` full loop iterations.
    """
    if num_lines <= 0 or iterations <= 0:
        return (0, 0)
    per_set = [num_lines // num_sets] * num_sets
    for s in range(num_lines % num_sets):
        per_set[s] += 1
    hits = 0
    misses = 0
    for lines_in_set in per_set:
        if lines_in_set == 0:
            continue
        if lines_in_set <= assoc:
            hits += lines_in_set * iterations
        else:
            accesses = lines_in_set * iterations
            hit_probability = (assoc / lines_in_set) * _FETCH_REORDER_FACTOR
            set_hits = int(round(accesses * hit_probability))
            hits += set_hits
            misses += accesses - set_hits
    return hits, misses


def cyclic_code_hits_closed(
    num_lines: int, num_sets: int, assoc: int, iterations: int
) -> tuple[int, int]:
    """Closed-form :func:`cyclic_code_hits`: O(1) instead of O(num_sets).

    The largest-remainder distribution gives ``per_set`` at most two
    distinct values — ``q = num_lines // num_sets`` and ``q + 1`` for the
    first ``num_lines % num_sets`` sets.  Every set with the same line
    count contributes the identical ``int(round(...))`` hit count, so
    multiplying each distinct value's contribution by its set count
    reproduces the per-set loop bit-for-bit (integer sums are exact and
    the rounded expression is evaluated once per distinct value with the
    same operand order).
    """
    if num_lines <= 0 or iterations <= 0:
        return (0, 0)
    q, r = divmod(num_lines, num_sets)
    hits = 0
    misses = 0
    for lines_in_set, set_count in ((q + 1, r), (q, num_sets - r)):
        if set_count == 0 or lines_in_set == 0:
            continue
        if lines_in_set <= assoc:
            hits += lines_in_set * iterations * set_count
        else:
            accesses = lines_in_set * iterations
            hit_probability = (assoc / lines_in_set) * _FETCH_REORDER_FACTOR
            set_hits = int(round(accesses * hit_probability))
            hits += set_hits * set_count
            misses += (accesses - set_hits) * set_count
    return hits, misses


def line_addresses(byte_addresses: np.ndarray, line_bytes: int = 64) -> np.ndarray:
    """Convert byte addresses to line addresses."""
    return np.asarray(byte_addresses, dtype=np.int64) // line_bytes
