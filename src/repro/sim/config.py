"""Core configurations (Table II of the paper).

Two cores bound the design space: a narrow *Small* core and a wide *Large*
core with a prefetching L2.  Frequencies, widths and structure sizes follow
Table II; latencies and penalties are typical values for cores of these
sizes (the paper inherits them from Gem5 defaults, which it does not list).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    latency: int = 2

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets < 1:
            raise ValueError("cache smaller than one set")
        return sets


@dataclass(frozen=True)
class CoreConfig:
    """A complete core + memory-hierarchy configuration.

    Attributes mirror Table II: ``front_end_width`` is the fetch/dispatch
    width, ``rob``/``lsq``/``rse`` the window structures, and the unit
    counts size the ALU/SIMD/FP pools.  ``mem_ports`` (cache ports) and the
    latency/penalty fields parameterize the timing model.
    """

    name: str
    frequency_ghz: float = 2.0
    front_end_width: int = 3
    rob: int = 40
    lsq: int = 16
    rse: int = 32
    alu_units: int = 3
    simd_units: int = 2
    fp_units: int = 2
    mem_ports: int = 2
    l1i: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(16 * 1024, 4, latency=2)
    )
    l1d: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(16 * 1024, 4, latency=3)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(256 * 1024, 8, latency=12)
    )
    l2_prefetcher: bool = False
    memory_latency: int = 180
    memory_gb: int = 1
    mispredict_penalty: int = 10

    def describe(self) -> dict:
        """Flat summary dict (used by reports and the CLI)."""
        return {
            "name": self.name,
            "frequency_ghz": self.frequency_ghz,
            "front_end_width": self.front_end_width,
            "rob/lsq/rse": f"{self.rob}/{self.lsq}/{self.rse}",
            "alu/simd/fp": f"{self.alu_units}/{self.simd_units}/{self.fp_units}",
            "l1": f"{self.l1i.size_bytes // 1024}k",
            "l2": f"{self.l2.size_bytes // 1024}k"
            + (" + prefetch" if self.l2_prefetcher else ""),
            "memory": f"{self.memory_gb}GB",
        }


#: Table II "Small" core: 3-wide, 40/16/32 window, 3/2/2 units,
#: 16k L1 / 256k L2.
SMALL_CORE = CoreConfig(
    name="small",
    front_end_width=3,
    rob=40,
    lsq=16,
    rse=32,
    alu_units=3,
    simd_units=2,
    fp_units=2,
    mem_ports=2,
    l1i=CacheGeometry(16 * 1024, 4, latency=2),
    l1d=CacheGeometry(16 * 1024, 4, latency=3),
    l2=CacheGeometry(256 * 1024, 8, latency=12),
    l2_prefetcher=False,
    mispredict_penalty=10,
)

#: Table II "Large" core: 8-wide, 160/64/128 window, 6/4/4 units,
#: 32k L1 / 1M L2 with prefetch.
LARGE_CORE = CoreConfig(
    name="large",
    front_end_width=8,
    rob=160,
    lsq=64,
    rse=128,
    alu_units=6,
    simd_units=4,
    fp_units=4,
    mem_ports=4,
    l1i=CacheGeometry(32 * 1024, 8, latency=2),
    l1d=CacheGeometry(32 * 1024, 8, latency=4),
    l2=CacheGeometry(1024 * 1024, 16, latency=14),
    l2_prefetcher=True,
    mispredict_penalty=14,
)

_CORES = {c.name: c for c in (SMALL_CORE, LARGE_CORE)}


def core_by_name(name: str) -> CoreConfig:
    """Look up a named core configuration (``small`` / ``large``).

    Raises:
        KeyError: for unknown names.
    """
    key = name.strip().lower()
    if key not in _CORES:
        raise KeyError(f"unknown core {name!r}; available: {sorted(_CORES)}")
    return _CORES[key]


def custom_core(base: CoreConfig, **overrides) -> CoreConfig:
    """Derive a custom configuration from an existing one."""
    return replace(base, **overrides)
