"""Branch direction predictors.

The default predictor is gshare (global history XOR PC indexing a table of
2-bit saturating counters) — representative of the Gem5 O3 default class of
history-based predictors.  A bimodal predictor is provided both as a
smaller-core option and for predictor-sensitivity experiments.
"""

from __future__ import annotations

import numpy as np


class _TwoBitTable:
    """A table of 2-bit saturating counters (0..3; >=2 predicts taken)."""

    def __init__(self, entries: int):
        if entries & (entries - 1):
            raise ValueError("table entries must be a power of two")
        self.entries = entries
        self.counters = np.full(entries, 2, dtype=np.int8)  # weakly taken

    def predict(self, index: int) -> bool:
        return self.counters[index] >= 2

    def update(self, index: int, taken: bool) -> None:
        c = self.counters[index]
        if taken:
            if c < 3:
                self.counters[index] = c + 1
        elif c > 0:
            self.counters[index] = c - 1


class BimodalPredictor:
    """PC-indexed 2-bit counter predictor."""

    def __init__(self, entries: int = 4096):
        self.table = _TwoBitTable(entries)
        self.lookups = 0
        self.mispredicts = 0

    def reset_stats(self) -> None:
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.table.entries - 1)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict one branch, train, and return whether it mispredicted."""
        index = self._index(pc)
        predicted = self.table.predict(index)
        self.table.update(index, taken)
        self.lookups += 1
        wrong = predicted != taken
        if wrong:
            self.mispredicts += 1
        return wrong

    @property
    def mispredict_rate(self) -> float:
        """Mispredicted fraction of all predicted branches."""
        return self.mispredicts / self.lookups if self.lookups else 0.0


class GSharePredictor(BimodalPredictor):
    """gshare: global-history-XOR-PC indexed 2-bit counters."""

    def __init__(self, entries: int = 8192, history_bits: int = 12):
        super().__init__(entries)
        self.history_bits = min(history_bits, entries.bit_length() - 1)
        self._history = 0
        self._history_mask = (1 << self.history_bits) - 1

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & (self.table.entries - 1)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        wrong = super().predict_and_update(pc, taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return wrong


class TournamentPredictor:
    """Tournament (combining) predictor: bimodal vs gshare with a
    per-branch chooser table — the Alpha 21264-style design, provided
    for predictor-sensitivity studies on the substrate."""

    def __init__(self, entries: int = 4096, history_bits: int = 10):
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GSharePredictor(entries, history_bits)
        self.chooser = _TwoBitTable(entries)
        self.lookups = 0
        self.mispredicts = 0

    def reset_stats(self) -> None:
        self.lookups = 0
        self.mispredicts = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict with the chosen component, train all three tables."""
        index = (pc >> 2) & (self.chooser.entries - 1)
        use_gshare = self.chooser.predict(index)

        bimodal_pred = self.bimodal.table.predict(self.bimodal._index(pc))
        gshare_pred = self.gshare.table.predict(self.gshare._index(pc))
        prediction = gshare_pred if use_gshare else bimodal_pred

        # Chooser trains toward whichever component was right.
        if gshare_pred != bimodal_pred:
            self.chooser.update(index, gshare_pred == taken)
        self.bimodal.predict_and_update(pc, taken)
        self.gshare.predict_and_update(pc, taken)

        self.lookups += 1
        wrong = prediction != taken
        if wrong:
            self.mispredicts += 1
        return wrong

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.lookups if self.lookups else 0.0


def predictor_for_core(
    core_name: str,
) -> BimodalPredictor | TournamentPredictor:
    """Default predictor sized for a Table II core.

    Sizing follows the base core family: ``large`` (or any ``large-*``
    derivative) gets the big tables, everything else the small ones.
    Derived cores select the predictor *kind* by name suffix
    (``small-tournament``, ``large-bimodal``, ...): the frozen
    :class:`~repro.sim.config.CoreConfig` layout is pinned by platform
    identity hashes, so predictor-sensitivity studies ride on the core
    name instead of a new config field.
    """
    large = core_name == "large" or core_name.startswith("large-")
    entries, history_bits = (16384, 13) if large else (4096, 10)
    if core_name.endswith("-tournament"):
        return TournamentPredictor(entries=entries, history_bits=history_bits)
    if core_name.endswith("-bimodal"):
        return BimodalPredictor(entries=entries)
    return GSharePredictor(entries=entries, history_bits=history_bits)
