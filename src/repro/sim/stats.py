"""Simulation statistics container.

:class:`SimStats` is the "simulator output dump" of this substrate
(Section III-E): the metric-extraction layer of the framework reads the
use case's metrics of interest out of it via :meth:`SimStats.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical metric keys, matching the circumferential axes of Figs 2-4
#: plus power.  ``integer``/``float``/``branch``/``load``/``store`` are
#: dynamic instruction-distribution fractions.
METRIC_KEYS = (
    "integer",
    "float",
    "load",
    "store",
    "branch",
    "mispredict_rate",
    "l1i_hit_rate",
    "l1d_hit_rate",
    "l2_hit_rate",
    "ipc",
)


@dataclass
class SimStats:
    """Measured execution statistics of one simulation run.

    Attributes:
        core: name of the simulated core configuration.
        instructions: dynamic instructions in the measurement window.
        cycles: simulated cycles for that window.
        group_fractions: dynamic instruction distribution by group.
        breakdown: cycle-component breakdown from the interval model;
            purely numeric (``sum(breakdown.values())`` is the cycle
            total up to rounding).
        binding_bound: name of the binding throughput bound (kept out of
            ``breakdown`` so that dict stays numeric).
        extra: free-form counters (prefetch stats, raw miss counts, ...).
    """

    core: str
    instructions: int
    cycles: float
    ipc: float
    l1i_hit_rate: float
    l1d_hit_rate: float
    l2_hit_rate: float
    mispredict_rate: float
    dtlb_miss_rate: float = 0.0
    group_fractions: dict[str, float] = field(default_factory=dict)
    breakdown: dict[str, float] = field(default_factory=dict)
    binding_bound: str = ""
    extra: dict[str, float] = field(default_factory=dict)

    def metrics(self) -> dict[str, float]:
        """Flat metric dict keyed by the canonical metric names."""
        out = {
            "ipc": self.ipc,
            "l1i_hit_rate": self.l1i_hit_rate,
            "l1d_hit_rate": self.l1d_hit_rate,
            "l2_hit_rate": self.l2_hit_rate,
            "mispredict_rate": self.mispredict_rate,
            "dtlb_miss_rate": self.dtlb_miss_rate,
        }
        for group in ("integer", "float", "load", "store", "branch"):
            out[group] = self.group_fractions.get(group, 0.0)
        return out

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"[{self.core}] {self.instructions} instrs, "
            f"IPC {self.ipc:.3f}, L1D {self.l1d_hit_rate:.3f}, "
            f"L2 {self.l2_hit_rate:.3f}, BP miss {self.mispredict_rate:.3f}"
        )
