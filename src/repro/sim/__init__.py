"""Gem5-like performance-simulation substrate.

The paper evaluates generated test cases on the Gem5 O3 model with the
Table II core configurations.  This package provides the cycle-approximate
equivalent used by this reproduction:

* set-associative LRU caches (L1I, L1D, unified L2, optional L2 stride
  prefetcher on the Large core), simulated on the exact address trace the
  generated loop produces;
* a gshare branch predictor simulated on the exact outcome trace;
* a register dependency-graph critical-path analysis of the loop body;
* an interval-analysis timing model combining front-end width, functional
  unit contention, window occupancy, dependency chains and miss events
  into a cycle count.

The entry point is :class:`~repro.sim.simulator.Simulator`.  Simulation
runs as a three-stage pipeline: a shared per-program
:class:`~repro.sim.artifact.TraceArtifact` (stage 1), per-core event
simulation (stage 2, :mod:`repro.sim.events`) and the batched interval
timing model (stage 3); :meth:`Simulator.run_many` evaluates a batch of
core configs against one artifact.
"""

from repro.sim.config import CoreConfig, LARGE_CORE, SMALL_CORE, core_by_name
from repro.sim.cache import CacheConfig, SetAssociativeCache, cyclic_code_hits
from repro.sim.branch import BimodalPredictor, GSharePredictor
from repro.sim.stats import SimStats
from repro.sim.simulator import Simulator
from repro.sim.artifact import (
    TraceArtifact,
    TraceArtifactCache,
    artifact_for,
    program_fingerprint,
)

__all__ = [
    "CoreConfig",
    "SMALL_CORE",
    "LARGE_CORE",
    "core_by_name",
    "CacheConfig",
    "SetAssociativeCache",
    "cyclic_code_hits",
    "GSharePredictor",
    "BimodalPredictor",
    "SimStats",
    "Simulator",
    "TraceArtifact",
    "TraceArtifactCache",
    "artifact_for",
    "program_fingerprint",
]
