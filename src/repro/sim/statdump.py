"""Gem5-style statistics dump writer.

Section III-E: "the MicroGrad interface enables the required metrics to
be read from the output dumps of the simulators".  This module renders a
:class:`~repro.sim.stats.SimStats` in the familiar ``stats.txt`` format
(``name value # comment`` lines) and parses it back — so downstream
tooling written against real Gem5 dumps can consume this substrate's
output, and the metric-extraction path can be exercised end to end.
"""

from __future__ import annotations

from pathlib import Path

from repro.sim.stats import SimStats

_HEADER = "---------- Begin Simulation Statistics ----------"
_FOOTER = "---------- End Simulation Statistics   ----------"


def _rows(stats: SimStats) -> list[tuple[str, float, str]]:
    rows = [
        ("sim_insts", stats.instructions, "Number of instructions simulated"),
        ("numCycles", stats.cycles, "number of cpu cycles simulated"),
        ("ipc", stats.ipc, "IPC: instructions per cycle"),
        ("icache.overall_hit_rate", stats.l1i_hit_rate,
         "L1I hit rate"),
        ("dcache.overall_hit_rate", stats.l1d_hit_rate,
         "L1D hit rate"),
        ("l2.overall_hit_rate", stats.l2_hit_rate, "L2 hit rate"),
        ("branchPred.condIncorrectRate", stats.mispredict_rate,
         "fraction of conditional branches mispredicted"),
        ("dtb.missRate", stats.dtlb_miss_rate, "DTLB miss rate"),
    ]
    for group, fraction in sorted(stats.group_fractions.items()):
        rows.append(
            (f"instMix.{group}", fraction,
             f"fraction of {group} instructions")
        )
    for key, value in sorted(stats.breakdown.items()):
        rows.append(
            (f"cycleBreakdown.{key}", float(value), "cycle component")
        )
    return rows


def write_stats_dump(stats: SimStats, path: str | Path | None = None) -> str:
    """Render ``stats`` as a Gem5-flavoured ``stats.txt``.

    Args:
        stats: simulator output.
        path: optional file to write.

    Returns:
        The dump text.
    """
    lines = [_HEADER]
    for name, value, comment in _rows(stats):
        if isinstance(value, float) and not value.is_integer():
            rendered = f"{value:.6f}"
        else:
            rendered = str(int(value))
        lines.append(f"{name:<42} {rendered:>16}  # {comment}")
    if stats.binding_bound:
        # Non-numeric stat: parse_stats_dump skips it by design.
        lines.append(
            f"{'cycleBreakdown.boundBy':<42} "
            f"{stats.binding_bound:>16}  # binding throughput bound"
        )
    lines.append(_FOOTER)
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text


def parse_stats_dump(text: str) -> dict[str, float]:
    """Parse a dump produced by :func:`write_stats_dump`.

    Unknown lines are ignored (real Gem5 dumps carry thousands of
    counters; the reader only lifts what it finds).

    Returns:
        Mapping of stat name to numeric value.
    """
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("-"):
            continue
        parts = line.split()
        if len(parts) < 2:
            continue
        try:
            values[parts[0]] = float(parts[1])
        except ValueError:
            continue
    return values


def metrics_from_dump(text: str) -> dict[str, float]:
    """Extract the canonical MicroGrad metric dict from a dump.

    This is the Section III-E metric-extraction path: simulator dump in,
    metrics-of-interest out.

    Raises:
        KeyError: if the dump lacks a required counter.
    """
    values = parse_stats_dump(text)
    mapping = {
        "ipc": "ipc",
        "l1i_hit_rate": "icache.overall_hit_rate",
        "l1d_hit_rate": "dcache.overall_hit_rate",
        "l2_hit_rate": "l2.overall_hit_rate",
        "mispredict_rate": "branchPred.condIncorrectRate",
        "dtlb_miss_rate": "dtb.missRate",
    }
    metrics = {metric: values[stat] for metric, stat in mapping.items()}
    for group in ("integer", "float", "load", "store", "branch"):
        metrics[group] = values.get(f"instMix.{group}", 0.0)
    return metrics
