"""Run reports and cluster-status rendering.

Two consumers of the metrics registry live here:

* :func:`build_run_report` turns a merged :class:`MetricsSnapshot`
  (one run's scope, workers already folded in) into the JSON document
  written by ``--metrics-out`` — per-stage time breakdown plus derived
  cache-hit / engine-path / dedup rates.
* :func:`format_cluster_status` renders the coordinator's
  ``status_reply`` report (see :mod:`repro.dist.protocol`) as the
  table ``repro.cli status <addr>`` prints.
"""

from __future__ import annotations

from repro.obs.registry import MetricsSnapshot

RUN_REPORT_SCHEMA = "run-report-v1"

#: Counter prefix the :mod:`repro.sim.events` compat shim records under.
ENGINE_PATH_PREFIX = "engine_path."


def _rate(hits: float, misses: float) -> float | None:
    total = hits + misses
    return hits / total if total else None


def build_run_report(snapshot: MetricsSnapshot,
                     wall_s: float | None = None,
                     extra: dict | None = None) -> dict:
    """Build the ``--metrics-out`` JSON document from one run's snapshot.

    ``wall_s`` is the run's wall-clock (stage shares are computed
    against it); ``extra`` is merged in verbatim under ``"run"`` (tuner
    name, epochs, best loss — whatever the caller wants on record).
    """
    counters = dict(snapshot.counters)
    stages = {}
    for name, stat in sorted(snapshot.timers.items()):
        entry = {
            "count": stat.count,
            "total_s": stat.total_s,
            "mean_s": stat.mean_s,
            "min_s": stat.min_s if stat.count else 0.0,
            "max_s": stat.max_s,
        }
        if wall_s:
            entry["share_of_wall"] = stat.total_s / wall_s
        stages[name] = entry

    engine_paths = {
        name[len(ENGINE_PATH_PREFIX):]: count
        for name, count in counters.items()
        if name.startswith(ENGINE_PATH_PREFIX)
    }
    requested = counters.get("evaluator.requested", 0)
    unique = counters.get("evaluator.unique", 0)
    rates = {
        "result_cache_hit_rate": _rate(
            counters.get("cache.result.hits", 0),
            counters.get("cache.result.misses", 0),
        ),
        "artifact_store_hit_rate": _rate(
            counters.get("cache.artifact.hits", 0),
            counters.get("cache.artifact.misses", 0),
        ),
        "evaluator_dedup_rate": (
            1.0 - unique / requested if requested else None
        ),
    }

    report = {
        "schema": RUN_REPORT_SCHEMA,
        "wall_s": wall_s,
        "stages": stages,
        "counters": counters,
        "gauges": dict(snapshot.gauges),
        "engine_paths": engine_paths,
        "rates": rates,
    }
    if extra:
        report["run"] = dict(extra)
    return report


def format_run_report(report: dict) -> str:
    """Human-readable rendering of a :func:`build_run_report` document."""
    lines = []
    wall_s = report.get("wall_s")
    head = "run report"
    if wall_s:
        head += f" — wall {wall_s:.2f}s"
    lines.append(head)

    stages = report.get("stages") or {}
    if stages:
        lines.append("  stage breakdown:")
        width = max(len(name) for name in stages)
        ordered = sorted(stages.items(),
                         key=lambda kv: kv[1]["total_s"], reverse=True)
        for name, stat in ordered:
            share = stat.get("share_of_wall")
            share_txt = f"  {share * 100:5.1f}%" if share is not None else ""
            lines.append(
                f"    {name:<{width}}  {stat['total_s']:8.3f}s"
                f"  x{stat['count']:<6}{share_txt}"
            )

    engine_paths = report.get("engine_paths") or {}
    if engine_paths:
        lines.append("  engine paths:")
        for name, count in sorted(engine_paths.items()):
            lines.append(f"    {name}: {int(count)}")

    rates = report.get("rates") or {}
    rate_bits = [f"{name}={value * 100:.1f}%"
                 for name, value in sorted(rates.items())
                 if value is not None]
    if rate_bits:
        lines.append("  rates: " + "  ".join(rate_bits))

    run = report.get("run") or {}
    if run:
        lines.append("  run: " + "  ".join(
            f"{key}={value}" for key, value in sorted(run.items())
        ))
    return "\n".join(lines)


def format_cluster_status(report: dict) -> str:
    """Render a coordinator ``status_reply`` report as a worker table."""
    lines = []
    workers = report.get("workers") or []
    lines.append(
        f"coordinator {report.get('addr', '?')} — "
        f"{len(workers)} worker(s), "
        f"{report.get('pending', 0)} queued, "
        f"{report.get('unresolved', 0)} unresolved"
    )
    counters = report.get("counters") or {}
    if counters:
        lines.append("  " + "  ".join(
            f"{key}={value}" for key, value in sorted(counters.items())
        ))
    if workers:
        name_w = max(6, max(len(w.get("name", "?")) for w in workers))
        lines.append(
            f"  {'WORKER':<{name_w}}  PROTO  LEASES  JOBS  LAST-SEEN"
        )
        for worker in workers:
            age = worker.get("heartbeat_age_s")
            age_txt = "?" if age is None else f"{age:.1f}s ago"
            lines.append(
                f"  {worker.get('name', '?'):<{name_w}}"
                f"  {worker.get('proto', '?'):<5}"
                f"  {worker.get('leases', 0):<6}"
                f"  {worker.get('jobs_done', 0):<4}"
                f"  {age_txt}"
            )
    sessions = report.get("sessions") or []
    if sessions:
        name_w = max(7, max(len(str(s.get("name", "?"))) for s in sessions))
        lines.append(
            f"  {'SESSION':<{name_w}}  ID   PRIO  QUEUED  IN-FLIGHT"
            f"  SUBMITTED  DONE"
        )
        for session in sessions:
            lines.append(
                f"  {str(session.get('name', '?')):<{name_w}}"
                f"  {session.get('id', '?'):<3}"
                f"  {session.get('priority', 1.0):<4g}"
                f"  {session.get('queued', 0):<6}"
                f"  {session.get('in_flight', 0):<9}"
                f"  {session.get('submitted', 0):<9}"
                f"  {session.get('jobs_done', 0)}"
            )
    cluster = report.get("cluster_metrics") or {}
    cluster_counters = cluster.get("counters") or {}
    if cluster_counters:
        lines.append("  cluster metrics (merged worker snapshots):")
        for name, value in sorted(cluster_counters.items()):
            lines.append(f"    {name}: {value:g}")
    return "\n".join(lines)
