"""Thread-safe metrics registry: counters, gauges and timing histograms.

Every observability signal in the system funnels through one
:class:`MetricsRegistry` per process: engine-path counters
(:func:`repro.sim.events.engine_path_counts` is now a view over it),
result-cache hit/miss accounting, per-stage :func:`span` timings and
worker liveness gauges.  The registry answers two questions the ad-hoc
process-local counters it replaced could not:

* **Where did the time go?** — :func:`span` wraps each pipeline stage
  (codegen, trace build, event sims, interval batch, cache probes,
  chunk evaluation, tuner epochs) in a ~1 µs ``perf_counter`` pair and
  folds the duration into a per-stage :class:`TimerStat`.
* **What happened in *other* processes?** — a :class:`MetricsSnapshot`
  is picklable and mergeable, so worker processes (pools and
  distributed workers alike) snapshot their registry and ship the
  delta home with their results; :meth:`MetricsRegistry.merge_remote`
  folds foreign snapshots in while rejecting same-process echoes.

Counter updates take a lock (CPython's ``+=`` on a dict slot is *not*
atomic — two threads interleaving load/add/store lose increments), so
concurrent ``run_many`` calls from a thread-pool backend count exactly.

Merge semantics (:meth:`MetricsSnapshot.merge`): counters add, timer
counts/totals add with min/min and max/max, gauges take the maximum —
all associative and commutative (exactly so for integer counters, up to
float-addition rounding for timer totals), so merging worker snapshots
in any arrival order yields the same report.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field


def local_origin() -> tuple[str, int]:
    """Identity of this process: ``(hostname, pid)``.

    Computed fresh on every call (not cached at import) so forked
    workers — which inherit module state but get a new pid — never
    masquerade as their parent.
    """
    return (socket.gethostname(), os.getpid())


@dataclass
class TimerStat:
    """Aggregate of one span's observed durations."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def merged(self, other: "TimerStat") -> "TimerStat":
        return TimerStat(
            count=self.count + other.count,
            total_s=self.total_s + other.total_s,
            min_s=min(self.min_s, other.min_s),
            max_s=max(self.max_s, other.max_s),
        )

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_list(self) -> list:
        return [self.count, self.total_s, self.min_s, self.max_s]

    @classmethod
    def from_list(cls, raw) -> "TimerStat":
        count, total_s, min_s, max_s = raw
        return cls(int(count), float(total_s), float(min_s), float(max_s))


@dataclass
class MetricsSnapshot:
    """Picklable, mergeable point-in-time copy of a registry (or scope).

    ``origin`` records which process produced it — ``(hostname, pid)``
    — so :meth:`MetricsRegistry.merge_remote` can tell a worker's
    snapshot (merge it) from an in-process echo (already counted,
    skip).  Merged snapshots carry ``origin=None``.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    timers: dict[str, TimerStat] = field(default_factory=dict)
    origin: tuple[str, int] | None = None

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots (associative, commutative; see module
        docstring for the per-kind fold)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        timers = dict(self.timers)
        for name, stat in other.timers.items():
            mine = timers.get(name)
            timers[name] = stat if mine is None else mine.merged(stat)
        return MetricsSnapshot(counters=counters, gauges=gauges,
                               timers=timers, origin=None)

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.timers)

    def to_dict(self) -> dict:
        """JSON-able form (the ``status`` frame / run-report payload)."""
        return {
            "origin": list(self.origin) if self.origin else None,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {k: v.to_list() for k, v in self.timers.items()},
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "MetricsSnapshot":
        origin = raw.get("origin")
        return cls(
            counters=dict(raw.get("counters") or {}),
            gauges=dict(raw.get("gauges") or {}),
            timers={
                k: TimerStat.from_list(v)
                for k, v in (raw.get("timers") or {}).items()
            },
            origin=tuple(origin) if origin else None,
        )


class _Scope:
    """One active collection window (see :meth:`MetricsRegistry.collect`).

    Scopes accumulate the same updates the registry receives while they
    are active; they have no locking of their own because every mutation
    happens under the owning registry's lock.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, TimerStat] = {}

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            timers={k: TimerStat(*v.to_list()) for k, v in
                    self.timers.items()},
            origin=local_origin(),
        )


class _Span:
    """Context manager timing one stage execution."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._t0)


class _NoopSpan:
    """Shared do-nothing span used while the registry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP_SPAN = _NoopSpan()

#: Environment kill switch: ``REPRO_OBS=off`` starts the process-wide
#: registry disabled (spans and counters become no-ops).  The overhead
#: benchmark uses the in-process :meth:`MetricsRegistry.set_enabled`
#: twin to measure instrumented vs bare runs.
OBS_ENV_VAR = "REPRO_OBS"


class MetricsRegistry:
    """Process-wide metrics store; see the module docstring.

    All mutating operations are safe to call from any thread.  Active
    collection scopes (:meth:`collect`) observe every update made while
    they are open, regardless of which thread makes it — a run-level
    scope therefore captures thread-pool workers too.  The flip side:
    two *concurrent* runs in one process see each other's updates in
    their scopes; run reports are per-process, not per-caller.
    """

    #: Lock discipline, statically enforced by the ``lock-discipline``
    #: checker (:mod:`repro.analysis`): every metric table (and the
    #: active-scope list feeding them) is only touched under ``_lock``.
    #: ``_enabled`` is deliberately unguarded: a stale read of the
    #: on/off flag drops or admits one benign record, never corrupts.
    GUARDED_BY = {
        "_counters": "_lock",
        "_gauges": "_lock",
        "_timers": "_lock",
        "_scopes": "_lock",
    }

    def __init__(self, enabled: bool = True):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, TimerStat] = {}
        self._scopes: list[_Scope] = []
        self._enabled = enabled

    # -- switches -------------------------------------------------------

    def set_enabled(self, enabled: bool) -> None:
        """Turn instrumentation on or off process-wide."""
        self._enabled = bool(enabled)

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- recording ------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (atomic under the lock)."""
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value
            for scope in self._scopes:
                scope.counters[name] = scope.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest observed ``value``."""
        if not self._enabled:
            return
        with self._lock:
            self._gauges[name] = value
            for scope in self._scopes:
                scope.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Fold one duration into timer ``name``."""
        if not self._enabled:
            return
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.observe(seconds)
            for scope in self._scopes:
                sstat = scope.timers.get(name)
                if sstat is None:
                    sstat = scope.timers[name] = TimerStat()
                sstat.observe(seconds)

    def span(self, name: str):
        """Context manager timing one execution of stage ``name``."""
        if not self._enabled:
            return _NOOP_SPAN
        return _Span(self, name)

    # -- reading --------------------------------------------------------

    def counters(self, prefix: str = "") -> dict[str, float]:
        """Current counters, optionally filtered by name prefix."""
        with self._lock:
            return {
                name: value for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    def snapshot(self) -> MetricsSnapshot:
        """Point-in-time copy of everything, stamped with this process."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                timers={k: TimerStat(*v.to_list())
                        for k, v in self._timers.items()},
                origin=local_origin(),
            )

    # -- resetting ------------------------------------------------------

    def reset(self, prefix: str | None = None) -> None:
        """Zero counters/gauges/timers (all, or only a name prefix).

        Active scopes are *not* rewound: a scope records what happened
        while it was open, and a reset is not an un-happening.
        """
        with self._lock:
            if prefix is None:
                self._counters.clear()
                self._gauges.clear()
                self._timers.clear()
                return
            for table in (self._counters, self._gauges, self._timers):
                for name in [n for n in table if n.startswith(prefix)]:
                    del table[name]

    # -- scopes and remote merges ---------------------------------------

    def collect(self) -> "_CollectContext":
        """Open a collection window; ``with registry.collect() as scope``.

        The yielded scope accumulates every update made (by any thread)
        while it is open; ``scope.snapshot()`` is the delta.  Used by
        chunk jobs to capture the work a single chunk did in a worker
        process, and by :class:`~repro.core.framework.MicroGrad` to
        scope one run's report.
        """
        return _CollectContext(self)

    def merge_remote(self, snap: MetricsSnapshot | dict | None) -> bool:
        """Fold a worker's snapshot in; returns True when merged.

        Snapshots whose ``origin`` matches this process are echoes of
        work already recorded here (serial/thread chunks) and are
        skipped — merging them would double count.  Foreign snapshots
        (process-pool or distributed workers) are folded into the
        global tables *and* every active scope, so a run-level scope
        sees its workers' contributions.
        """
        if snap is None:
            return False
        if isinstance(snap, dict):
            snap = MetricsSnapshot.from_dict(snap)
        if not self._enabled or snap.is_empty():
            return False
        if snap.origin is not None and snap.origin == local_origin():
            return False
        with self._lock:
            tables = [(self._counters, self._gauges, self._timers)]
            tables += [(s.counters, s.gauges, s.timers)
                       for s in self._scopes]
            for counters, gauges, timers in tables:
                for name, value in snap.counters.items():
                    counters[name] = counters.get(name, 0) + value
                for name, value in snap.gauges.items():
                    gauges[name] = max(gauges.get(name, value), value)
                for name, stat in snap.timers.items():
                    mine = timers.get(name)
                    timers[name] = (TimerStat(*stat.to_list())
                                    if mine is None else mine.merged(stat))
        return True

    def _push_scope(self, scope: _Scope) -> None:
        with self._lock:
            self._scopes.append(scope)

    def _pop_scope(self, scope: _Scope) -> None:
        with self._lock:
            try:
                self._scopes.remove(scope)
            except ValueError:
                pass


class _CollectContext:
    __slots__ = ("_registry", "_scope")

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry
        self._scope = _Scope()

    def __enter__(self) -> _Scope:
        self._registry._push_scope(self._scope)
        return self._scope

    def __exit__(self, *exc) -> None:
        self._registry._pop_scope(self._scope)


#: The process-wide default registry every instrumented module records
#: into.  ``REPRO_OBS=off`` starts it disabled.
REGISTRY = MetricsRegistry(
    enabled=os.environ.get(OBS_ENV_VAR, "").lower()
    not in ("off", "0", "false", "no")
)


# -- module-level conveniences over the default registry ----------------

def inc(name: str, value: float = 1) -> None:
    REGISTRY.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    REGISTRY.set_gauge(name, value)


def observe(name: str, seconds: float) -> None:
    REGISTRY.observe(name, seconds)


def span(name: str):
    return REGISTRY.span(name)


def counters(prefix: str = "") -> dict[str, float]:
    return REGISTRY.counters(prefix)


def snapshot() -> MetricsSnapshot:
    return REGISTRY.snapshot()


def reset(prefix: str | None = None) -> None:
    REGISTRY.reset(prefix)


def collect() -> _CollectContext:
    return REGISTRY.collect()


def merge_remote(snap: MetricsSnapshot | dict | None) -> bool:
    return REGISTRY.merge_remote(snap)


def set_enabled(enabled: bool) -> None:
    REGISTRY.set_enabled(enabled)


def is_enabled() -> bool:
    return REGISTRY.enabled
