"""The documented metric-name table: every recordable signal, declared.

This module is the single source of truth for observability names.  The
README/DESIGN metric tables render from the same vocabulary, and the
``metric-name`` checker of :mod:`repro.analysis` statically proves that
every ``obs.inc("...")`` / ``obs.span("...")`` literal in the tree names
an entry declared here — so the documentation cannot drift from the
code, and a typo in a metric name fails lint instead of silently
splitting a counter in two.

Adding an instrumentation point is a two-line change: record it, and
declare it here with a one-line description.  Families of dynamically
composed names (the engine-path counters) are declared as *prefixes*
rather than enumerating every member.
"""

from __future__ import annotations

#: Monotonic counters (merge: sum across workers).
COUNTERS: dict[str, str] = {
    "cache.result.hits": "persistent result-cache hits",
    "cache.result.misses": "persistent result-cache misses",
    "cache.result.evictions": "result-cache entries LRU-compacted away",
    "cache.artifact.hits": "on-disk trace-artifact store hits",
    "cache.artifact.misses": "on-disk trace-artifact store misses",
    "cache.artifact.evictions": "artifact-store entries LRU-compacted away",
    "evaluator.requested": "configurations requested per batch (pre-dedup)",
    "evaluator.unique": "configurations actually dispatched (post-dedup)",
    "codegen.programs": "test-case programs generated",
    "worker.jobs_executed": "jobs a dist worker completed (incl. raising)",
    "tuner.epochs": "tuning epochs finished",
    "session.opened": "client sessions opened against a shared cluster",
    "session.closed": "client sessions closed (local count)",
    "session.jobs_submitted": "jobs submitted through a client session",
    "session.results_received": "batch results landed on a client session",
    "session.cancels": "cancel frames sent by a client session",
    "prefetch.pushed": "trace artifacts a client pushed to the cluster",
    "prefetch.received": "prefetch frames a worker received",
    "prefetch.stored": "prefetched artifacts a worker stored locally",
}

#: Counter-name *families* whose members are composed at runtime; any
#: literal or dynamic name under one of these prefixes is declared.
COUNTER_PREFIXES: dict[str, str] = {
    "engine_path.": "event-engine path selections "
                    "(see repro.sim.events.record_engine_path)",
}

#: Last/max-value gauges (merge: max across workers).  None yet.
GAUGES: dict[str, str] = {}

#: Stage-timing spans / timers (merge: counts and totals fold).
SPANS: dict[str, str] = {
    "run": "one whole MicroGrad.run() (wall clock of the run scope)",
    "codegen": "knob configuration -> assembled program",
    "trace.build": "trace expansion + dependency analysis (TraceArtifact)",
    "sim.run_many": "one multi-config simulation sweep",
    "events.memory": "per-config memory event simulation",
    "events.branch": "per-config branch event simulation",
    "events.icache": "per-config icache event simulation",
    "events.memory.batch": "config-batched shared memory event pass",
    "events.branch.batch": "config-batched shared branch event pass",
    "events.icache.batch": "config-batched shared icache event pass",
    "interval.batch": "batched interval-model cycle computation",
    "exec.chunk": "one evaluation chunk in whichever process ran it",
    "cache.result.probe": "result-cache disk probe (scandir pass)",
    "tuner.epoch": "one tuning epoch end to end",
}


def is_declared(kind: str, name: str) -> bool:
    """True when ``name`` is a declared metric of ``kind``.

    ``kind`` is ``"counter"``, ``"gauge"`` or ``"span"``.  Counters
    additionally match the declared prefix families.
    """
    if kind == "counter":
        return name in COUNTERS or any(
            name.startswith(prefix) for prefix in COUNTER_PREFIXES
        )
    if kind == "gauge":
        return name in GAUGES
    if kind == "span":
        return name in SPANS
    raise ValueError(f"unknown metric kind {kind!r}")
