"""Unified observability layer: metrics registry, spans, reports.

Usage from instrumented code::

    from repro import obs

    obs.inc("codegen.programs")
    with obs.span("trace.build"):
        ...

See :mod:`repro.obs.registry` for the data model and merge semantics,
:mod:`repro.obs.report` for run reports and cluster-status rendering.
"""

from repro.obs.registry import (
    OBS_ENV_VAR,
    REGISTRY,
    MetricsRegistry,
    MetricsSnapshot,
    TimerStat,
    collect,
    counters,
    inc,
    is_enabled,
    local_origin,
    merge_remote,
    observe,
    reset,
    set_enabled,
    set_gauge,
    snapshot,
    span,
)
from repro.obs.report import (
    ENGINE_PATH_PREFIX,
    RUN_REPORT_SCHEMA,
    build_run_report,
    format_cluster_status,
    format_run_report,
)

__all__ = [
    "ENGINE_PATH_PREFIX",
    "OBS_ENV_VAR",
    "REGISTRY",
    "RUN_REPORT_SCHEMA",
    "MetricsRegistry",
    "MetricsSnapshot",
    "TimerStat",
    "build_run_report",
    "collect",
    "counters",
    "format_cluster_status",
    "format_run_report",
    "inc",
    "is_enabled",
    "local_origin",
    "merge_remote",
    "observe",
    "reset",
    "set_enabled",
    "set_gauge",
    "snapshot",
    "span",
]
