"""Client side of the session protocol: one tenant of a shared cluster.

A :class:`ClientSession` connects to a *persistent* coordinator
(``repro.cli serve``) the way a worker does — one TCP connection, a
``hello``, heartbeats — but with ``role: "client"``: the coordinator
opens a job namespace for it, schedules its ``submit`` frames fairly
against every other session, and pushes each result back as a
``batch_result`` the moment it lands.  Nothing about the cluster is
owned by this process; many sessions from many machines multiplex the
same worker fleet concurrently.

The API mirrors the :class:`~repro.dist.coordinator.Coordinator` future
store (:meth:`submit` / :meth:`wait_next` / :meth:`as_completed` /
:meth:`cancel`), so :class:`~repro.dist.backend.DistributedBackend` can
drive either transparently.  Job identifiers here are client-chosen
*tags*; the coordinator maps them to its own global job ids internally.

Liveness is symmetric to the worker side: a heartbeat thread pings so
the coordinator never evicts a busy session, and a receiver thread
notices coordinator EOF/shutdown and fails pending waits loudly.  The
empty-cluster grace (``worker_grace``) is enforced client-side from the
worker counts in periodic ``status_reply`` probes.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from repro import obs
from repro.dist.protocol import (
    FRAME_TYPES,
    MSG_AUTH_REJECT,
    MSG_BATCH_RESULT,
    MSG_CANCEL,
    MSG_HELLO,
    MSG_PONG,
    MSG_PREFETCH,
    MSG_SHUTDOWN,
    MSG_STATUS_REPLY,
    MSG_STATUS_REQUEST,
    MSG_SUBMIT,
    PROTOCOL_VERSION,
    ReceiveTimeout,
    client_handshake,
    connect,
    dumps_payload,
    recv_msg,
    send_msg,
)
from repro.dist.worker import WORKER_HEARTBEAT_S, _heartbeat_loop

#: Default empty-cluster grace, matching the coordinator-side value.
DEFAULT_WORKER_GRACE_S = 60.0

#: How often a blocked wait re-probes the cluster status (worker
#: counts drive the empty-cluster grace).
_STATUS_PROBE_S = 2.0

#: How long :meth:`ClientSession.start` waits for the first status
#: reply — this is what surfaces an auth rejection at open time
#: instead of on the first result wait.
_HELLO_WAIT_S = 5.0


class ClientSession:
    """One client session against a persistent coordinator.

    Args:
        addr: coordinator ``host:port`` (a ``repro.cli serve`` instance).
        session: session name shown in ``repro.cli status`` rows
            (defaults to ``host-pid``).
        priority: fair-share weight; a priority-2 session receives
            twice the dispatch slots of a priority-1 session under
            contention.
        secret: shared secret when the coordinator requires auth;
            defaults to ``$REPRO_DIST_SECRET``.
        heartbeat_s: ping interval proving this session alive (a silent
            session is evicted and garbage-collected server-side).
        connect_timeout: TCP connect timeout per attempt.
        connect_retry_s: how long to retry refused connections.
    """

    #: Lock discipline, statically enforced by the ``lock-discipline``
    #: checker (:mod:`repro.analysis`): outcomes, the status snapshot
    #: and the lifecycle flags are shared between the receiver thread
    #: and caller threads.
    GUARDED_BY = {
        "_outcomes": "_cv",
        "_next_tag": "_cv",
        "_report": "_cv",
        "_workers_live": "_cv",
        "_error": "_cv",
        "_closed": "_cv",
    }

    def __init__(self, addr: str, session: str | None = None,
                 priority: float = 1.0, secret: str | None = None,
                 heartbeat_s: float = WORKER_HEARTBEAT_S,
                 connect_timeout: float = 10.0,
                 connect_retry_s: float = 0.0):
        if priority <= 0:
            raise ValueError("session priority must be > 0")
        self.addr = addr
        self.session_name = session \
            or f"{socket.gethostname()}-{os.getpid()}"
        self.priority = priority
        self.secret = (secret or os.environ.get("REPRO_DIST_SECRET")
                       or None)
        self.heartbeat_s = heartbeat_s
        self.connect_timeout = connect_timeout
        self.connect_retry_s = connect_retry_s
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._cv = threading.Condition()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        #: tag -> ("ok", payload_bytes) | ("error", text)
        self._outcomes: dict[int, tuple[str, object]] = {}
        self._next_tag = 0
        self._report: dict | None = None
        self._workers_live: int | None = None
        self._error: str | None = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ClientSession":
        """Connect, hello as a client, start the service threads."""
        if self._sock is not None:
            return self
        sock = connect(self.addr, timeout=self.connect_timeout,
                       retry_for=self.connect_retry_s)
        client_handshake(sock, {
            "type": MSG_HELLO,
            "worker": self.session_name,
            "session": self.session_name,
            "role": "client",
            "proto": PROTOCOL_VERSION,
            "heartbeat": self.heartbeat_s,
            "priority": self.priority,
        }, secret=self.secret)
        self._sock = sock
        receiver = threading.Thread(
            target=self._receive_loop, name="dist-session-recv",
            daemon=True,
        )
        receiver.start()
        self._threads.append(receiver)
        if self.heartbeat_s and self.heartbeat_s > 0:
            heartbeat = threading.Thread(
                target=_heartbeat_loop,
                args=(sock, self._send_lock, float(self.heartbeat_s),
                      self._stop),
                name="dist-session-heartbeat", daemon=True,
            )
            heartbeat.start()
            self._threads.append(heartbeat)
        obs.inc("session.opened")
        # Prime the status snapshot (worker counts feed chunk hints and
        # the empty-cluster grace).  This round-trip is also what
        # surfaces an auth rejection here, at open time, instead of on
        # the first result wait.
        self._send_best_effort({"type": MSG_STATUS_REQUEST})
        deadline = time.monotonic() + _HELLO_WAIT_S
        with self._cv:
            while (self._report is None and self._error is None
                   and time.monotonic() < deadline):
                self._cv.wait(timeout=0.05)
            error = self._error
        if error is not None:
            self.close()
            raise RuntimeError(error)
        return self

    def close(self) -> None:
        """Disconnect; the coordinator garbage-collects the session."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        self._stop.set()
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
            obs.inc("session.closed")
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []

    def __enter__(self) -> "ClientSession":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission API (mirrors Coordinator) ---------------------------

    def submit(self, payload: bytes) -> int:
        """Enqueue one pickled job; returns its session-local tag."""
        with self._cv:
            if self._closed:
                raise RuntimeError("client session is closed")
            if self._error is not None:
                raise RuntimeError(self._error)
            tag = self._next_tag
            self._next_tag += 1
        self._send({"type": MSG_SUBMIT, "job": tag}, payload)
        obs.inc("session.jobs_submitted")
        return tag

    def cancel(self, tags=None) -> None:
        """Cancel jobs (``None`` = all of this session's) and drop
        their outcomes — queued jobs never dispatch, leased ones run
        out and their results are discarded server-side."""
        header: dict = {"type": MSG_CANCEL}
        if tags is not None:
            header["jobs"] = [int(tag) for tag in tags]
        self._send_best_effort(header)
        obs.inc("session.cancels")
        with self._cv:
            if tags is None:
                self._outcomes.clear()
            else:
                for tag in header["jobs"]:
                    self._outcomes.pop(tag, None)

    def prefetch(self, artifact) -> None:
        """Push one :class:`~repro.sim.artifact.TraceArtifact` for the
        coordinator to fan out to every worker, current and future."""
        self._send_best_effort({
            "type": MSG_PREFETCH,
            "fingerprint": str(getattr(artifact, "fingerprint", "")),
            "instructions": int(getattr(artifact, "instructions", 0)),
        }, dumps_payload(artifact))
        obs.inc("prefetch.pushed")

    def wait_next(
        self,
        tags,
        timeout: float | None = None,
        worker_grace: float = DEFAULT_WORKER_GRACE_S,
    ) -> tuple[int, tuple[str, object]]:
        """Block until *one* of ``tags`` resolves; return it.

        Same contract as :meth:`Coordinator.wait_next`: ``TimeoutError``
        when ``timeout`` elapses, ``RuntimeError`` when the session
        breaks (coordinator gone, shutdown, auth) or the cluster stays
        empty for ``worker_grace`` seconds.
        """
        tags = list(tags)
        if not tags:
            raise ValueError("wait_next needs at least one job tag")
        deadline = None if timeout is None else time.monotonic() + timeout
        empty_since: float | None = None
        last_probe = 0.0
        while True:
            with self._cv:
                for tag in tags:
                    outcome = self._outcomes.get(tag)
                    if outcome is not None:
                        return tag, outcome
                error = self._error
                closed = self._closed
                workers = self._workers_live
            if error is not None:
                raise RuntimeError(error)
            if closed:
                raise RuntimeError("client session is closed")
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                raise TimeoutError(
                    f"{len(tags)} distributed jobs still pending"
                )
            if workers is None or workers > 0:
                empty_since = None
            elif empty_since is None:
                empty_since = now
            if empty_since is not None \
                    and now - empty_since >= worker_grace:
                raise RuntimeError(
                    f"no worker connected to {self.addr} for "
                    f"{worker_grace:.0f}s with {len(tags)} jobs pending; "
                    f"start workers with "
                    f"'python -m repro.cli worker --addr {self.addr}'"
                )
            if now - last_probe >= _STATUS_PROBE_S:
                last_probe = now
                self._send_best_effort({"type": MSG_STATUS_REQUEST})
            waits = [0.25]
            if deadline is not None:
                waits.append(deadline - now)
            if empty_since is not None:
                waits.append(empty_since + worker_grace - now)
            with self._cv:
                if all(self._outcomes.get(tag) is None for tag in tags):
                    self._cv.wait(timeout=max(0.01, min(waits)))

    def as_completed(
        self,
        tags,
        timeout: float | None = None,
        worker_grace: float = DEFAULT_WORKER_GRACE_S,
    ):
        """Yield ``(tag, outcome)`` as results land, in landing order."""
        deadline = None if timeout is None else time.monotonic() + timeout
        pending = list(dict.fromkeys(tags))  # de-dup, keep order
        while pending:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            tag, outcome = self.wait_next(
                pending, timeout=remaining, worker_grace=worker_grace
            )
            pending.remove(tag)
            yield tag, outcome

    def workers_live(self) -> int | None:
        """Worker count from the latest status probe (``None`` = no
        probe has answered yet)."""
        with self._cv:
            return self._workers_live

    # -- wire -----------------------------------------------------------

    def _send(self, header: dict, payload: bytes | None = None) -> None:
        sock = self._sock
        if sock is None:
            raise RuntimeError("client session is not connected")
        with self._send_lock:
            send_msg(sock, header, payload)

    def _send_best_effort(self, header: dict,
                          payload: bytes | None = None) -> None:
        try:
            self._send(header, payload)
        except (RuntimeError, ConnectionError, OSError):
            pass  # the receiver thread reports the broken link

    def _fail(self, message: str) -> None:
        with self._cv:
            if self._error is None and not self._closed:
                self._error = message
            self._cv.notify_all()

    def _receive_loop(self) -> None:
        """Dispatch coordinator frames until EOF or close."""
        sock = self._sock
        assert sock is not None
        try:
            while True:
                try:
                    header, payload = recv_msg(sock, timeout=0.25)
                except ReceiveTimeout:
                    with self._cv:
                        if self._closed:
                            return
                    continue
                kind = header.get("type")
                if kind == MSG_BATCH_RESULT:
                    try:
                        tag = int(header.get("job", -1))
                    except (TypeError, ValueError):
                        continue
                    if str(header.get("status", "error")) == "ok":
                        outcome: tuple[str, object] = ("ok", payload)
                    else:
                        outcome = ("error", str(
                            header.get("error", "unknown error")
                        ))
                    obs.inc("session.results_received")
                    with self._cv:
                        self._outcomes[tag] = outcome
                        self._cv.notify_all()
                elif kind == MSG_STATUS_REPLY:
                    report = header.get("report")
                    report = report if isinstance(report, dict) else {}
                    workers = report.get("workers")
                    with self._cv:
                        self._report = report
                        self._workers_live = (
                            len(workers) if isinstance(workers, list)
                            else 0
                        )
                        self._cv.notify_all()
                elif kind == MSG_SHUTDOWN:
                    self._fail(
                        f"coordinator at {self.addr} shut down with "
                        "this session active"
                    )
                    return
                elif kind == MSG_AUTH_REJECT:
                    self._fail(
                        "coordinator rejected this session: "
                        f"{header.get('error', 'authentication failed')}"
                        " (set --dist-secret / REPRO_DIST_SECRET to the"
                        " serve secret)"
                    )
                    return
                elif kind == MSG_PONG or kind in FRAME_TYPES:
                    pass  # heartbeat replies; frames not for clients
                else:
                    pass  # additive protocol: ignore unknown types
        except (ConnectionError, OSError):
            self._fail(f"connection to coordinator at {self.addr} lost")
