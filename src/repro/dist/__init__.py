"""Distributed evaluation service: coordinator, workers, wire protocol.

The execution stack below :class:`~repro.tuning.evaluator.Evaluator` tops
out at one machine's process pool; this package removes that ceiling.  A
:class:`~repro.dist.coordinator.Coordinator` owns per-session job queues
and leases jobs to :mod:`~repro.dist.worker` loops over a length-prefixed
JSON+pickle TCP protocol (:mod:`~repro.dist.protocol`); a worker that
dies mid-job has its leases rescheduled, so results are bit-identical to
a serial run no matter how many workers join, leave, or crash.

The coordinator is multi-tenant: ``python -m repro.cli serve`` runs one
as a persistent always-on cluster, and any number of
:class:`~repro.dist.client.ClientSession` tenants (the
``backend=dist --dist-addr`` path) submit batches concurrently.  A
stride scheduler interleaves dispatch across sessions proportionally to
each one's ``priority``, an optional shared secret gates joins behind an
HMAC challenge, and clients can prefetch trace artifacts to the worker
fleet before their first batch.

:class:`~repro.dist.backend.DistributedBackend` wraps it all as a
drop-in :class:`~repro.exec.backend.ExecutionBackend` (``backend=dist``),
so every tuner and use case gets multi-host fan-out with zero call-site
changes.  Workers join from anywhere: ``python -m repro.cli worker
--addr host:port``.
"""

from repro.dist.backend import DistributedBackend
from repro.dist.client import ClientSession
from repro.dist.coordinator import Coordinator
from repro.dist.status import fetch_cluster_status
from repro.dist.worker import run_worker

__all__ = [
    "ClientSession",
    "Coordinator",
    "DistributedBackend",
    "fetch_cluster_status",
    "run_worker",
]
