"""Worker side of the distributed evaluation service.

A worker is a single loop: connect to the coordinator, announce itself,
then pull one job at a time — each job is a pickled ``(fn, item)`` pair,
typically :func:`repro.exec.jobs._evaluate_chunk` bound to a platform
clone plus a chunk of knob configurations — execute it against this
process's local state, and stream the pickled result back.  Exceptions
travel back as ``error`` frames with the full traceback, so a bad knob
configuration surfaces in the tuning process instead of silently
stalling the queue.

Liveness (protocol 2): a daemon thread sends a ``ping`` every
``heartbeat_s`` seconds — on the same socket, so a worker that is busy
inside a long job still proves it is alive, and the coordinator's lease
monitor only reschedules jobs whose worker has actually gone silent or
livelocked.  The job request itself *blocks*: instead of the v1
50 Hz ``request``/``idle`` poll, a v2 worker sends one ``request`` and
waits until the coordinator answers with a ``job`` the moment one is
enqueued.  ``heartbeat_s=0`` selects the legacy v1 polling behavior.

Workers are launched either by ``python -m repro.cli worker --addr
host:port`` (any machine that can reach the coordinator) or spawned
locally by :class:`WorkerPool` /
:class:`~repro.dist.backend.DistributedBackend`.  With a ``cache_dir``,
the worker attaches the shared on-disk
:class:`~repro.sim.artifact.DiskArtifactStore` before its first job, so
every worker on the cluster reuses each trace artifact instead of
recomputing it per process.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
import traceback

from repro import obs
from repro.dist.protocol import (
    MSG_AUTH_REJECT,
    MSG_ERROR,
    MSG_HELLO,
    MSG_IDLE,
    MSG_JOB,
    MSG_PING,
    MSG_PONG,
    MSG_PREFETCH,
    MSG_REQUEST,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_STATUS,
    PROTOCOL_VERSION,
    ReceiveTimeout,
    client_handshake,
    connect,
    dumps_payload,
    loads_payload,
    recv_msg,
    send_msg,
)

#: Seconds a v1 worker sleeps after an ``idle`` reply before
#: re-requesting (legacy polling mode, ``heartbeat_s=0``).
IDLE_POLL_S = 0.02

#: Default heartbeat interval.  The coordinator evicts after
#: :data:`repro.dist.coordinator.DEFAULT_HEARTBEAT_TIMEOUT_S` of
#: silence, so this leaves an order of magnitude of slack.
WORKER_HEARTBEAT_S = 2.0

#: A v2 worker that has heard *nothing* (no pong, no job) for this many
#: heartbeat intervals concludes the coordinator is gone — its own pings
#: elicit pongs, so a healthy link is never silent this long.
_COORDINATOR_SILENCE_FACTOR = 10.0


def _heartbeat_loop(sock: socket.socket, send_lock: threading.Lock,
                    interval_s: float, stop: threading.Event,
                    status_fn=None) -> None:
    """Send ``ping`` frames until stopped or the socket dies.

    With ``status_fn`` (a callable returning the ``status`` frame header
    fields, or ``None`` to skip a beat), each ping is followed by a
    ``status`` frame — the worker's metrics snapshot piggybacks on the
    liveness cadence instead of needing its own timer or connection.
    """
    while not stop.wait(interval_s):
        try:
            with send_lock:
                send_msg(sock, {"type": MSG_PING})
            if status_fn is not None:
                status = status_fn()
                if status:
                    with send_lock:
                        send_msg(sock, dict(status, type=MSG_STATUS))
        except (ConnectionError, OSError):
            return


def run_worker(
    addr: str,
    name: str | None = None,
    cache_dir: str | None = None,
    cache_max_entries: int | None = None,
    connect_retry_s: float = 10.0,
    max_jobs: int | None = None,
    heartbeat_s: float = WORKER_HEARTBEAT_S,
    stop: threading.Event | None = None,
    secret: str | None = None,
) -> int:
    """Serve jobs from the coordinator at ``addr`` until shutdown.

    Args:
        addr: coordinator ``host:port``.
        name: worker name announced to the coordinator (defaults to
            ``host-pid``).
        cache_dir: shared cache directory; enables the on-disk trace
            artifact store (under ``<cache_dir>/artifacts``) exactly as
            the tuning process does.
        cache_max_entries: artifact-store entry cap (LRU compaction).
        connect_retry_s: how long to keep retrying the initial connect —
            workers routinely start before the coordinator binds.
        max_jobs: exit after this many jobs (test hook; ``None`` serves
            until shutdown).
        heartbeat_s: ``ping`` interval; ``0`` disables heartbeats and
            falls back to the v1 ``request``/``idle`` polling protocol.
        stop: optional event for a graceful drain — the worker finishes
            the job in hand, then disconnects instead of taking more.
        secret: shared secret for a coordinator serving an untrusted
            interface (``repro.cli serve --serve-secret``); the worker
            answers the ``auth_challenge`` in its hello.  Defaults to
            ``$REPRO_DIST_SECRET``.

    Returns:
        The number of jobs executed (including ones that raised).
    """
    if cache_dir:
        from repro.sim.artifact import attach_artifact_store

        attach_artifact_store(
            os.path.join(cache_dir, "artifacts"),
            max_entries=cache_max_entries,
        )
    worker_name = name or f"{socket.gethostname()}-{os.getpid()}"
    heartbeating = heartbeat_s and heartbeat_s > 0
    proto = PROTOCOL_VERSION if heartbeating else 1
    secret = secret or os.environ.get("REPRO_DIST_SECRET") or None
    sock = connect(addr, retry_for=connect_retry_s)
    send_lock = threading.Lock()
    stop = stop if stop is not None else threading.Event()
    heartbeat: threading.Thread | None = None
    # Shared with the heartbeat thread, which reports it in ``status``
    # frames (a list, not an int, so both threads see updates).
    executed_box = [0]
    try:
        with send_lock:
            client_handshake(sock, {
                "type": MSG_HELLO, "worker": worker_name, "proto": proto,
                "heartbeat": heartbeat_s if heartbeating else 0,
            }, secret=secret)
        if heartbeating:
            def _status() -> dict:
                return {
                    "jobs_executed": executed_box[0],
                    "metrics": obs.snapshot().to_dict(),
                }

            heartbeat = threading.Thread(
                target=_heartbeat_loop,
                args=(sock, send_lock, float(heartbeat_s), stop, _status),
                name="dist-heartbeat", daemon=True,
            )
            heartbeat.start()
        silence_limit = (heartbeat_s * _COORDINATOR_SILENCE_FACTOR
                         if heartbeating else None)
        while (max_jobs is None or executed_box[0] < max_jobs) \
                and not stop.is_set():
            with send_lock:
                send_msg(sock, {"type": MSG_REQUEST})
            frame = _await_reply(sock, heartbeating, silence_limit, stop)
            if frame is None:  # stop requested / coordinator silent
                break
            header, payload = frame
            kind = header.get("type")
            if kind == MSG_SHUTDOWN:
                break
            if kind == MSG_IDLE:  # v1 polling mode only
                time.sleep(IDLE_POLL_S)
                continue
            if kind != MSG_JOB:
                raise ConnectionError(f"unexpected frame {header!r}")
            job_id = int(header["job"])
            executed_box[0] += 1
            obs.inc("worker.jobs_executed")
            # A stop request mid-job drains: the job in hand always
            # finishes and its result is sent before disconnecting.
            try:
                fn, item = loads_payload(payload or b"")
                result = fn(item)
            except BaseException as exc:  # noqa: BLE001 — travels to caller
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                with send_lock:
                    send_msg(
                        sock,
                        {
                            "type": MSG_ERROR,
                            "job": job_id,
                            "error": "".join(
                                traceback.format_exception(exc)
                            ).strip(),
                        },
                    )
            else:
                with send_lock:
                    send_msg(
                        sock,
                        {"type": MSG_RESULT, "job": job_id},
                        dumps_payload(result),
                    )
    except (ConnectionError, OSError):
        # Coordinator went away: treat as shutdown.  Anything this
        # worker held leased will be rescheduled on its side.
        pass
    finally:
        stop.set()
        if heartbeat is not None:
            heartbeat.join(timeout=2.0)
        try:
            sock.close()
        except OSError:
            pass
    return executed_box[0]


def _await_reply(sock, heartbeating: bool, silence_limit: float | None,
                 stop: threading.Event):
    """Wait for the coordinator's answer to a ``request``.

    Returns the ``(header, payload)`` frame, skipping ``pong``\\ s and
    storing ``prefetch`` pushes as they stream past, or ``None`` when a
    graceful stop was requested or the coordinator has been silent past
    ``silence_limit`` (dead link with no EOF).
    """
    last_frame = time.monotonic()
    timeout = 0.25 if heartbeating else None
    while True:
        try:
            header, payload = recv_msg(sock, timeout=timeout)
        except ReceiveTimeout:
            if stop.is_set():
                return None
            silent_for = time.monotonic() - last_frame
            if silence_limit is not None and silent_for >= silence_limit:
                return None
            continue
        last_frame = time.monotonic()
        kind = header.get("type")
        if kind == MSG_PONG:
            continue
        if kind == MSG_PREFETCH:
            # Pushed artifacts arrive between the hello and the first
            # job (and whenever a client pushes mid-run): store them
            # before the next job needs the trace.
            _store_prefetched(payload)
            continue
        if kind == MSG_AUTH_REJECT:
            raise ConnectionError(
                "coordinator rejected this worker: "
                f"{header.get('error', 'authentication failed')} "
                "(is REPRO_DIST_SECRET / --secret set to the serve "
                "secret?)"
            )
        return header, payload


def _store_prefetched(payload: bytes | None) -> None:
    """Store one pushed trace artifact in the local artifact store."""
    obs.inc("prefetch.received")
    if payload is None:
        return
    from repro.sim.artifact import active_artifact_store

    try:
        artifact = loads_payload(payload)
    except Exception:  # noqa: BLE001 — a bad push must not kill the worker
        return
    store = active_artifact_store()
    if store is None or not hasattr(artifact, "fingerprint"):
        return
    try:
        store.put(artifact)
    except (OSError, ValueError, AttributeError):
        return
    obs.inc("prefetch.stored")


class WorkerPool:
    """Elastic pool of local worker processes with auto-respawn.

    The pool spawns ``count`` :func:`run_worker` processes against one
    coordinator address and then *keeps* that many alive: a monitor
    thread polls each slot and respawns any process that died — crashed
    on a poison job, OOM-killed, or torn down by a chaos test — so a
    long tuning run self-heals instead of slowly bleeding workers.

    Respawning is bounded by ``respawn_budget`` (total, across the pool
    lifetime): a systematically crashing fleet stops burning processes
    once the budget is spent, and the coordinator's poison-job attempts
    cap surfaces the underlying error.

    Args:
        addr: coordinator ``host:port`` the workers join.
        count: worker processes to keep alive.
        cache_dir / cache_max_entries: forwarded to every worker.
        respawn_budget: max respawns over the pool lifetime (``None``
            for ``2 * count + 2``; ``0`` disables respawning).
        heartbeat_s: worker heartbeat interval (0 = legacy v1 workers).
        secret: shared secret forwarded to every worker (a pool serving
            a secured ``repro.cli serve`` coordinator).
    """

    #: How often the monitor thread checks for dead workers.
    MONITOR_TICK_S = 0.2

    #: Lock discipline, statically enforced by the ``lock-discipline``
    #: checker (:mod:`repro.analysis`): the process list and the spawn/
    #: respawn accounting are shared between ``start``/``stop`` callers
    #: and the monitor thread.
    GUARDED_BY = {
        "_procs": "_lock",
        "_spawned": "_lock",
        "respawns": "_lock",
    }

    def __init__(self, addr: str, count: int,
                 cache_dir: str | None = None,
                 cache_max_entries: int | None = None,
                 respawn_budget: int | None = None,
                 heartbeat_s: float = WORKER_HEARTBEAT_S,
                 secret: str | None = None):
        if count < 1:
            raise ValueError("WorkerPool needs count >= 1")
        self.addr = addr
        self.count = count
        self.cache_dir = cache_dir
        self.cache_max_entries = cache_max_entries
        self.respawn_budget = (2 * count + 2 if respawn_budget is None
                               else respawn_budget)
        self.heartbeat_s = heartbeat_s
        self.secret = secret
        self.respawns = 0
        self._spawned = 0
        self._procs: list[multiprocessing.Process] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._monitor: threading.Thread | None = None

    def _spawn_locked(self) -> multiprocessing.Process:
        """Start one worker process (caller holds ``_lock``)."""
        index = self._spawned
        self._spawned += 1
        proc = multiprocessing.Process(
            target=run_worker,
            args=(self.addr,),
            kwargs={
                "name": f"local-{index}",
                "cache_dir": self.cache_dir,
                "cache_max_entries": self.cache_max_entries,
                "heartbeat_s": self.heartbeat_s,
                "secret": self.secret,
            },
            daemon=True,
        )
        proc.start()
        return proc

    def start(self) -> None:
        """Spawn the initial workers and the respawn monitor."""
        with self._lock:
            if self._procs:
                return
            # Append as we go: if spawn k of N raises (fork limit), the
            # k-1 already-running workers are on record for stop().
            for _ in range(self.count):
                self._procs.append(self._spawn_locked())
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="dist-pool-monitor", daemon=True
        )
        self._monitor.start()

    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for proc in self._procs if proc.is_alive())

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.MONITOR_TICK_S):
            with self._lock:
                if self._stop.is_set():
                    return
                for slot, proc in enumerate(self._procs):
                    if proc.is_alive():
                        continue
                    if self.respawns >= self.respawn_budget:
                        return  # budget spent: stop watching entirely
                    proc.join(timeout=0)  # reap the zombie
                    try:
                        self._procs[slot] = self._spawn_locked()
                    except OSError:
                        return  # host cannot fork anymore; stop trying
                    self.respawns += 1

    def stop(self) -> None:
        """Stop respawning and terminate the workers (idempotent)."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
            self._monitor = None
        with self._lock:
            procs, self._procs = self._procs, []
        for proc in procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
