"""Worker side of the distributed evaluation service.

A worker is a single loop: connect to the coordinator, announce itself,
then pull one job at a time — each job is a pickled ``(fn, item)`` pair,
typically :func:`repro.exec.jobs._evaluate_chunk` bound to a platform
clone plus a chunk of knob configurations — execute it against this
process's local state, and stream the pickled result back.  Exceptions
travel back as ``error`` frames with the full traceback, so a bad knob
configuration surfaces in the tuning process instead of silently
stalling the queue.

Workers are launched either by ``python -m repro.cli worker --addr
host:port`` (any machine that can reach the coordinator) or spawned
locally by :class:`~repro.dist.backend.DistributedBackend`.  With a
``cache_dir``, the worker attaches the shared on-disk
:class:`~repro.sim.artifact.DiskArtifactStore` before its first job, so
every worker on the cluster reuses each trace artifact instead of
recomputing it per process.
"""

from __future__ import annotations

import os
import socket
import time
import traceback

from repro.dist.protocol import (
    connect,
    dumps_payload,
    loads_payload,
    recv_msg,
    send_msg,
)

#: Seconds a worker sleeps after an ``idle`` reply before re-requesting.
IDLE_POLL_S = 0.02


def run_worker(
    addr: str,
    name: str | None = None,
    cache_dir: str | None = None,
    cache_max_entries: int | None = None,
    connect_retry_s: float = 10.0,
    max_jobs: int | None = None,
) -> int:
    """Serve jobs from the coordinator at ``addr`` until shutdown.

    Args:
        addr: coordinator ``host:port``.
        name: worker name announced to the coordinator (defaults to
            ``host-pid``).
        cache_dir: shared cache directory; enables the on-disk trace
            artifact store (under ``<cache_dir>/artifacts``) exactly as
            the tuning process does.
        cache_max_entries: artifact-store entry cap (LRU compaction).
        connect_retry_s: how long to keep retrying the initial connect —
            workers routinely start before the coordinator binds.
        max_jobs: exit after this many jobs (test hook; ``None`` serves
            until shutdown).

    Returns:
        The number of jobs executed (including ones that raised).
    """
    if cache_dir:
        from repro.sim.artifact import attach_artifact_store

        attach_artifact_store(
            os.path.join(cache_dir, "artifacts"),
            max_entries=cache_max_entries,
        )
    worker_name = name or f"{socket.gethostname()}-{os.getpid()}"
    sock = connect(addr, retry_for=connect_retry_s)
    executed = 0
    try:
        send_msg(sock, {"type": "hello", "worker": worker_name})
        while max_jobs is None or executed < max_jobs:
            send_msg(sock, {"type": "request"})
            header, payload = recv_msg(sock)
            kind = header.get("type")
            if kind == "shutdown":
                break
            if kind == "idle":
                time.sleep(IDLE_POLL_S)
                continue
            if kind != "job":
                raise ConnectionError(f"unexpected frame {header!r}")
            job_id = int(header["job"])
            executed += 1
            try:
                fn, item = loads_payload(payload or b"")
                result = fn(item)
            except BaseException as exc:  # noqa: BLE001 — travels to caller
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                send_msg(
                    sock,
                    {
                        "type": "error",
                        "job": job_id,
                        "error": "".join(
                            traceback.format_exception(exc)
                        ).strip(),
                    },
                )
            else:
                send_msg(
                    sock,
                    {"type": "result", "job": job_id},
                    dumps_payload(result),
                )
    except (ConnectionError, OSError):
        # Coordinator went away: treat as shutdown.  Anything this
        # worker held leased will be rescheduled on its side.
        pass
    finally:
        try:
            sock.close()
        except OSError:
            pass
    return executed
