"""Wire protocol of the distributed evaluation service.

Every message is one frame::

    !II header          8 bytes: (header length, payload length)
    header              UTF-8 JSON dict — message type + small fields
    payload             optional pickle bytes — programs, platforms, metrics

The JSON header keeps the control plane inspectable (a packet capture
reads as ``{"type": "job", "job": 17}``), while the payload carries the
arbitrary Python objects evaluation jobs need (platforms, generation
options, knob configurations) through the same :mod:`pickle` boundary the
process-pool backend already relies on.  Frames are self-delimiting, so
one persistent connection carries the whole worker conversation.

Message types
-------------

worker → coordinator:
    ``hello``   announce (``worker`` name, ``proto`` version, heartbeat
                interval, optional ``role``); first frame on a
                connection.  ``role: "observer"`` marks a monitoring
                client (``repro.cli status``): it is excluded from the
                worker count, job dispatch and heartbeat eviction.
    ``request`` ask for a job.
    ``result``  finished job (``job`` id) + pickled metrics payload.
    ``error``   job raised (``job`` id, ``error`` traceback text).
    ``ping``    heartbeat (protocol >= 2); proves liveness mid-job.
    ``status``  metrics snapshot (protocol >= 2), piggybacked on the
                heartbeat cadence: ``jobs_executed`` plus ``metrics``,
                a JSON :meth:`repro.obs.MetricsSnapshot.to_dict` —
                counters/gauges/timers this worker has recorded.  The
                coordinator keeps only the latest per connection.

client ↔ coordinator (observers):
    ``status_request`` ask for the cluster status.
    ``status_reply``   answer: ``report`` with per-worker rows (name,
                       proto, leases held, jobs done, seconds since the
                       last frame, latest ``status`` metrics), queue
                       depths, the coordinator's lifetime counters, and
                       the merged cluster-wide metrics snapshot.

coordinator → worker:
    ``job``      a leased job (``job`` id) + pickled ``(fn, item)``.
    ``idle``     queue empty right now; sleep briefly and re-request
                 (protocol 1 only — v2 workers block until a ``job``).
    ``pong``     heartbeat reply; proves the coordinator is alive.
    ``shutdown`` drain and disconnect.

Versioning
----------

``hello`` carries ``proto`` (:data:`PROTOCOL_VERSION`).  Version 1 peers
(no ``proto`` field) poll with ``request``/``idle`` and are presumed
alive while their TCP connection stays open; version 2 peers heartbeat
with ``ping`` and park blocked ``request``\\ s at the coordinator until
work arrives.  The coordinator speaks both, so a v1 worker can still
join a v2 cluster.
"""

from __future__ import annotations

import json
import pickle
import select
import socket
import struct
from typing import Any

#: Wire protocol generation announced in ``hello`` frames.  Version 2
#: added ``ping``/``pong`` heartbeats, blocking job requests, and the
#: additive observability frames (``status``, ``status_request``/
#: ``status_reply``, observer ``role``) — peers that never send them
#: interoperate unchanged.
PROTOCOL_VERSION = 2

# -- frame types ---------------------------------------------------------
#
# Every header ``type`` on the wire, by name.  Dispatch in
# coordinator/worker/status compares against these constants, and the
# ``frame-type`` checker (repro.analysis) proves statically that every
# ``send_msg`` header names a registered type with a matching handler.

# worker -> coordinator
MSG_HELLO = "hello"
MSG_REQUEST = "request"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_PING = "ping"                  # v2
MSG_STATUS = "status"              # v2
# observer <-> coordinator (v2)
MSG_STATUS_REQUEST = "status_request"
MSG_STATUS_REPLY = "status_reply"
# coordinator -> worker
MSG_JOB = "job"
MSG_IDLE = "idle"                  # v1 polling only
MSG_PONG = "pong"                  # v2
MSG_SHUTDOWN = "shutdown"

#: Registry of every frame type either protocol generation may carry.
#: The protocol is *additive*: an unknown type from a newer peer is
#: ignored, never an error — but everything this codebase sends or
#: dispatches on must be enumerated here.
FRAME_TYPES = frozenset({
    MSG_HELLO, MSG_REQUEST, MSG_RESULT, MSG_ERROR, MSG_PING, MSG_STATUS,
    MSG_STATUS_REQUEST, MSG_STATUS_REPLY,
    MSG_JOB, MSG_IDLE, MSG_PONG, MSG_SHUTDOWN,
})

#: (header length, payload length) frame prefix.
_FRAME = struct.Struct("!II")

#: Refuse absurd frames (corrupt prefix / non-protocol peer) before
#: allocating buffers for them.
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(ConnectionError):
    """The peer sent bytes that are not a protocol frame."""


class ReceiveTimeout(Exception):
    """No frame arrived within the receive timeout.

    Deliberately *not* a :class:`ConnectionError`: the connection is
    still healthy and the stream still aligned (no bytes were consumed),
    so the caller may simply check its own liveness state and call
    :func:`recv_msg` again.
    """


def dumps_payload(obj: Any) -> bytes:
    """Pickle one payload object for the wire."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def loads_payload(data: bytes) -> Any:
    """Unpickle one payload received from the wire."""
    return pickle.loads(data)


def send_msg(sock: socket.socket, header: dict,
             payload: bytes | None = None) -> None:
    """Send one frame (header dict + optional pickle payload)."""
    head = json.dumps(header, separators=(",", ":")).encode()
    body = payload or b""
    sock.sendall(_FRAME.pack(len(head), len(body)) + head + body)


def recv_exact(sock: socket.socket, size: int) -> bytes:
    """Read exactly ``size`` bytes; raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket,
             timeout: float | None = None) -> tuple[dict, bytes | None]:
    """Receive one frame; returns ``(header, payload-or-None)``.

    With ``timeout`` (seconds) the *idle wait* for a frame is bounded:
    if no bytes arrive within it, :class:`ReceiveTimeout` is raised and
    the call may safely be retried — this is what lets coordinator serve
    loops and worker job waits wake up periodically to check liveness
    instead of blocking until EOF.  The wait uses ``select`` readiness
    rather than ``settimeout`` deliberately: socket timeouts are
    socket-wide, so they would also bound concurrent ``send_msg`` calls
    from heartbeat/dispatch threads and could tear down a healthy
    connection on a slow link.  Once bytes are ready the frame is read
    with ordinary blocking receives (a healthy peer finishes a started
    frame promptly; a hung one is caught by the liveness layer closing
    the socket, which unblocks the read).
    """
    if timeout is not None:
        readable, _, _ = select.select([sock], [], [], timeout)
        if not readable:
            raise ReceiveTimeout("no frame within the timeout")
    head_len, body_len = _FRAME.unpack(recv_exact(sock, _FRAME.size))
    if head_len > MAX_FRAME_BYTES or body_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame sizes ({head_len}, {body_len}) exceed the protocol cap"
        )
    try:
        header = json.loads(recv_exact(sock, head_len).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unreadable frame header: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError(f"frame header has no type: {header!r}")
    payload = recv_exact(sock, body_len) if body_len else None
    return header, payload


def parse_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (host defaults to localhost)."""
    host, sep, port = addr.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"dist address must look like 'host:port', got {addr!r}"
        )
    return host or "127.0.0.1", int(port)


def format_addr(host: str, port: int) -> str:
    """``(host, port)`` → the ``"host:port"`` spelling flags use."""
    return f"{host}:{port}"


def connect(addr: str, timeout: float | None = None,
            retry_for: float = 0.0) -> socket.socket:
    """Open a worker connection to the coordinator at ``addr``.

    ``retry_for`` keeps retrying refused connections for that many
    seconds — workers routinely start before the coordinator binds.
    """
    import time

    host, port = parse_addr(addr)
    deadline = time.monotonic() + retry_for
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.settimeout(None)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)
