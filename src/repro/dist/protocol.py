"""Wire protocol of the distributed evaluation service.

Every message is one frame::

    !II header          8 bytes: (header length, payload length)
    header              UTF-8 JSON dict — message type + small fields
    payload             optional pickle bytes — programs, platforms, metrics

The JSON header keeps the control plane inspectable (a packet capture
reads as ``{"type": "job", "job": 17}``), while the payload carries the
arbitrary Python objects evaluation jobs need (platforms, generation
options, knob configurations) through the same :mod:`pickle` boundary the
process-pool backend already relies on.  Frames are self-delimiting, so
one persistent connection carries the whole worker conversation.

Message types
-------------

worker → coordinator:
    ``hello``   announce (``worker`` name, ``proto`` version, heartbeat
                interval, optional ``role``); first frame on a
                connection.  ``role: "observer"`` marks a monitoring
                client (``repro.cli status``): it is excluded from the
                worker count, job dispatch and heartbeat eviction.
    ``request`` ask for a job.
    ``result``  finished job (``job`` id) + pickled metrics payload.
    ``error``   job raised (``job`` id, ``error`` traceback text).
    ``ping``    heartbeat (protocol >= 2); proves liveness mid-job.
    ``status``  metrics snapshot (protocol >= 2), piggybacked on the
                heartbeat cadence: ``jobs_executed`` plus ``metrics``,
                a JSON :meth:`repro.obs.MetricsSnapshot.to_dict` —
                counters/gauges/timers this worker has recorded.  The
                coordinator keeps only the latest per connection.

client ↔ coordinator (observers):
    ``status_request`` ask for the cluster status.
    ``status_reply``   answer: ``report`` with per-worker rows (name,
                       proto, leases held, jobs done, seconds since the
                       last frame, latest ``status`` metrics), queue
                       depths, per-session rows, the coordinator's
                       lifetime counters, and the merged cluster-wide
                       metrics snapshot.

client → coordinator (protocol 3 sessions):
    ``submit``       enqueue one job in this client's session (``job``
                     is the client-chosen tag) + pickled ``(fn, item)``.
    ``cancel``       drop queued jobs (``jobs`` lists tags, or null for
                     every queued job of the session).  Leased jobs run
                     out their lease and their results are dropped.
    ``prefetch``     push a :class:`~repro.sim.artifact.TraceArtifact`
                     (``fingerprint``, ``instructions`` + pickled
                     artifact) for the coordinator to fan out to every
                     worker — current and future — before it is needed.

coordinator → client (protocol 3 sessions):
    ``batch_result`` one resolved job: ``job`` tag, ``status``
                     (``"ok"`` + pickled payload, or ``"error"`` +
                     ``error`` text).  Pushed the moment the job
                     resolves; the coordinator retains nothing.

auth (protocol 3, only when the coordinator holds a shared secret):
    ``auth_challenge`` first frame after accept: a ``nonce`` the peer
                       must fold into its ``hello``'s ``auth`` field
                       (HMAC-SHA256 of the nonce under the secret).
    ``auth_reject``    the ``hello`` was missing, late, or carried a
                       bad digest; the coordinator closes after this.

coordinator → worker:
    ``job``      a leased job (``job`` id) + pickled ``(fn, item)``.
    ``idle``     queue empty right now; sleep briefly and re-request
                 (protocol 1 only — v2 workers block until a ``job``).
    ``pong``     heartbeat reply; proves the coordinator is alive.
    ``shutdown`` drain and disconnect.
    ``prefetch`` a pushed trace artifact (same shape as the client
                 frame); the worker stores it before its next job.

Versioning
----------

``hello`` carries ``proto`` (:data:`PROTOCOL_VERSION`).  Version 1 peers
(no ``proto`` field) poll with ``request``/``idle`` and are presumed
alive while their TCP connection stays open; version 2 peers heartbeat
with ``ping`` and park blocked ``request``\\ s at the coordinator until
work arrives.  Version 3 added the session frames (``role: "client"``
hellos, ``submit``/``batch_result``/``cancel``/``prefetch``) and the
shared-secret challenge — all additive, so v1/v2 workers still join a
v3 cluster (they merely never see a prefetch).
"""

from __future__ import annotations

import hashlib
import hmac
import json
import pickle
import secrets
import select
import socket
import struct
from typing import Any

#: Wire protocol generation announced in ``hello`` frames.  Version 2
#: added ``ping``/``pong`` heartbeats, blocking job requests, and the
#: additive observability frames (``status``, ``status_request``/
#: ``status_reply``, observer ``role``); version 3 added client
#: sessions (``submit``/``batch_result``/``cancel``/``prefetch``) and
#: the shared-secret challenge handshake — peers that never send the
#: new frames interoperate unchanged.
PROTOCOL_VERSION = 3

# -- frame types ---------------------------------------------------------
#
# Every header ``type`` on the wire, by name.  Dispatch in
# coordinator/worker/status compares against these constants, and the
# ``frame-type`` checker (repro.analysis) proves statically that every
# ``send_msg`` header names a registered type with a matching handler.

# worker -> coordinator
MSG_HELLO = "hello"
MSG_REQUEST = "request"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_PING = "ping"                  # v2
MSG_STATUS = "status"              # v2
# observer <-> coordinator (v2)
MSG_STATUS_REQUEST = "status_request"
MSG_STATUS_REPLY = "status_reply"
# client -> coordinator (v3 sessions)
MSG_SUBMIT = "submit"
MSG_CANCEL = "cancel"
MSG_PREFETCH = "prefetch"          # also coordinator -> worker
# coordinator -> client (v3 sessions)
MSG_BATCH_RESULT = "batch_result"
# auth handshake (v3, secret-holding coordinators only)
MSG_AUTH_CHALLENGE = "auth_challenge"
MSG_AUTH_REJECT = "auth_reject"
# coordinator -> worker
MSG_JOB = "job"
MSG_IDLE = "idle"                  # v1 polling only
MSG_PONG = "pong"                  # v2
MSG_SHUTDOWN = "shutdown"

#: Registry of every frame type any protocol generation may carry.
#: The protocol is *additive*: an unknown type from a newer peer is
#: ignored, never an error — but everything this codebase sends or
#: dispatches on must be enumerated here.
FRAME_TYPES = frozenset({
    MSG_HELLO, MSG_REQUEST, MSG_RESULT, MSG_ERROR, MSG_PING, MSG_STATUS,
    MSG_STATUS_REQUEST, MSG_STATUS_REPLY,
    MSG_SUBMIT, MSG_CANCEL, MSG_PREFETCH, MSG_BATCH_RESULT,
    MSG_AUTH_CHALLENGE, MSG_AUTH_REJECT,
    MSG_JOB, MSG_IDLE, MSG_PONG, MSG_SHUTDOWN,
})

#: (header length, payload length) frame prefix.
_FRAME = struct.Struct("!II")

#: Refuse absurd frames (corrupt prefix / non-protocol peer) before
#: allocating buffers for them.
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(ConnectionError):
    """The peer sent bytes that are not a protocol frame."""


class ReceiveTimeout(Exception):
    """No frame arrived within the receive timeout.

    Deliberately *not* a :class:`ConnectionError`: the connection is
    still healthy and the stream still aligned (no bytes were consumed),
    so the caller may simply check its own liveness state and call
    :func:`recv_msg` again.
    """


def dumps_payload(obj: Any) -> bytes:
    """Pickle one payload object for the wire."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def loads_payload(data: bytes) -> Any:
    """Unpickle one payload received from the wire."""
    return pickle.loads(data)


def send_msg(sock: socket.socket, header: dict,
             payload: bytes | None = None) -> None:
    """Send one frame (header dict + optional pickle payload)."""
    head = json.dumps(header, separators=(",", ":")).encode()
    body = payload or b""
    sock.sendall(_FRAME.pack(len(head), len(body)) + head + body)


def recv_exact(sock: socket.socket, size: int) -> bytes:
    """Read exactly ``size`` bytes; raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket,
             timeout: float | None = None) -> tuple[dict, bytes | None]:
    """Receive one frame; returns ``(header, payload-or-None)``.

    With ``timeout`` (seconds) the *idle wait* for a frame is bounded:
    if no bytes arrive within it, :class:`ReceiveTimeout` is raised and
    the call may safely be retried — this is what lets coordinator serve
    loops and worker job waits wake up periodically to check liveness
    instead of blocking until EOF.  The wait uses ``select`` readiness
    rather than ``settimeout`` deliberately: socket timeouts are
    socket-wide, so they would also bound concurrent ``send_msg`` calls
    from heartbeat/dispatch threads and could tear down a healthy
    connection on a slow link.  Once bytes are ready the frame is read
    with ordinary blocking receives (a healthy peer finishes a started
    frame promptly; a hung one is caught by the liveness layer closing
    the socket, which unblocks the read).
    """
    if timeout is not None:
        readable, _, _ = select.select([sock], [], [], timeout)
        if not readable:
            raise ReceiveTimeout("no frame within the timeout")
    head_len, body_len = _FRAME.unpack(recv_exact(sock, _FRAME.size))
    if head_len > MAX_FRAME_BYTES or body_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame sizes ({head_len}, {body_len}) exceed the protocol cap"
        )
    try:
        header = json.loads(recv_exact(sock, head_len).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unreadable frame header: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError(f"frame header has no type: {header!r}")
    payload = recv_exact(sock, body_len) if body_len else None
    return header, payload


def parse_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (host defaults to localhost)."""
    host, sep, port = addr.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"dist address must look like 'host:port', got {addr!r}"
        )
    return host or "127.0.0.1", int(port)


def format_addr(host: str, port: int) -> str:
    """``(host, port)`` → the ``"host:port"`` spelling flags use."""
    return f"{host}:{port}"


def connect(addr: str, timeout: float | None = None,
            retry_for: float = 0.0) -> socket.socket:
    """Open a worker connection to the coordinator at ``addr``.

    ``retry_for`` keeps retrying refused connections for that many
    seconds — workers routinely start before the coordinator binds.
    """
    import time

    host, port = parse_addr(addr)
    deadline = time.monotonic() + retry_for
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.settimeout(None)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


# -- shared-secret auth (protocol 3) --------------------------------------
#
# A coordinator serving an untrusted interface holds a shared secret.
# On accept it sends ``auth_challenge`` with a fresh nonce; the peer's
# ``hello`` must carry ``auth``, the HMAC-SHA256 digest of that nonce
# under the secret.  The secret itself never crosses the wire, and a
# replayed hello fails against the next connection's fresh nonce.

#: How long a peer connecting to a possibly-secured coordinator waits
#: for the challenge before concluding the interface is open.  An open
#: coordinator sends nothing on accept, so this wait is pure latency
#: only when a ``secret`` was configured client-side but not server-side
#: (a misconfiguration that fails loud soon after anyway).
AUTH_CHALLENGE_WAIT_S = 2.0


def make_nonce() -> str:
    """A fresh per-connection challenge nonce."""
    return secrets.token_hex(16)


def auth_digest(secret: str, nonce: str) -> str:
    """HMAC-SHA256 answer to an ``auth_challenge`` nonce."""
    return hmac.new(
        secret.encode(), nonce.encode(), hashlib.sha256
    ).hexdigest()


def client_handshake(sock: socket.socket, hello: dict,
                     secret: str | None = None) -> None:
    """Send the ``hello``, answering an ``auth_challenge`` if one comes.

    Every connecting peer (worker, observer, client session) funnels
    through here.  With a ``secret``, the peer waits briefly for the
    coordinator's challenge and folds the digest into its hello;
    without one it hellos immediately — an open coordinator never
    challenges, so the common case costs nothing.
    """
    if secret:
        try:
            header, _ = recv_msg(sock, timeout=AUTH_CHALLENGE_WAIT_S)
        except ReceiveTimeout:
            header = None
        if header is not None and header.get("type") == MSG_AUTH_CHALLENGE:
            nonce = str(header.get("nonce", ""))
            hello = dict(hello, auth=auth_digest(secret, nonce))
    send_msg(sock, hello)
