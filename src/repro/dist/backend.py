"""``DistributedBackend``: the coordinator/worker pair as an ExecutionBackend.

Selecting ``backend=dist`` gives every tuner and use case multi-host
fan-out with zero call-site changes: the backend starts a
:class:`~repro.dist.coordinator.Coordinator` inside the tuning process
(bound to ``--dist-addr``, or an ephemeral loopback port), optionally
spawns ``--dist-workers`` local worker processes, and then behaves
exactly like every other backend — ``map(fn, items)`` in, ordered
results out, bit-identical to serial execution.  Remote machines join
the same run with ``python -m repro.cli worker --addr host:port``.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Sequence

from repro.dist.coordinator import Coordinator
from repro.dist.protocol import dumps_payload, loads_payload, parse_addr
from repro.dist.worker import run_worker

# Safe despite repro.exec.__init__ importing this module eagerly:
# repro.exec.backend itself only imports repro.dist lazily (inside the
# backend_for factory), so the module graph stays acyclic.
from repro.exec.backend import CacheSettingsMixin


def _default_local_workers() -> int:
    return max(1, (os.cpu_count() or 2) - 1)


class DistributedBackend(CacheSettingsMixin):
    """Fan items out to workers connected over the dist protocol.

    Args:
        jobs: chunking hint for callers (defaults to the worker count).
        addr: ``host:port`` the coordinator binds; ``None`` picks an
            ephemeral loopback port (purely local fan-out).
        spawn_workers: local worker processes to launch; ``0`` expects
            external workers to join (``repro.cli worker``).
        cache_dir: shared cache directory handed to spawned workers (and
            used locally) for the on-disk trace artifact store.
        cache_max_entries: artifact/result store entry cap.
        worker_grace: seconds ``map`` waits for a first worker before
            failing a run pointed at an empty cluster.

    If the host cannot bind sockets or spawn processes at all
    (restricted sandboxes), the backend degrades to serial in-process
    execution — results are identical either way, only slower.
    """

    def __init__(
        self,
        jobs: int | None = None,
        addr: str | None = None,
        spawn_workers: int | None = None,
        cache_dir: str | None = None,
        cache_max_entries: int | None = None,
        worker_grace: float = 60.0,
    ):
        if spawn_workers is None:
            # Nothing to connect remotely and nothing local would
            # deadlock; default to local fan-out when no addr is given.
            spawn_workers = 0 if addr else _default_local_workers()
        self.spawn_workers = spawn_workers
        self.jobs = jobs if jobs and jobs > 0 else (
            spawn_workers or _default_local_workers()
        )
        self.addr = addr
        self._set_cache(cache_dir, cache_max_entries)
        self.worker_grace = worker_grace
        self.name = (
            f"dist[{self.jobs}]" if addr is None
            else f"dist[{self.jobs}]@{addr}"
        )
        self.coordinator: Coordinator | None = None
        self._workers: list[multiprocessing.Process] = []
        self._broken = False

    # -- lifecycle ------------------------------------------------------

    def _ensure_started(self) -> Coordinator | None:
        if self._broken:
            return None
        if self.coordinator is not None:
            return self.coordinator
        host, port = ("127.0.0.1", 0) if self.addr is None \
            else parse_addr(self.addr)
        coordinator = Coordinator(host=host, port=port)
        try:
            bound = coordinator.start()
        except OSError as exc:
            if self.addr is not None:
                # The user asked for this address (remote workers will
                # point at it): failing to bind must be loud, not a
                # silent single-core fallback.
                raise RuntimeError(
                    f"cannot bind dist coordinator at {self.addr}: {exc}"
                ) from exc
            self._broken = True
            return None
        try:
            for index in range(self.spawn_workers):
                proc = multiprocessing.Process(
                    target=run_worker,
                    args=(bound,),
                    kwargs={
                        "name": f"local-{index}",
                        "cache_dir": self.cache_dir,
                        "cache_max_entries": self.cache_max_entries,
                    },
                    daemon=True,
                )
                proc.start()
                self._workers.append(proc)
        except (OSError, PermissionError) as exc:
            coordinator.shutdown()
            self._reap_workers()
            if self.addr is not None:
                raise RuntimeError(
                    f"cannot spawn local dist workers for {self.addr}: {exc}"
                ) from exc
            self._broken = True
            return None
        self.coordinator = coordinator
        return coordinator

    def _reap_workers(self) -> None:
        for proc in self._workers:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._workers.clear()

    def close(self) -> None:
        if self.coordinator is not None:
            self.coordinator.shutdown()
            self.coordinator = None
        self._reap_workers()

    def __enter__(self) -> "DistributedBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # -- execution ------------------------------------------------------

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item via the cluster, in input order."""
        items = list(items)
        if not items:
            return []
        coordinator = self._ensure_started()
        if coordinator is None:
            return [fn(item) for item in items]
        job_ids = [
            coordinator.submit(dumps_payload((fn, item))) for item in items
        ]
        try:
            outcomes = coordinator.wait(
                job_ids, worker_grace=self.worker_grace
            )
        finally:
            coordinator.forget(job_ids)
        results = []
        for outcome, value in outcomes:
            if outcome != "ok":
                raise RuntimeError(f"distributed job failed:\n{value}")
            results.append(loads_payload(value))
        return results
