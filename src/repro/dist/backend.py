"""``DistributedBackend``: the coordinator/worker pair as an ExecutionBackend.

Selecting ``backend=dist`` gives every tuner and use case multi-host
fan-out with zero call-site changes: the backend starts a
:class:`~repro.dist.coordinator.Coordinator` inside the tuning process
(bound to ``--dist-addr``, or an ephemeral loopback port), optionally
keeps ``--dist-workers`` local worker processes alive through an elastic
:class:`~repro.dist.worker.WorkerPool`, and then behaves exactly like
every other backend — ``map(fn, items)`` in, ordered results out,
bit-identical to serial execution.  ``map_stream`` yields the same
results incrementally, as soon as each lands.  Remote machines join the
same run with ``python -m repro.cli worker --addr host:port``.
"""

from __future__ import annotations

import os
from typing import Callable, Iterator, Sequence

from repro.dist.coordinator import Coordinator
from repro.dist.protocol import dumps_payload, loads_payload, parse_addr
from repro.dist.worker import WorkerPool

# Safe despite repro.exec.__init__ importing this module eagerly:
# repro.exec.backend itself only imports repro.dist lazily (inside the
# backend_for factory), so the module graph stays acyclic.
from repro.exec.backend import CacheSettingsMixin


def _default_local_workers() -> int:
    return max(1, (os.cpu_count() or 2) - 1)


class DistributedBackend(CacheSettingsMixin):
    """Fan items out to workers connected over the dist protocol.

    Args:
        jobs: explicit chunking hint for callers; when omitted, the
            hint tracks the *live* worker-connection count once the
            cluster is up (an external cluster's size has nothing to do
            with this host's core count), with the spawn count — or the
            local-core default — as the pre-connect floor.
        addr: ``host:port`` the coordinator binds; ``None`` picks an
            ephemeral loopback port (purely local fan-out).
        spawn_workers: local worker processes to keep alive; ``0``
            expects external workers to join (``repro.cli worker``).
        cache_dir: shared cache directory handed to spawned workers (and
            used locally) for the on-disk trace artifact store.
        cache_max_entries: artifact/result store entry cap.
        worker_grace: seconds ``map`` waits for a first worker before
            failing a run pointed at an empty cluster.
        lease_timeout: seconds a leased job may stay unresolved before
            the coordinator requeues it (``None`` = coordinator
            default; see :data:`~repro.dist.coordinator.
            DEFAULT_LEASE_TIMEOUT_S`).
        respawn_budget: total local-worker respawns the elastic pool
            may perform (``None`` = pool default, ``0`` disables).
        batch_group_min: smallest chunk worth shipping when evaluation
            batches equivalence groups.  The inherited ``chunk_hint``
            caps the *live* connection-count hint by this floor, so a
            generation is never sheared mid-group just because many
            workers happen to be connected — a split group forfeits the
            shared simulation pass.

    If the host cannot bind sockets or spawn processes at all
    (restricted sandboxes), the backend degrades to serial in-process
    execution — results are identical either way, only slower.
    """

    def __init__(
        self,
        jobs: int | None = None,
        addr: str | None = None,
        spawn_workers: int | None = None,
        cache_dir: str | None = None,
        cache_max_entries: int | None = None,
        worker_grace: float = 60.0,
        lease_timeout: float | None = None,
        respawn_budget: int | None = None,
        batch_group_min: int = 1,
    ):
        if spawn_workers is None:
            # Nothing to connect remotely and nothing local would
            # deadlock; default to local fan-out when no addr is given.
            spawn_workers = 0 if addr else _default_local_workers()
        self.spawn_workers = spawn_workers
        self._jobs_explicit = jobs if jobs and jobs > 0 else None
        self._jobs_floor = self._jobs_explicit or (
            spawn_workers or _default_local_workers()
        )
        self.addr = addr
        self._set_cache(cache_dir, cache_max_entries, batch_group_min)
        self.worker_grace = worker_grace
        self.lease_timeout = lease_timeout
        self.respawn_budget = respawn_budget
        self.name = (
            f"dist[{self._jobs_floor}]" if addr is None
            else f"dist[{self._jobs_floor}]@{addr}"
        )
        self.coordinator: Coordinator | None = None
        self.pool: WorkerPool | None = None
        self._broken = False

    @property
    def jobs(self) -> int:
        """Chunking hint: live cluster size once workers have joined.

        An explicit ``jobs=`` always wins.  Otherwise, once the
        coordinator has connections, the hint is their count — sizing
        chunks for an external cluster from this host's ``cpu_count``
        would be unrelated to reality — and before the first connection
        it falls back to the spawn-count/core-count floor.
        """
        if self._jobs_explicit is not None:
            return self._jobs_explicit
        coordinator = self.coordinator
        if coordinator is not None:
            live = coordinator.worker_count()
            if live > 0:
                return live
        return self._jobs_floor

    # -- lifecycle ------------------------------------------------------

    def _ensure_started(self) -> Coordinator | None:
        if self._broken:
            return None
        if self.coordinator is not None:
            return self.coordinator
        host, port = ("127.0.0.1", 0) if self.addr is None \
            else parse_addr(self.addr)
        kwargs = {}
        if self.lease_timeout is not None:
            kwargs["lease_timeout_s"] = self.lease_timeout
        coordinator = Coordinator(host=host, port=port, **kwargs)
        try:
            bound = coordinator.start()
        except OSError as exc:
            if self.addr is not None:
                # The user asked for this address (remote workers will
                # point at it): failing to bind must be loud, not a
                # silent single-core fallback.
                raise RuntimeError(
                    f"cannot bind dist coordinator at {self.addr}: {exc}"
                ) from exc
            self._broken = True
            return None
        if self.spawn_workers:
            pool = WorkerPool(
                bound, self.spawn_workers,
                cache_dir=self.cache_dir,
                cache_max_entries=self.cache_max_entries,
                respawn_budget=self.respawn_budget,
            )
            try:
                pool.start()
            except (OSError, PermissionError) as exc:
                coordinator.shutdown()
                pool.stop()
                if self.addr is not None:
                    raise RuntimeError(
                        f"cannot spawn local dist workers for "
                        f"{self.addr}: {exc}"
                    ) from exc
                self._broken = True
                return None
            self.pool = pool
        self.coordinator = coordinator
        return coordinator

    def close(self) -> None:
        if self.coordinator is not None:
            self.coordinator.shutdown()
            self.coordinator = None
        if self.pool is not None:
            self.pool.stop()
            self.pool = None

    def __enter__(self) -> "DistributedBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # -- execution ------------------------------------------------------

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item via the cluster, in input order."""
        return list(self.map_stream(fn, items))

    def map_stream(self, fn: Callable, items: Sequence) -> Iterator:
        """Yield ``fn(item)`` results in input order, as they resolve.

        Identical results to :meth:`map`, but result ``i`` is yielded
        as soon as jobs ``0..i`` have resolved — a tuner consuming the
        stream sees early candidates while late ones still run.
        """
        items = list(items)
        if not items:
            return
        coordinator = self._ensure_started()
        if coordinator is None:
            for item in items:
                yield fn(item)
            return
        job_ids = [
            coordinator.submit(dumps_payload((fn, item))) for item in items
        ]
        try:
            landed: dict[int, tuple[str, object]] = {}
            cursor = 0
            for job_id, outcome in coordinator.as_completed(
                job_ids, worker_grace=self.worker_grace
            ):
                landed[job_id] = outcome
                while cursor < len(job_ids) and job_ids[cursor] in landed:
                    status, value = landed.pop(job_ids[cursor])
                    if status != "ok":
                        raise RuntimeError(
                            f"distributed job failed:\n{value}"
                        )
                    yield loads_payload(value)
                    cursor += 1
        finally:
            # Also covers abandoned streams (caller broke out early) and
            # failed jobs: their queue entries become no-ops.
            coordinator.forget(job_ids)
