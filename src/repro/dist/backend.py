"""``DistributedBackend``: cluster execution as an ExecutionBackend.

Selecting ``backend=dist`` gives every tuner and use case multi-host
fan-out with zero call-site changes, in one of two modes:

* **Owner mode** (no ``dist_addr``): the backend starts a private
  :class:`~repro.dist.coordinator.Coordinator` inside the tuning
  process on an ephemeral loopback port and keeps ``--dist-workers``
  local worker processes alive through an elastic
  :class:`~repro.dist.worker.WorkerPool` — a self-contained cluster
  that lives and dies with this run.
* **Client mode** (``dist_addr`` given): the address names an
  *external persistent* cluster (``repro.cli serve``); the backend
  spawns and owns **nothing**.  It opens a
  :class:`~repro.dist.client.ClientSession`, optionally prefetches the
  newest local trace artifacts to the worker fleet, and submits its
  batches into the shared fair scheduler alongside every other tenant.

Either way the contract is the same as every other backend: ``map(fn,
items)`` in, ordered results out, bit-identical to serial execution;
``map_stream`` yields the same results incrementally as each lands.
"""

from __future__ import annotations

import os
from typing import Callable, Iterator, Sequence

from repro.dist.client import ClientSession
from repro.dist.coordinator import Coordinator
from repro.dist.protocol import dumps_payload, loads_payload
from repro.dist.worker import WorkerPool

# Safe despite repro.exec.__init__ importing this module eagerly:
# repro.exec.backend itself only imports repro.dist lazily (inside the
# backend_for factory), so the module graph stays acyclic.
from repro.exec.backend import CacheSettingsMixin

#: Newest local artifacts a client session pushes to the cluster ahead
#: of its first batch (see :meth:`DiskArtifactStore.recent`).
PREFETCH_RECENT_LIMIT = 8


def _default_local_workers() -> int:
    return max(1, (os.cpu_count() or 2) - 1)


class DistributedBackend(CacheSettingsMixin):
    """Fan items out to workers connected over the dist protocol.

    Args:
        jobs: explicit chunking hint for callers; when omitted, the
            hint tracks the *live* worker count once the cluster is up
            (an external cluster's size has nothing to do with this
            host's core count), with the spawn count — or the
            local-core default — as the pre-connect floor.
        addr: ``host:port`` of an external persistent coordinator
            (``repro.cli serve``) to join as a client session; ``None``
            starts a private coordinator on an ephemeral loopback port
            (owner mode, purely local fan-out).
        spawn_workers: local worker processes to keep alive in owner
            mode.  Rejected (non-zero) in client mode: a shared
            cluster's workers are started with ``repro.cli worker`` or
            ``repro.cli serve --workers``, never owned by one tenant.
        cache_dir: shared cache directory handed to spawned workers
            (and used locally) for the on-disk trace artifact store; in
            client mode it is also the prefetch seed.
        cache_max_entries: artifact/result store entry cap.
        worker_grace: seconds ``map`` waits for a first worker before
            failing a run pointed at an empty cluster.
        lease_timeout: seconds a leased job may stay unresolved before
            the coordinator requeues it (owner mode only; a persistent
            cluster's lease policy is set by ``repro.cli serve``).
        respawn_budget: total local-worker respawns the elastic pool
            may perform (``None`` = pool default, ``0`` disables).
        batch_group_min: smallest chunk worth shipping when evaluation
            batches equivalence groups.  The inherited ``chunk_hint``
            caps the *live* connection-count hint by this floor, so a
            generation is never sheared mid-group just because many
            workers happen to be connected — a split group forfeits the
            shared simulation pass.
        priority: fair-share weight of this client session (client
            mode; ``None`` = 1.0).
        secret: shared secret for a secured coordinator (client mode;
            defaults to ``$REPRO_DIST_SECRET``).
        session: session name shown in ``repro.cli status`` rows.

    If the host cannot bind sockets or spawn processes at all
    (restricted sandboxes), owner mode degrades to serial in-process
    execution — results are identical either way, only slower.  Client
    mode never degrades silently: an unreachable or rejecting cluster
    is a loud error, because the user explicitly pointed at it.
    """

    def __init__(
        self,
        jobs: int | None = None,
        addr: str | None = None,
        spawn_workers: int | None = None,
        cache_dir: str | None = None,
        cache_max_entries: int | None = None,
        worker_grace: float = 60.0,
        lease_timeout: float | None = None,
        respawn_budget: int | None = None,
        batch_group_min: int = 1,
        priority: float | None = None,
        secret: str | None = None,
        session: str | None = None,
    ):
        self.client_mode = addr is not None
        if self.client_mode and spawn_workers:
            raise ValueError(
                "dist_addr points at an external persistent cluster; "
                "its workers are started with 'repro.cli worker' or "
                "'repro.cli serve --workers', not dist_workers"
            )
        if spawn_workers is None:
            # Nothing to connect remotely and nothing local would
            # deadlock; default to local fan-out when no addr is given.
            spawn_workers = 0 if addr else _default_local_workers()
        self.spawn_workers = spawn_workers
        self._jobs_explicit = jobs if jobs and jobs > 0 else None
        self._jobs_floor = self._jobs_explicit or (
            spawn_workers or _default_local_workers()
        )
        self.addr = addr
        self._set_cache(cache_dir, cache_max_entries, batch_group_min)
        self.worker_grace = worker_grace
        self.lease_timeout = lease_timeout
        self.respawn_budget = respawn_budget
        self.priority = float(priority) if priority else 1.0
        self.secret = secret or None
        self.session_name = session
        self.name = (
            f"dist[{self._jobs_floor}]" if addr is None
            else f"dist-client@{addr}"
        )
        self.coordinator: Coordinator | None = None
        self.pool: WorkerPool | None = None
        self.client: ClientSession | None = None
        self._prefetched = False
        self._broken = False

    @property
    def jobs(self) -> int:
        """Chunking hint: live cluster size once workers have joined.

        An explicit ``jobs=`` always wins.  Otherwise, once the
        coordinator has connections — or the client session's status
        probes have counted the shared cluster's workers — the hint is
        that live count; sizing chunks for an external cluster from
        this host's ``cpu_count`` would be unrelated to reality.
        Before the first connection it falls back to the
        spawn-count/core-count floor.
        """
        if self._jobs_explicit is not None:
            return self._jobs_explicit
        coordinator = self.coordinator
        if coordinator is not None:
            live = coordinator.worker_count()
            if live > 0:
                return live
        client = self.client
        if client is not None:
            live = client.workers_live() or 0
            if live > 0:
                return live
        return self._jobs_floor

    # -- lifecycle ------------------------------------------------------

    def _ensure_started(self) -> Coordinator | None:
        if self._broken:
            return None
        if self.coordinator is not None:
            return self.coordinator
        coordinator = Coordinator(
            host="127.0.0.1", port=0,
            **({} if self.lease_timeout is None
               else {"lease_timeout_s": self.lease_timeout}),
        )
        try:
            bound = coordinator.start()
        except OSError:
            self._broken = True
            return None
        if self.spawn_workers:
            pool = WorkerPool(
                bound, self.spawn_workers,
                cache_dir=self.cache_dir,
                cache_max_entries=self.cache_max_entries,
                respawn_budget=self.respawn_budget,
            )
            try:
                pool.start()
            except (OSError, PermissionError):
                coordinator.shutdown()
                pool.stop()
                self._broken = True
                return None
            self.pool = pool
        self.coordinator = coordinator
        return coordinator

    def _ensure_client(self) -> ClientSession:
        """Open (once) the session against the external cluster.

        Failures are loud: the user explicitly pointed ``dist_addr`` at
        a persistent cluster, so an unreachable or rejecting
        coordinator must never degrade to a silent local run.
        """
        if self.client is not None:
            return self.client
        session = ClientSession(
            self.addr, session=self.session_name,
            priority=self.priority, secret=self.secret,
        )
        try:
            session.start()
        except (OSError, RuntimeError) as exc:
            # OSError: TCP connect failed.  RuntimeError: the socket
            # opened but the session never came up (half-dead listener,
            # rejected secret — the cause rides along in the message).
            raise RuntimeError(
                f"cannot reach dist coordinator at {self.addr}: {exc}; "
                f"start one with 'python -m repro.cli serve --addr "
                f"{self.addr}'"
            ) from exc
        self.client = session
        self._prefetch_recent(session)
        return session

    def _prefetch_recent(self, session: ClientSession) -> None:
        """Push the newest local artifacts before the first dispatch."""
        if self._prefetched:
            return
        self._prefetched = True
        spec = self.artifact_store_spec()
        if spec is None:
            return
        from repro.sim.artifact import attach_artifact_store

        root, cap = spec
        try:
            store = attach_artifact_store(root, max_entries=cap)
        except ValueError:
            return
        for artifact in store.recent(PREFETCH_RECENT_LIMIT):
            session.prefetch(artifact)

    def close(self) -> None:
        if self.client is not None:
            self.client.close()
            self.client = None
        if self.coordinator is not None:
            self.coordinator.shutdown()
            self.coordinator = None
        if self.pool is not None:
            self.pool.stop()
            self.pool = None

    def __enter__(self) -> "DistributedBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # -- execution ------------------------------------------------------

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item via the cluster, in input order."""
        return list(self.map_stream(fn, items))

    def map_stream(self, fn: Callable, items: Sequence) -> Iterator:
        """Yield ``fn(item)`` results in input order, as they resolve.

        Identical results to :meth:`map`, but result ``i`` is yielded
        as soon as jobs ``0..i`` have resolved — a tuner consuming the
        stream sees early candidates while late ones still run.
        """
        items = list(items)
        if not items:
            return
        if self.client_mode:
            yield from self._client_stream(fn, items)
            return
        coordinator = self._ensure_started()
        if coordinator is None:
            for item in items:
                yield fn(item)
            return
        job_ids = [
            coordinator.submit(dumps_payload((fn, item))) for item in items
        ]
        try:
            landed: dict[int, tuple[str, object]] = {}
            cursor = 0
            for job_id, outcome in coordinator.as_completed(
                job_ids, worker_grace=self.worker_grace
            ):
                landed[job_id] = outcome
                while cursor < len(job_ids) and job_ids[cursor] in landed:
                    status, value = landed.pop(job_ids[cursor])
                    if status != "ok":
                        raise RuntimeError(
                            f"distributed job failed:\n{value}"
                        )
                    yield loads_payload(value)
                    cursor += 1
        finally:
            # Also covers abandoned streams (caller broke out early) and
            # failed jobs: their queue entries become no-ops.
            coordinator.forget(job_ids)

    def _client_stream(self, fn: Callable, items: list) -> Iterator:
        """One batch through the shared cluster as a client session."""
        session = self._ensure_client()
        tags = [
            session.submit(dumps_payload((fn, item))) for item in items
        ]
        try:
            landed: dict[int, tuple[str, object]] = {}
            cursor = 0
            for tag, outcome in session.as_completed(
                tags, worker_grace=self.worker_grace
            ):
                landed[tag] = outcome
                while cursor < len(tags) and tags[cursor] in landed:
                    status, value = landed.pop(tags[cursor])
                    if status != "ok":
                        raise RuntimeError(
                            f"distributed job failed:\n{value}"
                        )
                    yield loads_payload(value)
                    cursor += 1
        finally:
            # Abandoned streams and failures: tell the cluster to drop
            # whatever it still holds for this batch, and forget any
            # outcome the caller never consumed.
            session.cancel(tags)
