"""Observer-side client of the coordinator's ``status`` protocol.

``repro.cli status <addr>`` (and anything else that wants a cluster
snapshot) connects with an observer ``hello`` — the coordinator excludes
observers from the worker count, job dispatch and heartbeat eviction —
sends one ``status_request``, and returns the ``status_reply`` report.
See :meth:`repro.dist.coordinator.Coordinator.status_report` for the
report's shape and :func:`repro.obs.format_cluster_status` for the
human rendering.
"""

from __future__ import annotations

import os
import socket
import time

from repro.dist.protocol import (
    MSG_HELLO,
    MSG_STATUS_REPLY,
    MSG_STATUS_REQUEST,
    PROTOCOL_VERSION,
    ReceiveTimeout,
    connect,
    recv_msg,
    send_msg,
)


def fetch_cluster_status(addr: str, timeout: float = 10.0) -> dict:
    """One-shot cluster status from the coordinator at ``addr``.

    Raises ``TimeoutError`` when no reply lands within ``timeout``
    seconds, and the usual ``ConnectionError``/``OSError`` family when
    the coordinator is unreachable.
    """
    sock = connect(addr, timeout=timeout)
    try:
        send_msg(sock, {
            "type": MSG_HELLO,
            "worker": f"status-{socket.gethostname()}-{os.getpid()}",
            "proto": PROTOCOL_VERSION,
            "heartbeat": 0,
            "role": "observer",
        })
        send_msg(sock, {"type": MSG_STATUS_REQUEST})
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"no status reply from {addr} within {timeout:.0f}s"
                )
            try:
                header, _ = recv_msg(sock, timeout=remaining)
            except ReceiveTimeout:
                continue
            if header.get("type") == MSG_STATUS_REPLY:
                report = header.get("report")
                return report if isinstance(report, dict) else {}
    finally:
        try:
            sock.close()
        except OSError:
            pass
