"""Observer-side client of the coordinator's ``status`` protocol.

``repro.cli status <addr>`` (and anything else that wants a cluster
snapshot) connects with an observer ``hello`` — the coordinator excludes
observers from the worker count, job dispatch and heartbeat eviction —
sends one ``status_request``, and returns the ``status_reply`` report.
See :meth:`repro.dist.coordinator.Coordinator.status_report` for the
report's shape and :func:`repro.obs.format_cluster_status` for the
human rendering.
"""

from __future__ import annotations

import os
import socket
import time

from repro.dist.protocol import (
    MSG_AUTH_REJECT,
    MSG_HELLO,
    MSG_STATUS_REPLY,
    MSG_STATUS_REQUEST,
    PROTOCOL_VERSION,
    ReceiveTimeout,
    client_handshake,
    connect,
    recv_msg,
    send_msg,
)

#: Pause between connection attempts when ``retries`` is given.  Long
#: enough for a coordinator mid-restart to finish binding, short enough
#: that ``status --retries 3`` still feels interactive.
RETRY_BACKOFF_S = 0.5


def fetch_cluster_status(
    addr: str,
    timeout: float = 10.0,
    retries: int = 0,
    secret: str | None = None,
) -> dict:
    """One-shot cluster status from the coordinator at ``addr``.

    ``retries`` extra attempts are made after a timeout or connection
    failure (with a short pause between attempts) — scripts polling a
    cluster that is still coming up get a grace window instead of a
    stack trace.  ``secret`` (default ``$REPRO_DIST_SECRET``) answers a
    secured coordinator's auth challenge; a rejected secret raises
    ``PermissionError`` immediately, never retried — a wrong secret
    will not become right by asking again.

    Raises ``TimeoutError`` when no reply lands within ``timeout``
    seconds on the last attempt, and the usual
    ``ConnectionError``/``OSError`` family when the coordinator is
    unreachable.
    """
    secret = secret or os.environ.get("REPRO_DIST_SECRET") or None
    attempts = 1 + max(0, int(retries))
    for attempt in range(attempts):
        try:
            return _fetch_once(addr, timeout, secret)
        except PermissionError:
            raise
        except (TimeoutError, ConnectionError, OSError):
            if attempt == attempts - 1:
                raise
            time.sleep(RETRY_BACKOFF_S)
    raise AssertionError("unreachable")


def _fetch_once(addr: str, timeout: float, secret: str | None) -> dict:
    sock = connect(addr, timeout=timeout)
    try:
        client_handshake(sock, {
            "type": MSG_HELLO,
            "worker": f"status-{socket.gethostname()}-{os.getpid()}",
            "proto": PROTOCOL_VERSION,
            "heartbeat": 0,
            "role": "observer",
        }, secret=secret)
        send_msg(sock, {"type": MSG_STATUS_REQUEST})
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"no status reply from {addr} within {timeout:.0f}s"
                )
            try:
                header, _ = recv_msg(sock, timeout=remaining)
            except ReceiveTimeout:
                continue
            kind = header.get("type")
            if kind == MSG_AUTH_REJECT:
                raise PermissionError(
                    f"coordinator at {addr} rejected the shared secret "
                    f"(set REPRO_DIST_SECRET or pass --secret)"
                )
            if kind == MSG_STATUS_REPLY:
                report = header.get("report")
                return report if isinstance(report, dict) else {}
    finally:
        try:
            sock.close()
        except OSError:
            pass
