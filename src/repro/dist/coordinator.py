"""Coordinator side of the distributed evaluation service.

One :class:`Coordinator` runs inside the tuning process.  It listens on a
TCP address, hands queued jobs to whatever workers connect, tracks which
jobs each connection currently holds (its *leases*), and — when a
connection dies with leases outstanding — puts those jobs back at the
front of the queue for the surviving workers.  Callers interact with it
like a future store: :meth:`submit` enqueues pickled jobs,
:meth:`wait` blocks until a set of job ids has resolved.

Fault model: a worker that disappears (crash, OOM kill, network cut)
loses only wall-clock time — its leased jobs are rescheduled, and because
jobs are pure functions of their pickled inputs, a rerun produces the
identical result.  A job whose worker dies ``max_attempts`` times is
declared poisonous and surfaces as an error instead of cycling forever.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.dist.protocol import format_addr, recv_msg, send_msg

#: How long :meth:`Coordinator.wait` tolerates an empty cluster before
#: concluding no worker will ever arrive.
DEFAULT_WORKER_GRACE_S = 60.0


@dataclass
class _Job:
    """One queued unit of work (payload is pickled ``(fn, item)``)."""

    id: int
    payload: bytes
    attempts: int = 0


@dataclass(eq=False)  # identity hash: connections live in a set
class _Connection:
    """Book-keeping for one worker connection."""

    sock: socket.socket
    peer: str
    name: str = ""
    leases: set[int] = field(default_factory=set)


class Coordinator:
    """Job queue + lease tracker + rescheduler behind a TCP listener.

    Args:
        host: interface to bind (default loopback).
        port: TCP port; ``0`` picks a free ephemeral port.
        max_attempts: times a job may be leased before a repeated
            worker death marks it failed (guards against poison jobs
            that crash every worker they touch).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_attempts: int = 3):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.host = host
        self.port = port
        self.max_attempts = max_attempts
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._connections: set[_Connection] = set()
        self._queue: deque[int] = deque()
        self._jobs: dict[int, _Job] = {}
        self._results: dict[int, tuple[str, object]] = {}
        self._next_id = 0
        self._closing = False
        self._cv = threading.Condition()
        # observability counters
        self.workers_seen = 0
        self.jobs_completed = 0
        self.reschedules = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> str:
        """Bind, start the accept loop, and return the bound address."""
        if self._listener is not None:
            return self.addr
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        self.port = listener.getsockname()[1]
        self._listener = listener
        thread = threading.Thread(
            target=self._accept_loop, name="dist-accept", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        return self.addr

    @property
    def addr(self) -> str:
        """The ``host:port`` workers should connect to."""
        return format_addr(self.host, self.port)

    def shutdown(self) -> None:
        """Stop accepting, disconnect workers, fail pending waits."""
        with self._cv:
            if self._closing:
                return
            self._closing = True
            connections = list(self._connections)
            self._cv.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in connections:
            self._drop_socket(conn.sock)
        for thread in self._threads:
            thread.join(timeout=2.0)

    @staticmethod
    def _drop_socket(sock: socket.socket) -> None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    # -- client API -----------------------------------------------------

    def submit(self, payload: bytes) -> int:
        """Enqueue one pickled job; returns its id."""
        with self._cv:
            if self._closing:
                raise RuntimeError("coordinator is shut down")
            job_id = self._next_id
            self._next_id += 1
            self._jobs[job_id] = _Job(id=job_id, payload=payload)
            self._queue.append(job_id)
            return job_id

    def wait(
        self,
        job_ids: list[int],
        timeout: float | None = None,
        worker_grace: float = DEFAULT_WORKER_GRACE_S,
    ) -> list[tuple[str, object]]:
        """Block until every job resolves; results in ``job_ids`` order.

        Each entry is ``("ok", payload_bytes)`` or ``("error", text)``.
        Raises ``TimeoutError`` when ``timeout`` elapses first, and
        ``RuntimeError`` when the cluster stays *empty* — no worker ever
        connected, or every worker disconnected — for ``worker_grace``
        seconds with work still pending (a mis-pointed address or a
        fully-crashed worker fleet would otherwise block forever).
        """
        pending = set(job_ids)
        deadline = time.monotonic() + timeout if timeout else None
        empty_since = time.monotonic()
        with self._cv:
            while True:
                pending -= self._results.keys()
                if not pending:
                    return [self._results[i] for i in job_ids]
                if self._closing:
                    raise RuntimeError(
                        "coordinator shut down with jobs outstanding"
                    )
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    raise TimeoutError(
                        f"{len(pending)} distributed jobs still pending"
                    )
                if self._connections:
                    empty_since = None
                elif empty_since is None:
                    empty_since = now
                if empty_since is not None \
                        and now - empty_since >= worker_grace:
                    what = ("no worker connected to" if self.workers_seen
                            == 0 else "every worker disconnected from")
                    raise RuntimeError(
                        f"{what} {self.addr} for {worker_grace:.0f}s with "
                        f"{len(pending)} jobs pending; start workers with "
                        f"'python -m repro.cli worker --addr {self.addr}'"
                    )
                waits = [0.5]
                if deadline is not None:
                    waits.append(deadline - now)
                if empty_since is not None:
                    waits.append(empty_since + worker_grace - now)
                self._cv.wait(timeout=max(0.01, min(waits)))

    def forget(self, job_ids: list[int]) -> None:
        """Drop resolved results the caller has consumed (bounded memory)."""
        with self._cv:
            for job_id in job_ids:
                self._results.pop(job_id, None)
                self._jobs.pop(job_id, None)

    # -- connection handling --------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            conn = _Connection(sock=sock, peer=f"{peer[0]}:{peer[1]}")
            with self._cv:
                if self._closing:
                    self._drop_socket(sock)
                    return
                self._connections.add(conn)
                self.workers_seen += 1
                self._cv.notify_all()
            thread = threading.Thread(
                target=self._serve, args=(conn,),
                name=f"dist-conn-{conn.peer}", daemon=True,
            )
            thread.start()
            # Prune threads of connections that already left, so an
            # elastic cluster (workers joining/leaving at will) does not
            # accumulate one dead Thread per connection forever.
            self._threads = [
                t for t in self._threads if t.is_alive()
            ] + [thread]

    def _serve(self, conn: _Connection) -> None:
        """Handle one worker connection until it drops."""
        try:
            while True:
                header, payload = recv_msg(conn.sock)
                kind = header.get("type")
                if kind == "hello":
                    conn.name = str(header.get("worker", conn.peer))
                elif kind == "request":
                    self._handle_request(conn)
                elif kind == "result":
                    self._resolve(conn, int(header["job"]), ("ok", payload))
                elif kind == "error":
                    self._resolve(
                        conn, int(header["job"]),
                        ("error", str(header.get("error", "unknown error"))),
                    )
        except (ConnectionError, OSError, ValueError, KeyError):
            pass
        finally:
            self._reap(conn)

    def _handle_request(self, conn: _Connection) -> None:
        with self._cv:
            reply: tuple[dict, bytes | None] = ({"type": "idle"}, None)
            if self._closing:
                reply = ({"type": "shutdown"}, None)
            else:
                while self._queue:
                    job = self._jobs.get(self._queue.popleft())
                    if job is None or job.id in self._results:
                        # Forgotten by the caller (abandoned batch) or
                        # already resolved: skip, don't lease.
                        continue
                    job.attempts += 1
                    conn.leases.add(job.id)
                    reply = ({"type": "job", "job": job.id}, job.payload)
                    break
        send_msg(conn.sock, reply[0], reply[1])

    def _resolve(self, conn: _Connection, job_id: int,
                 result: tuple[str, object]) -> None:
        with self._cv:
            conn.leases.discard(job_id)
            # Last write wins; duplicates (a rescheduled job finishing
            # twice) are identical by construction, so this is benign.
            self._results[job_id] = result
            self.jobs_completed += 1
            self._cv.notify_all()

    def _reap(self, conn: _Connection) -> None:
        """Connection died: reschedule its leases, drop its state."""
        self._drop_socket(conn.sock)
        with self._cv:
            self._connections.discard(conn)
            for job_id in sorted(conn.leases):
                if job_id in self._results:
                    continue
                job = self._jobs.get(job_id)
                if job is None:
                    continue
                if job.attempts >= self.max_attempts:
                    self._results[job_id] = (
                        "error",
                        f"job {job_id} lost {job.attempts} workers "
                        f"(last: {conn.name or conn.peer}); giving up",
                    )
                    self.jobs_completed += 1
                else:
                    # Front of the queue: a rescheduled job is the
                    # oldest outstanding work, so it should not wait
                    # behind the whole backlog again.
                    self._queue.appendleft(job_id)
                    self.reschedules += 1
            conn.leases.clear()
            self._cv.notify_all()
