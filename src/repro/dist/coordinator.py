"""Coordinator side of the distributed evaluation service.

One :class:`Coordinator` runs inside the tuning process.  It listens on a
TCP address, hands queued jobs to whatever workers connect, tracks which
jobs each connection currently holds (its *leases*), and reschedules
jobs whose worker dies or goes silent.  Callers interact with it like a
future store: :meth:`submit` enqueues pickled jobs, :meth:`wait` blocks
until a set of job ids has resolved, and :meth:`as_completed` streams
``(job_id, outcome)`` pairs as results land.

Fault model — three detectors, coarsest to finest:

* **EOF** — a worker that crashes or is killed closes (or resets) its
  connection; its leases are requeued immediately (:meth:`_reap`).
* **Heartbeat eviction** — a *hung* worker (stuck syscall, frozen VM,
  NAT half-open) keeps its socket open but stops sending ``ping``
  frames; once nothing has been received for ``heartbeat_timeout_s``
  the monitor thread closes the connection, which funnels into the same
  reap path.  Only protocol >= 2 connections heartbeat, so v1 workers
  are never evicted for silence.
* **Lease deadlines** — a *livelocked* worker heartbeats happily but
  never finishes its job; each lease carries a deadline
  (``lease_timeout_s``) after which the monitor thread requeues the job
  at the front of the queue.  Jobs are pure functions of their pickled
  inputs, so the rerun is bit-identical and a late duplicate result is
  simply dropped.

A job that gets leased ``max_attempts`` times without resolving is
declared poisonous and surfaces as an error instead of cycling forever.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.dist.protocol import (
    FRAME_TYPES,
    MSG_ERROR,
    MSG_HELLO,
    MSG_IDLE,
    MSG_JOB,
    MSG_PING,
    MSG_PONG,
    MSG_REQUEST,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_STATUS,
    MSG_STATUS_REPLY,
    MSG_STATUS_REQUEST,
    ReceiveTimeout,
    format_addr,
    recv_msg,
    send_msg,
)

#: How long :meth:`Coordinator.wait` tolerates an empty cluster before
#: concluding no worker will ever arrive.
DEFAULT_WORKER_GRACE_S = 60.0

#: Default lease deadline: generous, because an expired lease on a
#: merely *slow* worker wastes a rerun (benign) and burns an attempt
#: (not benign once it reaches ``max_attempts``).  Hung workers are
#: caught much faster by heartbeat eviction; this is the backstop for
#: livelocked ones.  Set it above the worst-case single-job runtime.
DEFAULT_LEASE_TIMEOUT_S = 600.0

#: Evict a protocol >= 2 connection when nothing — pings included —
#: has arrived for this long.  Workers ping every couple of seconds
#: (:data:`repro.dist.worker.WORKER_HEARTBEAT_S`), so this tolerates
#: deep scheduler stalls without false positives.
DEFAULT_HEARTBEAT_TIMEOUT_S = 30.0

#: Serve/monitor loop wake-up ceiling (they wake earlier when the
#: configured timeouts are shorter, e.g. in tests).
_TICK_CEILING_S = 0.25


@dataclass
class _Job:
    """One queued unit of work (payload is pickled ``(fn, item)``)."""

    id: int
    payload: bytes
    attempts: int = 0


@dataclass(eq=False)  # identity hash: connections live in a set
class _Connection:
    """Book-keeping for one worker connection."""

    sock: socket.socket
    peer: str
    #: accept-order sequence number.  ``_connections`` is a set, so any
    #: code whose *order* over connections matters (dispatch, lease
    #: expiry, eviction) iterates ``sorted(..., key=lambda c: c.seq)``
    #: instead of set order — scheduling decisions stay deterministic
    #: for a fixed connection history.
    seq: int = 0
    name: str = ""
    proto: int = 1
    #: a monitoring client (``hello`` with ``role: "observer"``): never
    #: dispatched to, never counted as a worker, never evicted for
    #: heartbeat silence.
    observer: bool = False
    #: jobs this connection resolved (results and errors both count).
    jobs_done: int = 0
    #: latest ``status`` frame metrics (a ``MetricsSnapshot.to_dict()``).
    status: dict = field(default_factory=dict)
    #: heartbeat interval the worker advertised in ``hello`` (0 = none).
    heartbeat_s: float = 0.0
    #: job id -> monotonic lease deadline (``inf`` when timeouts are off).
    leases: dict[int, float] = field(default_factory=dict)
    #: monotonic time of the last frame received (any type).
    last_recv: float = field(default_factory=time.monotonic)
    #: a v2 connection waiting for work (blocked ``request``).
    hungry: bool = False
    #: serializes frame writes — serve, monitor and submit threads all
    #: send on the same socket.
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    #: eviction already triggered (the reap may still be in flight).
    evicting: bool = False
    reaped: bool = False


class Coordinator:
    """Job queue + lease tracker + rescheduler behind a TCP listener.

    Args:
        host: interface to bind (default loopback).
        port: TCP port; ``0`` picks a free ephemeral port.
        max_attempts: times a job may be leased before a repeated
            worker loss marks it failed (guards against poison jobs
            that take down every worker they touch).
        lease_timeout_s: seconds a leased job may stay unresolved
            before the monitor thread requeues it (``None`` disables
            lease deadlines; death/eviction rescheduling still works).
        heartbeat_timeout_s: seconds of total silence after which a
            protocol >= 2 connection is evicted (``None`` disables
            eviction; EOF detection still works).
    """

    #: Lock discipline, statically enforced by the ``lock-discipline``
    #: checker (:mod:`repro.analysis`): every read or write of these
    #: attributes must happen inside ``with self._cv:`` or in a method
    #: whose name ends in ``_locked`` (caller holds the lock).
    GUARDED_BY = {
        "_connections": "_cv",
        "_queue": "_cv",
        "_jobs": "_cv",
        "_results": "_cv",
        "_next_id": "_cv",
        "_next_seq": "_cv",
        "_closing": "_cv",
        "_threads": "_cv",
        "workers_seen": "_cv",
        "jobs_completed": "_cv",
        "reschedules": "_cv",
        "lease_expiries": "_cv",
        "evictions": "_cv",
    }

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_attempts: int = 3,
                 lease_timeout_s: float | None = DEFAULT_LEASE_TIMEOUT_S,
                 heartbeat_timeout_s: float | None =
                 DEFAULT_HEARTBEAT_TIMEOUT_S):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if lease_timeout_s is not None and lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be > 0 (or None)")
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be > 0 (or None)")
        self.host = host
        self.port = port
        self.max_attempts = max_attempts
        self.lease_timeout_s = lease_timeout_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._connections: set[_Connection] = set()
        self._queue: deque[int] = deque()
        self._jobs: dict[int, _Job] = {}
        self._results: dict[int, tuple[str, object]] = {}
        self._next_id = 0
        self._next_seq = 0
        self._closing = False
        self._cv = threading.Condition()
        # observability counters
        self.workers_seen = 0
        self.jobs_completed = 0
        self.reschedules = 0
        self.lease_expiries = 0
        self.evictions = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> str:
        """Bind, start the accept + monitor loops, return the address."""
        if self._listener is not None:
            return self.addr
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        self.port = listener.getsockname()[1]
        self._listener = listener
        threads = [
            threading.Thread(target=self._accept_loop, name="dist-accept",
                             daemon=True),
            threading.Thread(target=self._monitor_loop, name="dist-monitor",
                             daemon=True),
        ]
        for thread in threads:
            thread.start()
        with self._cv:
            self._threads.extend(threads)
        return self.addr

    @property
    def addr(self) -> str:
        """The ``host:port`` workers should connect to."""
        return format_addr(self.host, self.port)

    def worker_count(self) -> int:
        """Live worker connections right now (observers excluded)."""
        with self._cv:
            return sum(1 for c in self._connections if not c.observer)

    def status_report(self) -> dict:
        """JSON-able cluster snapshot (the ``status_reply`` body).

        Per-worker rows (name, protocol, leases held, jobs done, age of
        the last received frame, latest ``status`` metrics), queue
        depths, the coordinator's lifetime counters, and the merge of
        every worker's latest metrics snapshot.
        """
        from repro.obs import MetricsSnapshot

        now = time.monotonic()
        merged = MetricsSnapshot()
        workers = []
        with self._cv:
            conns = sorted(
                (c for c in self._connections if not c.observer),
                key=lambda c: c.name or c.peer,
            )
            for conn in conns:
                workers.append({
                    "name": conn.name or conn.peer,
                    "peer": conn.peer,
                    "proto": conn.proto,
                    "leases": len(conn.leases),
                    "jobs_done": conn.jobs_done,
                    "heartbeat_age_s": round(now - conn.last_recv, 3),
                    "metrics": conn.status,
                })
                if conn.status:
                    try:
                        merged = merged.merge(
                            MetricsSnapshot.from_dict(conn.status)
                        )
                    except (TypeError, ValueError, KeyError):
                        pass  # malformed frame: skip, don't fail status
            report = {
                "addr": self.addr,
                "workers": workers,
                "pending": len(self._queue),
                "unresolved": len(self._jobs) - len(self._results),
                "counters": {
                    "workers_seen": self.workers_seen,
                    "jobs_completed": self.jobs_completed,
                    "reschedules": self.reschedules,
                    "lease_expiries": self.lease_expiries,
                    "evictions": self.evictions,
                },
            }
        report["cluster_metrics"] = merged.to_dict()
        return report

    def shutdown(self) -> None:
        """Stop accepting, disconnect workers, fail pending waits."""
        with self._cv:
            if self._closing:
                return
            self._closing = True
            connections = sorted(self._connections, key=lambda c: c.seq)
            threads = list(self._threads)
            self._cv.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in connections:
            # Shutdown only: each serve thread closes its own fd.
            self._disconnect_socket(conn.sock)
        for thread in threads:
            thread.join(timeout=2.0)

    @staticmethod
    def _drop_socket(sock: socket.socket) -> None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    @staticmethod
    def _disconnect_socket(sock: socket.socket) -> None:
        """Shut the socket down without closing its fd.

        Threads other than a connection's own serve thread must never
        ``close()`` it: the serve thread may be blocked in
        ``select``/``recv`` on that fd, and closing would let the
        kernel reuse the number for a newly accepted worker — the stale
        serve thread would then read the *new* connection's frames.
        ``shutdown`` wakes the serve thread with EOF instead, and the
        serve thread closes the fd itself on exit.
        """
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _tick_s(self) -> float:
        """Wake-up period for the serve/monitor loops."""
        tick = _TICK_CEILING_S
        for bound in (self.lease_timeout_s, self.heartbeat_timeout_s):
            if bound is not None:
                tick = min(tick, bound / 4.0)
        return max(0.01, tick)

    # -- client API -----------------------------------------------------

    def submit(self, payload: bytes) -> int:
        """Enqueue one pickled job; returns its id."""
        with self._cv:
            if self._closing:
                raise RuntimeError("coordinator is shut down")
            job_id = self._next_id
            self._next_id += 1
            self._jobs[job_id] = _Job(id=job_id, payload=payload)
            self._queue.append(job_id)
        self._dispatch()
        return job_id

    def wait_next(
        self,
        job_ids,
        timeout: float | None = None,
        worker_grace: float = DEFAULT_WORKER_GRACE_S,
    ) -> tuple[int, tuple[str, object]]:
        """Block until *one* of ``job_ids`` resolves; return it.

        Returns ``(job_id, outcome)`` for the first resolved id in
        ``job_ids`` order.  Raises ``TimeoutError`` when ``timeout``
        (which may be ``0`` for a pure poll) elapses first, and
        ``RuntimeError`` when the cluster stays *empty* — no worker ever
        connected, or every worker disconnected — for ``worker_grace``
        seconds (a mis-pointed address or a fully-crashed worker fleet
        would otherwise block forever).
        """
        job_ids = list(job_ids)
        if not job_ids:
            raise ValueError("wait_next needs at least one job id")
        deadline = None if timeout is None else time.monotonic() + timeout
        empty_since = time.monotonic()
        with self._cv:
            while True:
                for job_id in job_ids:
                    outcome = self._results.get(job_id)
                    if outcome is not None:
                        return job_id, outcome
                if self._closing:
                    raise RuntimeError(
                        "coordinator shut down with jobs outstanding"
                    )
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    raise TimeoutError(
                        f"{len(job_ids)} distributed jobs still pending"
                    )
                if any(not c.observer for c in self._connections):
                    empty_since = None
                elif empty_since is None:
                    empty_since = now
                if empty_since is not None \
                        and now - empty_since >= worker_grace:
                    what = ("no worker connected to" if self.workers_seen
                            == 0 else "every worker disconnected from")
                    raise RuntimeError(
                        f"{what} {self.addr} for {worker_grace:.0f}s with "
                        f"{len(job_ids)} jobs pending; start workers with "
                        f"'python -m repro.cli worker --addr {self.addr}'"
                    )
                waits = [0.5]
                if deadline is not None:
                    waits.append(deadline - now)
                if empty_since is not None:
                    waits.append(empty_since + worker_grace - now)
                self._cv.wait(timeout=max(0.01, min(waits)))

    def as_completed(
        self,
        job_ids,
        timeout: float | None = None,
        worker_grace: float = DEFAULT_WORKER_GRACE_S,
    ):
        """Yield ``(job_id, outcome)`` as results land, in landing order.

        ``timeout`` bounds the *whole* iteration, not each step.  Ids
        already resolved yield immediately; duplicates in ``job_ids``
        yield once.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        pending = list(dict.fromkeys(job_ids))  # de-dup, keep order
        while pending:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            job_id, outcome = self.wait_next(
                pending, timeout=remaining, worker_grace=worker_grace
            )
            pending.remove(job_id)
            yield job_id, outcome

    def wait(
        self,
        job_ids: list[int],
        timeout: float | None = None,
        worker_grace: float = DEFAULT_WORKER_GRACE_S,
    ) -> list[tuple[str, object]]:
        """Block until every job resolves; results in ``job_ids`` order.

        Each entry is ``("ok", payload_bytes)`` or ``("error", text)``.
        Same ``TimeoutError``/``RuntimeError`` behavior as
        :meth:`wait_next`; ``timeout=0`` polls without blocking.
        """
        resolved = dict(self.as_completed(
            job_ids, timeout=timeout, worker_grace=worker_grace
        ))
        return [resolved[job_id] for job_id in job_ids]

    def forget(self, job_ids: list[int]) -> None:
        """Drop resolved results the caller has consumed (bounded memory)."""
        with self._cv:
            for job_id in job_ids:
                self._results.pop(job_id, None)
                self._jobs.pop(job_id, None)

    # -- connection handling --------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            conn = _Connection(sock=sock, peer=f"{peer[0]}:{peer[1]}")
            thread = threading.Thread(
                target=self._serve, args=(conn,),
                name=f"dist-conn-{conn.peer}", daemon=True,
            )
            with self._cv:
                if self._closing:
                    self._drop_socket(sock)
                    return
                conn.seq = self._next_seq
                self._next_seq += 1
                self._connections.add(conn)
                # Prune threads of connections that already left, so an
                # elastic cluster (workers joining/leaving at will) does
                # not accumulate one dead Thread per connection forever.
                # Under the lock: shutdown() snapshots this list.
                self._threads = [
                    t for t in self._threads if t.is_alive()
                ] + [thread]
                self._cv.notify_all()
            thread.start()

    def _serve(self, conn: _Connection) -> None:
        """Handle one worker connection until it drops or is evicted."""
        tick = self._tick_s()
        # A connection only counts toward workers_seen once its hello
        # proves it is a worker, not an observer (and v1 peers that
        # never hello count on their first job-protocol frame instead).
        counted = False
        try:
            while True:
                try:
                    header, payload = recv_msg(conn.sock, timeout=tick)
                except ReceiveTimeout:
                    # No frame this tick; the monitor thread decides
                    # whether the silence has lasted long enough to
                    # evict.  A closing coordinator ends the loop here.
                    with self._cv:
                        if self._closing:
                            return
                    continue
                conn.last_recv = time.monotonic()
                kind = header.get("type")
                if kind == MSG_HELLO:
                    conn.name = str(header.get("worker", conn.peer))
                    conn.proto = int(header.get("proto", 1))
                    conn.observer = (
                        str(header.get("role", "worker")) == "observer"
                    )
                    try:
                        conn.heartbeat_s = max(
                            0.0, float(header.get("heartbeat", 0) or 0)
                        )
                    except (TypeError, ValueError):
                        conn.heartbeat_s = 0.0
                elif kind == MSG_PING:
                    with conn.send_lock:
                        send_msg(conn.sock, {"type": MSG_PONG})
                elif kind == MSG_STATUS:
                    metrics = header.get("metrics")
                    conn.status = metrics if isinstance(metrics, dict) \
                        else {}
                    jobs = header.get("jobs_executed")
                    if isinstance(jobs, int):
                        conn.jobs_done = max(conn.jobs_done, jobs)
                elif kind == MSG_STATUS_REQUEST:
                    report = self.status_report()
                    with conn.send_lock:
                        send_msg(conn.sock, {
                            "type": MSG_STATUS_REPLY, "report": report,
                        })
                elif kind == MSG_REQUEST:
                    self._handle_request(conn)
                elif kind == MSG_RESULT:
                    self._resolve(conn, int(header["job"]), ("ok", payload))
                elif kind == MSG_ERROR:
                    self._resolve(
                        conn, int(header["job"]),
                        ("error", str(header.get("error", "unknown error"))),
                    )
                elif kind not in FRAME_TYPES:
                    # Additive protocol: a frame type from a newer peer
                    # is ignored, never an error.
                    pass
                if not counted and not conn.observer:
                    counted = True
                    with self._cv:
                        self.workers_seen += 1
                        self._cv.notify_all()
        except (ConnectionError, OSError, ValueError, KeyError):
            pass
        finally:
            self._reap(conn)
            # The serve thread is the fd's sole owner (see
            # _disconnect_socket); it closes on the way out.
            try:
                conn.sock.close()
            except OSError:
                pass

    def _handle_request(self, conn: _Connection) -> None:
        sends: list[tuple[_Connection, dict, bytes | None]]
        with self._cv:
            if self._closing:
                sends = [(conn, {"type": MSG_SHUTDOWN}, None)]
            else:
                conn.hungry = True
                sends = self._dispatch_locked()
                if conn.hungry and conn.proto < 2:
                    # v1 workers poll: they expect an immediate reply.
                    conn.hungry = False
                    sends.append((conn, {"type": MSG_IDLE}, None))
        self._send_all(sends)

    def _dispatch(self) -> None:
        """Pair queued jobs with hungry connections and send them.

        Called after anything that enqueues work (submit, reschedule)
        or frees a worker.  Sending happens outside the lock; a send
        failure reaps that connection (requeueing the just-granted
        lease) and the loop retries with whoever is left.
        """
        while True:
            with self._cv:
                sends = self._dispatch_locked()
            if not sends:
                return
            if not self._send_all(sends):
                return

    def _dispatch_locked(self) -> list[tuple[_Connection, dict,
                                             bytes | None]]:
        """Assign queued jobs to hungry connections (caller holds _cv)."""
        sends: list[tuple[_Connection, dict, bytes | None]] = []
        if self._closing:
            return sends
        hungry = deque(sorted(
            (c for c in self._connections if c.hungry and not c.observer),
            key=lambda c: c.seq,
        ))
        while self._queue and hungry:
            job = self._jobs.get(self._queue.popleft())
            if job is None or job.id in self._results:
                # Forgotten by the caller (abandoned batch) or already
                # resolved (rescheduled twin finished): skip, don't lease.
                continue
            conn = hungry.popleft()
            job.attempts += 1
            deadline = (float("inf") if self.lease_timeout_s is None
                        else time.monotonic() + self.lease_timeout_s)
            conn.leases[job.id] = deadline
            conn.hungry = False
            sends.append((conn, {"type": MSG_JOB, "job": job.id},
                          job.payload))
        return sends

    def _send_all(self, sends) -> bool:
        """Send frames outside the lock; reap dead targets.

        Returns True if any send failed (the caller should re-dispatch:
        the reap requeued the affected leases).
        """
        failed = False
        for conn, header, payload in sends:
            try:
                with conn.send_lock:
                    send_msg(conn.sock, header, payload)
            except (ConnectionError, OSError):
                failed = True
                self._reap(conn)
        return failed

    def _resolve(self, conn: _Connection, job_id: int,
                 result: tuple[str, object]) -> None:
        notify_dispatch = False
        with self._cv:
            conn.leases.pop(job_id, None)
            conn.jobs_done += 1
            if job_id not in self._jobs:
                # Forgotten (abandoned batch): storing the late result
                # would leak it forever, since the caller that could
                # forget() it is long gone.  Drop it on the floor.
                return
            if job_id in self._results:
                # Duplicate resolution: an expired-lease rerun and the
                # original both finished.  Results are identical by
                # construction (pure functions of pickled inputs), so
                # keep the first and do not double-count.
                return
            self._results[job_id] = result
            self.jobs_completed += 1
            self._cv.notify_all()
            notify_dispatch = bool(self._queue)
        if notify_dispatch:
            self._dispatch()

    # -- liveness -------------------------------------------------------

    def _monitor_loop(self) -> None:
        """Expire overdue leases and evict silent connections."""
        while True:
            tick = self._tick_s()
            with self._cv:
                if self._closing:
                    return
                self._cv.wait(timeout=tick)
                if self._closing:
                    return
                requeued = self._expire_leases_locked()
                stale = self._stale_connections_locked()
            # Outside the lock, and shutdown-only: the eviction wakes
            # the connection's serve thread, which reaps and closes.
            for conn in stale:
                self._disconnect_socket(conn.sock)
            if requeued:
                self._dispatch()

    def _expire_leases_locked(self) -> bool:
        """Requeue overdue leases (caller holds _cv); True if any."""
        if self.lease_timeout_s is None:
            return False
        now = time.monotonic()
        requeued = False
        for conn in sorted(self._connections, key=lambda c: c.seq):
            overdue = [job_id for job_id, deadline in conn.leases.items()
                       if now >= deadline]
            for job_id in overdue:
                del conn.leases[job_id]
                self.lease_expiries += 1
                job = self._jobs.get(job_id)
                if job is None or job_id in self._results:
                    continue
                if job.attempts >= self.max_attempts:
                    self._results[job_id] = (
                        "error",
                        f"job {job_id} timed out on {job.attempts} workers "
                        f"(last: {conn.name or conn.peer}, lease "
                        f"{self.lease_timeout_s:.0f}s); giving up",
                    )
                    self.jobs_completed += 1
                else:
                    # Front of the queue: the expired job is the oldest
                    # outstanding work, so it must not wait behind the
                    # whole backlog again.
                    self._queue.appendleft(job_id)
                    self.reschedules += 1
                    requeued = True
                self._cv.notify_all()
        return requeued

    def _stale_connections_locked(self) -> list[_Connection]:
        """Connections gone silent past their heartbeat tolerance.

        A worker that advertised a *slower* heartbeat than the default
        in its ``hello`` (``--heartbeat 45``) is judged against that
        interval — three missed beats — not the global floor, so a
        legitimately configured fleet is never evicted while healthy.
        """
        if self.heartbeat_timeout_s is None:
            return []
        now = time.monotonic()
        stale = []
        for conn in sorted(self._connections, key=lambda c: c.seq):
            if conn.proto < 2 or conn.evicting or conn.observer:
                continue
            tolerance = max(self.heartbeat_timeout_s,
                            3.0 * conn.heartbeat_s)
            if now - conn.last_recv >= tolerance:
                stale.append(conn)
        for conn in stale:
            conn.evicting = True
        self.evictions += len(stale)
        return stale

    def _reap(self, conn: _Connection) -> None:
        """Connection died: reschedule its leases, drop its state.

        Callable from any thread (serve, monitor, dispatch): it only
        shuts the socket down; the fd itself is closed by the
        connection's serve thread when it exits.
        """
        self._disconnect_socket(conn.sock)
        with self._cv:
            if conn.reaped:
                return
            conn.reaped = True
            self._connections.discard(conn)
            for job_id in sorted(conn.leases):
                if job_id in self._results:
                    continue
                job = self._jobs.get(job_id)
                if job is None:
                    continue
                if job.attempts >= self.max_attempts:
                    self._results[job_id] = (
                        "error",
                        f"job {job_id} lost {job.attempts} workers "
                        f"(last: {conn.name or conn.peer}); giving up",
                    )
                    self.jobs_completed += 1
                else:
                    self._queue.appendleft(job_id)
                    self.reschedules += 1
            conn.leases.clear()
            self._cv.notify_all()
        self._dispatch()
