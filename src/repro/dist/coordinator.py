"""Coordinator side of the distributed evaluation service.

One :class:`Coordinator` is a persistent, session-oriented job service.
It listens on a TCP address, hands queued jobs to whatever workers
connect, tracks which jobs each connection currently holds (its
*leases*), and reschedules jobs whose worker dies or goes silent.

Work arrives through *sessions*.  The in-process caller (the tuning
process that created the coordinator) is session 0: :meth:`submit`
enqueues pickled jobs, :meth:`wait` blocks until a set of job ids has
resolved, and :meth:`as_completed` streams ``(job_id, outcome)`` pairs
as results land.  Remote callers open their own sessions with a
``hello`` whose ``role`` is ``"client"`` (protocol 3): their ``submit``
frames land in a per-session queue, results are pushed back as
``batch_result`` frames the moment they resolve, and nothing is
retained for them.  Dispatch interleaves sessions by stride scheduling
— each session accumulates virtual time at ``1 / priority`` per
dispatched job and the furthest-behind session goes next — so a flood
session cannot starve a small one.

Session lifecycle: a client that disconnects (EOF) or is evicted for
heartbeat silence has its session garbage-collected — queued jobs are
dropped before they waste a worker, and results are forgotten.  Jobs a
worker already holds run out their lease and their late results are
dropped on the floor.

Fault model — three detectors, coarsest to finest:

* **EOF** — a worker that crashes or is killed closes (or resets) its
  connection; its leases are requeued immediately (:meth:`_reap`).
* **Heartbeat eviction** — a *hung* worker (stuck syscall, frozen VM,
  NAT half-open) keeps its socket open but stops sending ``ping``
  frames; once nothing has been received for ``heartbeat_timeout_s``
  the monitor thread closes the connection, which funnels into the same
  reap path.  Only protocol >= 2 connections heartbeat, so v1 workers
  are never evicted for silence.
* **Lease deadlines** — a *livelocked* worker heartbeats happily but
  never finishes its job; each lease carries a deadline
  (``lease_timeout_s``) after which the monitor thread requeues the job
  at the front of its session's queue.  Jobs are pure functions of
  their pickled inputs, so the rerun is bit-identical and a late
  duplicate result is simply dropped.

A job that gets leased ``max_attempts`` times without resolving is
declared poisonous and surfaces as an error instead of cycling forever.

With a shared ``secret``, every accepted connection is challenged
before its first frame is honored: the coordinator sends an
``auth_challenge`` nonce and only a ``hello`` carrying the matching
HMAC-SHA256 digest joins the cluster — anything else is told
``auth_reject`` and dropped without touching live sessions.
"""

from __future__ import annotations

import hmac
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.dist.protocol import (
    FRAME_TYPES,
    MSG_AUTH_CHALLENGE,
    MSG_AUTH_REJECT,
    MSG_BATCH_RESULT,
    MSG_CANCEL,
    MSG_ERROR,
    MSG_HELLO,
    MSG_IDLE,
    MSG_JOB,
    MSG_PING,
    MSG_PONG,
    MSG_PREFETCH,
    MSG_REQUEST,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_STATUS,
    MSG_STATUS_REPLY,
    MSG_STATUS_REQUEST,
    MSG_SUBMIT,
    ReceiveTimeout,
    auth_digest,
    format_addr,
    make_nonce,
    recv_msg,
    send_msg,
)

#: How long :meth:`Coordinator.wait` tolerates an empty cluster before
#: concluding no worker will ever arrive.
DEFAULT_WORKER_GRACE_S = 60.0

#: Default lease deadline: generous, because an expired lease on a
#: merely *slow* worker wastes a rerun (benign) and burns an attempt
#: (not benign once it reaches ``max_attempts``).  Hung workers are
#: caught much faster by heartbeat eviction; this is the backstop for
#: livelocked ones.  Set it above the worst-case single-job runtime.
DEFAULT_LEASE_TIMEOUT_S = 600.0

#: Evict a protocol >= 2 connection when nothing — pings included —
#: has arrived for this long.  Workers ping every couple of seconds
#: (:data:`repro.dist.worker.WORKER_HEARTBEAT_S`), so this tolerates
#: deep scheduler stalls without false positives.
DEFAULT_HEARTBEAT_TIMEOUT_S = 30.0

#: Serve/monitor loop wake-up ceiling (they wake earlier when the
#: configured timeouts are shorter, e.g. in tests).
_TICK_CEILING_S = 0.25

#: How long a challenged peer gets to produce its signed ``hello``.
AUTH_HANDSHAKE_TIMEOUT_S = 10.0

#: Retained prefetched artifacts (newest win): enough for a sweep's
#: working set, bounded so a chatty client cannot balloon the server.
PREFETCH_CAP = 32

#: Session id of the in-process caller (always present).
_LOCAL_SESSION = 0

#: ``hello`` roles the coordinator recognizes; anything else is
#: treated as a worker (the protocol is additive).
_ROLES = ("worker", "observer", "client")


@dataclass
class _Job:
    """One queued unit of work (payload is pickled ``(fn, item)``)."""

    id: int
    payload: bytes
    attempts: int = 0
    #: owning session id (session 0 is the in-process caller).
    session: int = _LOCAL_SESSION
    #: the id the owner knows this job by: the global id for the local
    #: session, the client-chosen ``submit`` tag for remote sessions.
    tag: int | None = None
    #: resolved local jobs stay in ``_jobs`` until forgotten; this flag
    #: (not membership) is what marks them done.
    resolved: bool = False

    def __post_init__(self) -> None:
        if self.tag is None:
            self.tag = self.id


@dataclass(eq=False)  # identity hash: connections live in a set
class _Connection:
    """Book-keeping for one connection (worker, observer or client)."""

    sock: socket.socket
    peer: str
    #: accept-order sequence number.  ``_connections`` is a set, so any
    #: code whose *order* over connections matters (dispatch, lease
    #: expiry, eviction) iterates ``sorted(..., key=lambda c: c.seq)``
    #: instead of set order — scheduling decisions stay deterministic
    #: for a fixed connection history.
    seq: int = 0
    name: str = ""
    proto: int = 1
    #: what the peer's ``hello`` announced: ``"worker"`` (dispatched
    #: to, counted, evicted for silence), ``"observer"`` (monitoring
    #: only — none of the above), or ``"client"`` (owns a session;
    #: evicted for silence so dead tenants are garbage-collected).
    role: str = "worker"
    #: the session a ``role: "client"`` connection owns.
    session_id: int | None = None
    #: jobs this connection resolved (results and errors both count).
    jobs_done: int = 0
    #: latest ``status`` frame metrics (a ``MetricsSnapshot.to_dict()``).
    status: dict = field(default_factory=dict)
    #: heartbeat interval the peer advertised in ``hello`` (0 = none).
    heartbeat_s: float = 0.0
    #: job id -> monotonic lease deadline (``inf`` when timeouts are off).
    leases: dict[int, float] = field(default_factory=dict)
    #: monotonic time of the last frame received (any type).
    last_recv: float = field(default_factory=time.monotonic)
    #: a v2 connection waiting for work (blocked ``request``).
    hungry: bool = False
    #: serializes frame writes — serve, monitor and submit threads all
    #: send on the same socket.
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    #: eviction already triggered (the reap may still be in flight).
    evicting: bool = False
    reaped: bool = False


@dataclass(eq=False)
class _Session:
    """One tenant's job namespace (the in-process caller is session 0)."""

    id: int
    name: str = ""
    #: fair-share weight: a priority-2 session receives twice the
    #: dispatch slots of a priority-1 session under contention.
    priority: float = 1.0
    #: the owning client connection; ``None`` for the local session.
    conn: _Connection | None = None
    #: queued job ids, oldest first; lease-expiry requeues go in front.
    queue: deque[int] = field(default_factory=deque)
    #: stride-scheduling virtual time: dispatching one job advances it
    #: by ``1 / priority``; the session with the smallest stride is the
    #: one furthest below its fair share and dispatches next.
    stride: float = 0.0
    submitted: int = 0
    completed: int = 0
    cancelled: int = 0


class Coordinator:
    """Job queue + lease tracker + fair scheduler behind a TCP listener.

    Args:
        host: interface to bind (default loopback).
        port: TCP port; ``0`` picks a free ephemeral port.
        max_attempts: times a job may be leased before a repeated
            worker loss marks it failed (guards against poison jobs
            that take down every worker they touch).
        lease_timeout_s: seconds a leased job may stay unresolved
            before the monitor thread requeues it (``None`` disables
            lease deadlines; death/eviction rescheduling still works).
        heartbeat_timeout_s: seconds of total silence after which a
            protocol >= 2 connection is evicted (``None`` disables
            eviction; EOF detection still works).
        secret: shared secret for untrusted interfaces; when set, every
            accepted connection must answer the ``auth_challenge``
            nonce in its ``hello`` or it is rejected.
    """

    #: Lock discipline, statically enforced by the ``lock-discipline``
    #: checker (:mod:`repro.analysis`): every read or write of these
    #: attributes must happen inside ``with self._cv:`` or in a method
    #: whose name ends in ``_locked`` (caller holds the lock).
    GUARDED_BY = {
        "_connections": "_cv",
        "_jobs": "_cv",
        "_results": "_cv",
        "_sessions": "_cv",
        "_artifacts": "_cv",
        "_next_id": "_cv",
        "_next_seq": "_cv",
        "_next_session_id": "_cv",
        "_closing": "_cv",
        "_threads": "_cv",
        "workers_seen": "_cv",
        "jobs_completed": "_cv",
        "jobs_cancelled": "_cv",
        "reschedules": "_cv",
        "lease_expiries": "_cv",
        "evictions": "_cv",
        "sessions_opened": "_cv",
        "sessions_closed": "_cv",
        "auth_rejections": "_cv",
        "prefetch_pushes": "_cv",
    }

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_attempts: int = 3,
                 lease_timeout_s: float | None = DEFAULT_LEASE_TIMEOUT_S,
                 heartbeat_timeout_s: float | None =
                 DEFAULT_HEARTBEAT_TIMEOUT_S,
                 secret: str | None = None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if lease_timeout_s is not None and lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be > 0 (or None)")
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be > 0 (or None)")
        self.host = host
        self.port = port
        self.max_attempts = max_attempts
        self.lease_timeout_s = lease_timeout_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.secret = secret or None
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._connections: set[_Connection] = set()
        self._jobs: dict[int, _Job] = {}
        #: the *local* session's resolved outcomes, keyed by job id —
        #: client sessions have their results pushed, never stored.
        self._results: dict[int, tuple[str, object]] = {}
        self._sessions: dict[int, _Session] = {
            _LOCAL_SESSION: _Session(id=_LOCAL_SESSION, name="local"),
        }
        #: prefetched artifacts, key -> (fingerprint, instructions,
        #: pickled payload); replayed to every worker that joins.
        self._artifacts: dict[str, tuple[str, int, bytes]] = {}
        self._next_id = 0
        self._next_seq = 0
        self._next_session_id = _LOCAL_SESSION + 1
        self._closing = False
        self._cv = threading.Condition()
        # observability counters
        self.workers_seen = 0
        self.jobs_completed = 0
        self.jobs_cancelled = 0
        self.reschedules = 0
        self.lease_expiries = 0
        self.evictions = 0
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.auth_rejections = 0
        self.prefetch_pushes = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> str:
        """Bind, start the accept + monitor loops, return the address."""
        if self._listener is not None:
            return self.addr
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        self.port = listener.getsockname()[1]
        self._listener = listener
        threads = [
            threading.Thread(target=self._accept_loop, name="dist-accept",
                             daemon=True),
            threading.Thread(target=self._monitor_loop, name="dist-monitor",
                             daemon=True),
        ]
        for thread in threads:
            thread.start()
        with self._cv:
            self._threads.extend(threads)
        return self.addr

    @property
    def addr(self) -> str:
        """The ``host:port`` workers should connect to."""
        return format_addr(self.host, self.port)

    def worker_count(self) -> int:
        """Live worker connections right now (observers/clients excluded)."""
        with self._cv:
            return sum(1 for c in self._connections if c.role == "worker")

    def status_report(self) -> dict:
        """JSON-able cluster snapshot (the ``status_reply`` body).

        Per-worker rows (name, protocol, leases held, jobs done, age of
        the last received frame, latest ``status`` metrics), per-session
        rows (queue depth, jobs in flight, jobs done), queue depths, the
        coordinator's lifetime counters, and the merge of every worker's
        latest metrics snapshot.
        """
        from repro.obs import MetricsSnapshot

        now = time.monotonic()
        merged = MetricsSnapshot()
        workers = []
        with self._cv:
            conns = sorted(
                (c for c in self._connections if c.role == "worker"),
                key=lambda c: c.name or c.peer,
            )
            for conn in conns:
                workers.append({
                    "name": conn.name or conn.peer,
                    "peer": conn.peer,
                    "proto": conn.proto,
                    "leases": len(conn.leases),
                    "jobs_done": conn.jobs_done,
                    "heartbeat_age_s": round(now - conn.last_recv, 3),
                    "metrics": conn.status,
                })
                if conn.status:
                    try:
                        merged = merged.merge(
                            MetricsSnapshot.from_dict(conn.status)
                        )
                    except (TypeError, ValueError, KeyError):
                        pass  # malformed frame: skip, don't fail status
            in_flight: dict[int, int] = {}
            for conn in conns:
                for job_id in conn.leases:
                    job = self._jobs.get(job_id)
                    if job is not None:
                        in_flight[job.session] = \
                            in_flight.get(job.session, 0) + 1
            sessions = [
                {
                    "id": session.id,
                    "name": session.name,
                    "priority": session.priority,
                    "queued": len(session.queue),
                    "in_flight": in_flight.get(session.id, 0),
                    "submitted": session.submitted,
                    "jobs_done": session.completed,
                }
                for session in sorted(self._sessions.values(),
                                      key=lambda s: s.id)
            ]
            report = {
                "addr": self.addr,
                "workers": workers,
                "sessions": sessions,
                "pending": sum(
                    len(s.queue) for s in self._sessions.values()
                ),
                "unresolved": sum(
                    1 for j in self._jobs.values() if not j.resolved
                ),
                "counters": {
                    "workers_seen": self.workers_seen,
                    "jobs_completed": self.jobs_completed,
                    "jobs_cancelled": self.jobs_cancelled,
                    "reschedules": self.reschedules,
                    "lease_expiries": self.lease_expiries,
                    "evictions": self.evictions,
                    "sessions_opened": self.sessions_opened,
                    "sessions_closed": self.sessions_closed,
                    "auth_rejections": self.auth_rejections,
                    "prefetch_pushes": self.prefetch_pushes,
                },
            }
        report["cluster_metrics"] = merged.to_dict()
        return report

    def shutdown(self) -> None:
        """Stop accepting, disconnect peers, fail pending waits."""
        with self._cv:
            if self._closing:
                return
            self._closing = True
            connections = sorted(self._connections, key=lambda c: c.seq)
            threads = list(self._threads)
            self._cv.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in connections:
            # Shutdown only: each serve thread closes its own fd.
            self._disconnect_socket(conn.sock)
        for thread in threads:
            thread.join(timeout=2.0)

    @staticmethod
    def _drop_socket(sock: socket.socket) -> None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    @staticmethod
    def _disconnect_socket(sock: socket.socket) -> None:
        """Shut the socket down without closing its fd.

        Threads other than a connection's own serve thread must never
        ``close()`` it: the serve thread may be blocked in
        ``select``/``recv`` on that fd, and closing would let the
        kernel reuse the number for a newly accepted worker — the stale
        serve thread would then read the *new* connection's frames.
        ``shutdown`` wakes the serve thread with EOF instead, and the
        serve thread closes the fd itself on exit.
        """
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _tick_s(self) -> float:
        """Wake-up period for the serve/monitor loops."""
        tick = _TICK_CEILING_S
        for bound in (self.lease_timeout_s, self.heartbeat_timeout_s):
            if bound is not None:
                tick = min(tick, bound / 4.0)
        return max(0.01, tick)

    # -- local-session client API ---------------------------------------

    def submit(self, payload: bytes) -> int:
        """Enqueue one pickled job on the local session; returns its id."""
        with self._cv:
            if self._closing:
                raise RuntimeError("coordinator is shut down")
            job_id = self._next_id
            self._next_id += 1
            session = self._sessions[_LOCAL_SESSION]
            self._jobs[job_id] = _Job(id=job_id, payload=payload,
                                      session=_LOCAL_SESSION, tag=job_id)
            session.queue.append(job_id)
            session.submitted += 1
        self._dispatch()
        return job_id

    def wait_next(
        self,
        job_ids,
        timeout: float | None = None,
        worker_grace: float = DEFAULT_WORKER_GRACE_S,
    ) -> tuple[int, tuple[str, object]]:
        """Block until *one* of ``job_ids`` resolves; return it.

        Returns ``(job_id, outcome)`` for the first resolved id in
        ``job_ids`` order.  Raises ``TimeoutError`` when ``timeout``
        (which may be ``0`` for a pure poll) elapses first, and
        ``RuntimeError`` when the cluster stays *empty* — no worker ever
        connected, or every worker disconnected — for ``worker_grace``
        seconds (a mis-pointed address or a fully-crashed worker fleet
        would otherwise block forever).
        """
        job_ids = list(job_ids)
        if not job_ids:
            raise ValueError("wait_next needs at least one job id")
        deadline = None if timeout is None else time.monotonic() + timeout
        empty_since = time.monotonic()
        with self._cv:
            while True:
                for job_id in job_ids:
                    outcome = self._results.get(job_id)
                    if outcome is not None:
                        return job_id, outcome
                if self._closing:
                    raise RuntimeError(
                        "coordinator shut down with jobs outstanding"
                    )
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    raise TimeoutError(
                        f"{len(job_ids)} distributed jobs still pending"
                    )
                if any(c.role == "worker" for c in self._connections):
                    empty_since = None
                elif empty_since is None:
                    empty_since = now
                if empty_since is not None \
                        and now - empty_since >= worker_grace:
                    what = ("no worker connected to" if self.workers_seen
                            == 0 else "every worker disconnected from")
                    raise RuntimeError(
                        f"{what} {self.addr} for {worker_grace:.0f}s with "
                        f"{len(job_ids)} jobs pending; start workers with "
                        f"'python -m repro.cli worker --addr {self.addr}'"
                    )
                waits = [0.5]
                if deadline is not None:
                    waits.append(deadline - now)
                if empty_since is not None:
                    waits.append(empty_since + worker_grace - now)
                self._cv.wait(timeout=max(0.01, min(waits)))

    def as_completed(
        self,
        job_ids,
        timeout: float | None = None,
        worker_grace: float = DEFAULT_WORKER_GRACE_S,
    ):
        """Yield ``(job_id, outcome)`` as results land, in landing order.

        ``timeout`` bounds the *whole* iteration, not each step.  Ids
        already resolved yield immediately; duplicates in ``job_ids``
        yield once.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        pending = list(dict.fromkeys(job_ids))  # de-dup, keep order
        while pending:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            job_id, outcome = self.wait_next(
                pending, timeout=remaining, worker_grace=worker_grace
            )
            pending.remove(job_id)
            yield job_id, outcome

    def wait(
        self,
        job_ids: list[int],
        timeout: float | None = None,
        worker_grace: float = DEFAULT_WORKER_GRACE_S,
    ) -> list[tuple[str, object]]:
        """Block until every job resolves; results in ``job_ids`` order.

        Each entry is ``("ok", payload_bytes)`` or ``("error", text)``.
        Same ``TimeoutError``/``RuntimeError`` behavior as
        :meth:`wait_next`; ``timeout=0`` polls without blocking.
        """
        resolved = dict(self.as_completed(
            job_ids, timeout=timeout, worker_grace=worker_grace
        ))
        return [resolved[job_id] for job_id in job_ids]

    def forget(self, job_ids: list[int]) -> None:
        """Drop resolved results the caller has consumed (bounded memory)."""
        with self._cv:
            for job_id in job_ids:
                self._results.pop(job_id, None)
                self._jobs.pop(job_id, None)

    def prefetch(self, fingerprint: str, instructions: int,
                 payload: bytes) -> int:
        """Retain one pickled artifact and push it to the worker fleet.

        Returns how many currently-connected workers it was pushed to;
        workers that join later receive it with their ``hello``.
        """
        with self._cv:
            sends = self._prefetch_locked(
                fingerprint, instructions, payload, exclude=None
            )
        self._send_all(sends)
        return len(sends)

    # -- connection handling --------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            conn = _Connection(sock=sock, peer=f"{peer[0]}:{peer[1]}")
            thread = threading.Thread(
                target=self._serve, args=(conn,),
                name=f"dist-conn-{conn.peer}", daemon=True,
            )
            with self._cv:
                if self._closing:
                    self._drop_socket(sock)
                    return
                conn.seq = self._next_seq
                self._next_seq += 1
                self._connections.add(conn)
                # Prune threads of connections that already left, so an
                # elastic cluster (workers joining/leaving at will) does
                # not accumulate one dead Thread per connection forever.
                # Under the lock: shutdown() snapshots this list.
                self._threads = [
                    t for t in self._threads if t.is_alive()
                ] + [thread]
                self._cv.notify_all()
            thread.start()

    def _serve(self, conn: _Connection) -> None:
        """Handle one connection until it drops or is evicted."""
        tick = self._tick_s()
        # A connection only counts toward workers_seen once its hello
        # proves it is a worker, not an observer or client (and v1
        # peers that never hello count on their first frame instead).
        counted = False
        try:
            if self.secret is not None \
                    and not self._auth_handshake(conn, tick):
                return
            while True:
                try:
                    header, payload = recv_msg(conn.sock, timeout=tick)
                except ReceiveTimeout:
                    # No frame this tick; the monitor thread decides
                    # whether the silence has lasted long enough to
                    # evict.  A closing coordinator ends the loop here.
                    with self._cv:
                        if self._closing:
                            return
                    continue
                conn.last_recv = time.monotonic()
                kind = header.get("type")
                if kind == MSG_HELLO:
                    self._send_all(self._handle_hello(conn, header))
                elif kind == MSG_PING:
                    with conn.send_lock:
                        send_msg(conn.sock, {"type": MSG_PONG})
                elif kind == MSG_STATUS:
                    metrics = header.get("metrics")
                    conn.status = metrics if isinstance(metrics, dict) \
                        else {}
                    jobs = header.get("jobs_executed")
                    if isinstance(jobs, int):
                        conn.jobs_done = max(conn.jobs_done, jobs)
                elif kind == MSG_STATUS_REQUEST:
                    report = self.status_report()
                    with conn.send_lock:
                        send_msg(conn.sock, {
                            "type": MSG_STATUS_REPLY, "report": report,
                        })
                elif kind == MSG_REQUEST:
                    self._handle_request(conn)
                elif kind == MSG_RESULT:
                    self._resolve(conn, int(header["job"]), ("ok", payload))
                elif kind == MSG_ERROR:
                    self._resolve(
                        conn, int(header["job"]),
                        ("error", str(header.get("error", "unknown error"))),
                    )
                elif kind == MSG_SUBMIT:
                    self._handle_submit(conn, header, payload)
                elif kind == MSG_CANCEL:
                    self._handle_cancel(conn, header)
                elif kind == MSG_PREFETCH:
                    self._handle_prefetch(conn, header, payload)
                elif kind not in FRAME_TYPES:
                    # Additive protocol: a frame type from a newer peer
                    # is ignored, never an error.
                    pass
                if not counted and conn.role == "worker":
                    counted = True
                    with self._cv:
                        self.workers_seen += 1
                        self._cv.notify_all()
        except (ConnectionError, OSError, ValueError, KeyError):
            pass
        finally:
            self._reap(conn)
            # The serve thread is the fd's sole owner (see
            # _disconnect_socket); it closes on the way out.
            try:
                conn.sock.close()
            except OSError:
                pass

    def _auth_handshake(self, conn: _Connection, tick: float) -> bool:
        """Challenge a new connection; True once a signed hello arrived.

        Nothing the peer sends before a correctly-signed ``hello``
        touches coordinator state, so a bad-secret (or no-secret) peer
        is rejected without disturbing live sessions.
        """
        assert self.secret is not None
        nonce = make_nonce()
        try:
            with conn.send_lock:
                send_msg(conn.sock, {
                    "type": MSG_AUTH_CHALLENGE, "nonce": nonce,
                })
        except (ConnectionError, OSError):
            return False
        deadline = time.monotonic() + AUTH_HANDSHAKE_TIMEOUT_S
        header: dict | None = None
        while header is None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                header, _payload = recv_msg(
                    conn.sock, timeout=min(tick, remaining)
                )
            except ReceiveTimeout:
                with self._cv:
                    if self._closing:
                        return False
                continue
        conn.last_recv = time.monotonic()
        expected = auth_digest(self.secret, nonce)
        supplied = str((header or {}).get("auth") or "")
        if header is None or header.get("type") != MSG_HELLO \
                or not hmac.compare_digest(supplied, expected):
            with self._cv:
                self.auth_rejections += 1
            try:
                with conn.send_lock:
                    send_msg(conn.sock, {
                        "type": MSG_AUTH_REJECT,
                        "error": "authentication failed",
                    })
            except (ConnectionError, OSError):
                pass
            return False
        self._send_all(self._handle_hello(conn, header))
        return True

    def _handle_hello(self, conn: _Connection, header: dict):
        """Record a peer's announce.

        Returns frames to send: the retained prefetched artifacts, for
        a protocol >= 3 worker joining the cluster.
        """
        conn.name = str(
            header.get("session") or header.get("worker") or conn.peer
        )
        conn.proto = int(header.get("proto", 1))
        role = str(header.get("role", "worker"))
        conn.role = role if role in _ROLES else "worker"
        try:
            conn.heartbeat_s = max(
                0.0, float(header.get("heartbeat", 0) or 0)
            )
        except (TypeError, ValueError):
            conn.heartbeat_s = 0.0
        sends: list[tuple[_Connection, dict, bytes | None]] = []
        if conn.role == "client":
            try:
                priority = float(header.get("priority", 1.0) or 1.0)
            except (TypeError, ValueError):
                priority = 1.0
            priority = min(max(priority, 0.01), 100.0)
            with self._cv:
                if conn.session_id is None and not self._closing:
                    session = _Session(
                        id=self._next_session_id, name=conn.name,
                        priority=priority, conn=conn,
                    )
                    # Join at the current virtual time: a fresh session
                    # must not monopolize dispatch just to catch up
                    # with strides older sessions accumulated first.
                    session.stride = min(
                        (s.stride for s in self._sessions.values()),
                        default=0.0,
                    )
                    self._next_session_id += 1
                    self._sessions[session.id] = session
                    conn.session_id = session.id
                    self.sessions_opened += 1
                    self._cv.notify_all()
        elif conn.role == "worker" and conn.proto >= 3:
            with self._cv:
                sends = [
                    (conn, {"type": MSG_PREFETCH,
                            "fingerprint": fingerprint,
                            "instructions": instructions}, payload)
                    for fingerprint, instructions, payload
                    in self._artifacts.values()
                ]
        return sends

    def _handle_request(self, conn: _Connection) -> None:
        sends: list[tuple[_Connection, dict, bytes | None]]
        with self._cv:
            if self._closing:
                sends = [(conn, {"type": MSG_SHUTDOWN}, None)]
            else:
                conn.hungry = True
                sends = self._dispatch_locked()
                if conn.hungry and conn.proto < 2:
                    # v1 workers poll: they expect an immediate reply.
                    conn.hungry = False
                    sends.append((conn, {"type": MSG_IDLE}, None))
        self._send_all(sends)

    def _handle_submit(self, conn: _Connection, header: dict,
                       payload: bytes | None) -> None:
        """A client session enqueued one job."""
        with self._cv:
            session = self._session_for_locked(conn)
            if session is None or self._closing:
                return
            try:
                tag = int(header.get("job", session.submitted))
            except (TypeError, ValueError):
                tag = session.submitted
            job_id = self._next_id
            self._next_id += 1
            self._jobs[job_id] = _Job(
                id=job_id, payload=payload or b"",
                session=session.id, tag=tag,
            )
            session.queue.append(job_id)
            session.submitted += 1
            self._cv.notify_all()
        self._dispatch()

    def _handle_cancel(self, conn: _Connection, header: dict) -> None:
        """Drop a client session's jobs (``jobs`` tags, or all of them).

        Queued entries never dispatch; entries a worker already holds
        run out their lease, and the late result is dropped because the
        job row is gone.
        """
        tags = header.get("jobs")
        wanted: set[int] | None = None
        if isinstance(tags, list):
            wanted = set()
            for tag in tags:
                try:
                    wanted.add(int(tag))
                except (TypeError, ValueError):
                    continue
        with self._cv:
            session = self._session_for_locked(conn)
            if session is None:
                return
            doomed = [
                job_id for job_id, job in self._jobs.items()
                if job.session == session.id
                and (wanted is None or job.tag in wanted)
            ]
            for job_id in doomed:
                del self._jobs[job_id]
                session.cancelled += 1
                self.jobs_cancelled += 1
            self._cv.notify_all()

    def _handle_prefetch(self, conn: _Connection, header: dict,
                         payload: bytes | None) -> None:
        """A client pushed a trace artifact for the worker fleet."""
        if payload is None:
            return
        fingerprint = str(header.get("fingerprint") or "")
        if not fingerprint:
            return
        try:
            instructions = int(header.get("instructions", 0))
        except (TypeError, ValueError):
            instructions = 0
        with self._cv:
            sends = self._prefetch_locked(
                fingerprint, instructions, payload, exclude=conn
            )
        self._send_all(sends)

    def _session_for_locked(self, conn: _Connection) -> _Session | None:
        """The live session a client connection owns (caller holds _cv)."""
        if conn.session_id is None:
            return None
        return self._sessions.get(conn.session_id)

    def _prefetch_locked(self, fingerprint: str, instructions: int,
                         payload: bytes, exclude: _Connection | None):
        """Retain one artifact, build its fan-out (caller holds _cv)."""
        key = f"{fingerprint}-{instructions}"
        # Re-insert so the newest artifacts survive the cap.
        self._artifacts.pop(key, None)
        self._artifacts[key] = (fingerprint, instructions, payload)
        while len(self._artifacts) > PREFETCH_CAP:
            del self._artifacts[next(iter(self._artifacts))]
        targets = sorted(
            (c for c in self._connections
             if c.role == "worker" and c.proto >= 3 and c is not exclude),
            key=lambda c: c.seq,
        )
        self.prefetch_pushes += len(targets)
        return [
            (c, {"type": MSG_PREFETCH, "fingerprint": fingerprint,
                 "instructions": instructions}, payload)
            for c in targets
        ]

    def _dispatch(self) -> None:
        """Pair queued jobs with hungry connections and send them.

        Called after anything that enqueues work (submit, reschedule)
        or frees a worker.  Sending happens outside the lock; a send
        failure reaps that connection (requeueing the just-granted
        lease) and the loop retries with whoever is left.
        """
        while True:
            with self._cv:
                sends = self._dispatch_locked()
            if not sends:
                return
            if not self._send_all(sends):
                return

    def _dispatch_locked(self) -> list[tuple[_Connection, dict,
                                             bytes | None]]:
        """Assign queued jobs to hungry connections (caller holds _cv).

        Workers are served in accept order; *jobs* are chosen by the
        stride scheduler (:meth:`_next_job_locked`), which interleaves
        sessions instead of draining whichever submitted first.
        """
        sends: list[tuple[_Connection, dict, bytes | None]] = []
        if self._closing:
            return sends
        hungry = deque(sorted(
            (c for c in self._connections
             if c.hungry and c.role == "worker"),
            key=lambda c: c.seq,
        ))
        while hungry:
            job = self._next_job_locked()
            if job is None:
                break
            conn = hungry.popleft()
            job.attempts += 1
            deadline = (float("inf") if self.lease_timeout_s is None
                        else time.monotonic() + self.lease_timeout_s)
            conn.leases[job.id] = deadline
            conn.hungry = False
            sends.append((conn, {"type": MSG_JOB, "job": job.id},
                          job.payload))
        return sends

    def _next_job_locked(self) -> _Job | None:
        """Pop the next dispatchable job, interleaving sessions fairly.

        Stride scheduling: every session tracks a virtual time that
        advances by ``1 / priority`` per dispatched job; the session
        with queued work and the smallest stride (ties broken by id,
        so the choice is deterministic) dispatches next.  A session
        that floods the queue therefore advances its own stride past
        everyone else's and cannot starve a small session, while equal
        priorities degenerate to round-robin.
        """
        while True:
            ready = [s for s in self._sessions.values() if s.queue]
            if not ready:
                return None
            session = min(ready, key=lambda s: (s.stride, s.id))
            job = self._jobs.get(session.queue.popleft())
            if job is None or job.resolved:
                # Forgotten/cancelled (abandoned batch) or already
                # resolved (a rescheduled twin finished): skip without
                # charging the session for it.
                continue
            session.stride += 1.0 / session.priority
            return job

    def _send_all(self, sends) -> bool:
        """Send frames outside the lock; reap dead targets.

        Returns True if any send failed (the caller should re-dispatch:
        the reap requeued the affected leases).
        """
        failed = False
        for conn, header, payload in sends:
            try:
                with conn.send_lock:
                    send_msg(conn.sock, header, payload)
            except (ConnectionError, OSError):
                failed = True
                self._reap(conn)
        return failed

    def _resolve(self, conn: _Connection, job_id: int,
                 result: tuple[str, object]) -> None:
        notify_dispatch = False
        client_send = None
        with self._cv:
            conn.leases.pop(job_id, None)
            conn.jobs_done += 1
            job = self._jobs.get(job_id)
            if job is None or job.resolved:
                # Forgotten, cancelled, owned by a dead session, or a
                # duplicate resolution (an expired-lease rerun and the
                # original both finished).  Results are pure functions
                # of pickled inputs, so keep the first and drop the
                # rest on the floor — storing a late result for a
                # caller that can never consume it would leak forever.
                return
            session = self._sessions.get(job.session)
            if session is None:
                del self._jobs[job_id]
                return
            session.completed += 1
            self.jobs_completed += 1
            if session.conn is None:
                job.resolved = True
                self._results[job.tag] = result
            else:
                # Client sessions get their result pushed the moment it
                # lands; the coordinator retains nothing for them.
                del self._jobs[job_id]
                status, value = result
                if status == "ok":
                    client_send = (session.conn, {
                        "type": MSG_BATCH_RESULT, "job": job.tag,
                        "status": "ok",
                    }, value)
                else:
                    client_send = (session.conn, {
                        "type": MSG_BATCH_RESULT, "job": job.tag,
                        "status": "error", "error": str(value),
                    }, None)
            self._cv.notify_all()
            notify_dispatch = any(
                s.queue for s in self._sessions.values()
            )
        if client_send is not None:
            self._send_all([client_send])
        if notify_dispatch:
            self._dispatch()

    # -- liveness -------------------------------------------------------

    def _monitor_loop(self) -> None:
        """Expire overdue leases and evict silent connections."""
        while True:
            tick = self._tick_s()
            with self._cv:
                if self._closing:
                    return
                self._cv.wait(timeout=tick)
                if self._closing:
                    return
                requeued, sends = self._expire_leases_locked()
                stale = self._stale_connections_locked()
            # Outside the lock, and shutdown-only: the eviction wakes
            # the connection's serve thread, which reaps and closes.
            for conn in stale:
                self._disconnect_socket(conn.sock)
            if sends:
                self._send_all(sends)
            if requeued:
                self._dispatch()

    def _expire_leases_locked(self):
        """Requeue overdue leases (caller holds _cv).

        Returns ``(requeued, sends)``: whether any job went back on a
        queue, plus ``batch_result`` error frames for client jobs that
        just exhausted their attempts (sent outside the lock).
        """
        if self.lease_timeout_s is None:
            return False, []
        now = time.monotonic()
        requeued = False
        sends = []
        for conn in sorted(self._connections, key=lambda c: c.seq):
            overdue = [job_id for job_id, deadline in conn.leases.items()
                       if now >= deadline]
            for job_id in overdue:
                del conn.leases[job_id]
                self.lease_expiries += 1
                job = self._jobs.get(job_id)
                attempts = job.attempts if job is not None else 0
                did, send = self._drop_lease_locked(job_id, (
                    f"job {job_id} timed out on {attempts} workers "
                    f"(last: {conn.name or conn.peer}, lease "
                    f"{self.lease_timeout_s:.0f}s); giving up"
                ))
                requeued = requeued or did
                if send is not None:
                    sends.append(send)
        return requeued, sends

    def _drop_lease_locked(self, job_id: int, message: str):
        """Handle one lost lease: requeue, fail, or drop (caller holds _cv).

        Returns ``(requeued, send)`` — ``send`` is a ``batch_result``
        error frame when a *client* job just ran out of attempts
        (``None`` otherwise; local jobs fail into ``_results``).
        """
        job = self._jobs.get(job_id)
        if job is None or job.resolved:
            return False, None
        session = self._sessions.get(job.session)
        if session is None:
            # Dead session: its jobs were dropped at GC; this lease is
            # the straggler.  Drop the row, never requeue.
            self._jobs.pop(job_id, None)
            return False, None
        if job.attempts >= self.max_attempts:
            session.completed += 1
            self.jobs_completed += 1
            self._cv.notify_all()
            if session.conn is None:
                job.resolved = True
                self._results[job.tag] = ("error", message)
                return False, None
            del self._jobs[job_id]
            return False, (session.conn, {
                "type": MSG_BATCH_RESULT, "job": job.tag,
                "status": "error", "error": message,
            }, None)
        # Front of the owning session's queue: the lost job is its
        # oldest outstanding work, so it must not wait behind the whole
        # backlog again.
        session.queue.appendleft(job_id)
        self.reschedules += 1
        self._cv.notify_all()
        return True, None

    def _stale_connections_locked(self) -> list[_Connection]:
        """Connections gone silent past their heartbeat tolerance.

        A peer that advertised a *slower* heartbeat than the default
        in its ``hello`` (``--heartbeat 45``) is judged against that
        interval — three missed beats — not the global floor, so a
        legitimately configured fleet is never evicted while healthy.
        Clients are evicted like workers (a half-open client session
        would otherwise hold its queue forever); observers never are.
        """
        if self.heartbeat_timeout_s is None:
            return []
        now = time.monotonic()
        stale = []
        for conn in sorted(self._connections, key=lambda c: c.seq):
            if conn.proto < 2 or conn.evicting or conn.role == "observer":
                continue
            tolerance = max(self.heartbeat_timeout_s,
                            3.0 * conn.heartbeat_s)
            if now - conn.last_recv >= tolerance:
                stale.append(conn)
        for conn in stale:
            conn.evicting = True
        self.evictions += len(stale)
        return stale

    def _close_session_locked(self, session: _Session) -> None:
        """Garbage-collect a dead client session (caller holds _cv).

        Queued jobs are dropped before they waste a worker; jobs a
        worker already holds run out their lease, and their late
        results are dropped because the job rows are gone.  Nothing is
        retained: a client that died mid-batch must not leak its
        backlog or its results.
        """
        if self._sessions.pop(session.id, None) is None:
            return
        doomed = [job_id for job_id, job in self._jobs.items()
                  if job.session == session.id]
        for job_id in doomed:
            del self._jobs[job_id]
        session.queue.clear()
        self.sessions_closed += 1
        self._cv.notify_all()

    def _reap(self, conn: _Connection) -> None:
        """Connection died: reschedule its leases, drop its state.

        Callable from any thread (serve, monitor, dispatch): it only
        shuts the socket down; the fd itself is closed by the
        connection's serve thread when it exits.  A client connection's
        session is garbage-collected here — EOF and heartbeat eviction
        both funnel into this path.
        """
        self._disconnect_socket(conn.sock)
        sends = []
        with self._cv:
            if conn.reaped:
                return
            conn.reaped = True
            self._connections.discard(conn)
            for job_id in sorted(conn.leases):
                job = self._jobs.get(job_id)
                attempts = job.attempts if job is not None else 0
                _requeued, send = self._drop_lease_locked(job_id, (
                    f"job {job_id} lost {attempts} workers "
                    f"(last: {conn.name or conn.peer}); giving up"
                ))
                if send is not None:
                    sends.append(send)
            conn.leases.clear()
            if conn.session_id is not None:
                session = self._sessions.get(conn.session_id)
                if session is not None:
                    self._close_session_locked(session)
            self._cv.notify_all()
        if sends:
            self._send_all(sends)
        self._dispatch()
