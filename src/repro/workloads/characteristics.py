"""Application characteristics extraction and reporting.

The cloning workflow (Section II-A1) captures microarchitecture-independent
characteristics (instruction distribution, dependency distance, memory
footprint) directly from the program, and microarchitecture-dependent ones
(hit rates, mispredictions, IPC) from a simulation on a concrete core.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.sim.config import CoreConfig
from repro.sim.simulator import Simulator


def characterize_program(program: Program) -> dict[str, float]:
    """Microarchitecture-independent characteristics of one program."""
    fractions = program.group_fractions()
    mem = program.memory_instructions()
    footprint = max((i.memory.footprint for i in mem), default=0)
    strides = sorted({i.memory.stride for i in mem})
    out = {
        "static_instructions": float(len(program)),
        "code_bytes": float(program.metadata.get("code_bytes", len(program) * 4)),
        "dependency_distance": float(
            program.metadata.get("dependency_distance", 0)
        ),
        "memory_footprint_bytes": float(footprint),
        "memory_streams": float(len(program.metadata.get("memory_streams", []))),
        "branch_random_ratio": float(
            program.metadata.get("branch_random_ratio", 0.0)
        ),
    }
    for group in ("integer", "float", "load", "store", "branch"):
        out[f"frac_{group}"] = fractions.get(group, 0.0)
    if strides:
        out["min_stride"] = float(strides[0])
        out["max_stride"] = float(strides[-1])
    return out


def characterize_workload(
    workload, core: CoreConfig, instructions: int = 20_000
) -> dict[str, dict[str, float]]:
    """Static + dynamic characteristics per phase, plus combined metrics.

    Returns a dict with one entry per phase (static characteristics merged
    with that phase's simulated metrics) and a ``"combined"`` entry with
    the workload-level reference metric vector.
    """
    sim = Simulator(core)
    report: dict[str, dict[str, float]] = {}
    for phase, program in zip(workload.phases, workload.programs()):
        entry = characterize_program(program)
        stats = sim.run(program, instructions=instructions)
        entry.update(stats.metrics())
        entry["weight"] = phase.weight
        report[phase.name] = entry
    report["combined"] = workload.reference_metrics(core, instructions)
    return report


def format_characteristics(report: dict[str, dict[str, float]]) -> str:
    """Render a characteristics report as an aligned text table."""
    keys = sorted({k for entry in report.values() for k in entry})
    names = list(report)
    width = max(len(k) for k in keys) + 2
    lines = [" " * width + "  ".join(f"{n:>12}" for n in names)]
    for key in keys:
        row = [f"{key:<{width}}"]
        for name in names:
            value = report[name].get(key)
            row.append(f"{value:>12.4f}" if value is not None else " " * 12)
        lines.append("  ".join(row))
    return "\n".join(lines)
