"""SimPoint: basic-block vectors + k-means phase selection.

The paper's cloning workflow accepts application simpoints [21] and
generates one clone per simpoint.  This module reimplements the SimPoint
pipeline from scratch:

1. slice an execution into fixed-size intervals and build a basic-block
   vector (BBV) per interval — the execution-frequency fingerprint;
2. reduce dimension with a random projection (as the SimPoint tool does);
3. cluster the BBVs with k-means, choosing k by a BIC-style score;
4. pick the interval closest to each centroid as that cluster's simpoint,
   weighted by cluster population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SimPoint:
    """One selected representative interval.

    Attributes:
        interval: index of the representative interval.
        weight: fraction of the execution the cluster covers.
        cluster: cluster id.
    """

    interval: int
    weight: float
    cluster: int


def random_projection(
    bbvs: np.ndarray, dims: int = 15, seed: int = 0
) -> np.ndarray:
    """Project BBVs to ``dims`` dimensions (SimPoint's preprocessing)."""
    bbvs = np.asarray(bbvs, dtype=float)
    if bbvs.ndim != 2:
        raise ValueError("bbvs must be 2-D (intervals x blocks)")
    if bbvs.shape[1] <= dims:
        return bbvs
    rng = np.random.default_rng(seed)
    projection = rng.normal(size=(bbvs.shape[1], dims)) / np.sqrt(dims)
    return bbvs @ projection


def kmeans(
    points: np.ndarray, k: int, seed: int = 0, max_iters: int = 100
) -> tuple[np.ndarray, np.ndarray, float]:
    """Lloyd's k-means with k-means++ seeding.

    Returns:
        ``(labels, centroids, inertia)``.
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    if k < 1 or k > n:
        raise ValueError(f"k must be in [1, {n}]")
    rng = np.random.default_rng(seed)

    # k-means++ seeding.
    centroids = [points[rng.integers(n)]]
    for _ in range(1, k):
        d2 = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = d2.sum()
        if total <= 0:
            centroids.append(points[rng.integers(n)])
            continue
        centroids.append(points[rng.choice(n, p=d2 / total)])
    centers = np.stack(centroids)

    labels = np.zeros(n, dtype=int)
    for _ in range(max_iters):
        dists = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        new_labels = np.argmin(dists, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for c in range(k):
            members = points[labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)
            else:
                centers[c] = points[rng.integers(n)]
    inertia = float(
        np.sum((points - centers[labels]) ** 2)
    )
    return labels, centers, inertia


def bic_score(points: np.ndarray, labels: np.ndarray, inertia: float) -> float:
    """BIC-style model score (higher is better), as SimPoint uses."""
    n, d = points.shape
    k = len(np.unique(labels))
    variance = max(inertia / max(1, n - k), 1e-12)
    log_likelihood = -0.5 * n * np.log(2 * np.pi * variance) - 0.5 * (n - k)
    parameters = k * (d + 1)
    return float(log_likelihood - 0.5 * parameters * np.log(n))


def select_simpoints(
    bbvs: np.ndarray,
    max_k: int = 6,
    dims: int = 15,
    seed: int = 0,
    bic_threshold: float = 0.9,
) -> list[SimPoint]:
    """Full SimPoint selection: projection, k sweep, representative pick.

    Args:
        bbvs: (intervals x basic blocks) execution-frequency matrix.
        max_k: largest cluster count considered.
        dims: projection dimensionality.
        bic_threshold: pick the smallest k whose BIC reaches this fraction
            of the best observed BIC (the SimPoint heuristic).

    Returns:
        One :class:`SimPoint` per chosen cluster, weights summing to 1.
    """
    bbvs = np.asarray(bbvs, dtype=float)
    if len(bbvs) == 0:
        raise ValueError("no intervals")
    # Normalize rows so interval length doesn't dominate similarity.
    norms = np.linalg.norm(bbvs, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    projected = random_projection(bbvs / norms, dims=dims, seed=seed)

    candidates = []
    for k in range(1, min(max_k, len(projected)) + 1):
        labels, centers, inertia = kmeans(projected, k, seed=seed)
        candidates.append((k, labels, centers, bic_score(projected, labels, inertia)))

    best_bic = max(c[3] for c in candidates)
    worst_bic = min(c[3] for c in candidates)
    span = best_bic - worst_bic
    chosen = candidates[-1]
    for cand in candidates:
        score = 1.0 if span == 0 else (cand[3] - worst_bic) / span
        if score >= bic_threshold:
            chosen = cand
            break
    k, labels, centers, _ = chosen

    simpoints = []
    n = len(projected)
    for c in range(k):
        members = np.where(labels == c)[0]
        if not len(members):
            continue
        dists = np.linalg.norm(projected[members] - centers[c], axis=1)
        representative = int(members[np.argmin(dists)])
        simpoints.append(
            SimPoint(
                interval=representative,
                weight=len(members) / n,
                cluster=c,
            )
        )
    return sorted(simpoints, key=lambda s: s.interval)


def workload_bbv_trace(
    workload, intervals_per_phase: int = 12, blocks: int = 64,
    noise: float = 0.05, seed: int = 0
) -> tuple[np.ndarray, list[str]]:
    """Synthesize the BBV trace of a reference workload's full run.

    Each phase contributes intervals whose BBV is the phase's static
    block signature plus small execution noise — the input an external
    profiler would hand to SimPoint.

    Returns:
        ``(bbvs, phase_labels)`` with one row/label per interval.
    """
    rng = np.random.default_rng(seed)
    rows = []
    labels = []
    for p, phase in enumerate(workload.phases):
        signature = rng.dirichlet(np.ones(blocks) * 0.5)
        count = max(1, round(intervals_per_phase * phase.weight * len(workload.phases)))
        for _ in range(count):
            jitter = rng.normal(0, noise, blocks)
            row = np.clip(signature + jitter * signature, 0, None)
            rows.append(row / row.sum())
            labels.append(phase.name)
    return np.asarray(rows), labels
