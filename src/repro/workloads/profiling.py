"""Execution profiling: basic-block vectors from program structure.

The SimPoint workflow starts from a profiler that slices an execution
into fixed-size intervals and records per-interval basic-block execution
counts.  This module implements that collection for reference workloads:
basic blocks are derived from each phase's generated code (straight-line
runs ending at branches), block execution counts follow the loop
structure, and the per-interval jitter comes from the phases' randomized
branch outcomes — so the BBVs SimPoint clusters are grounded in the same
programs the simulator runs, not in synthetic noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.program import Program


@dataclass(frozen=True)
class BasicBlock:
    """One static basic block of a generated loop body.

    Attributes:
        start / end: body-index range (end exclusive).
        address: PC of the first instruction.
    """

    start: int
    end: int
    address: int

    @property
    def size(self) -> int:
        return self.end - self.start


def extract_basic_blocks(program: Program) -> list[BasicBlock]:
    """Split a loop body into basic blocks (branches end blocks)."""
    blocks = []
    start = 0
    for n, instr in enumerate(program.body):
        if instr.idef.is_branch:
            blocks.append(
                BasicBlock(start, n + 1,
                           program.body[start].address or 4 * start)
            )
            start = n + 1
    if start < len(program.body):
        blocks.append(
            BasicBlock(start, len(program.body),
                       program.body[start].address or 4 * start)
        )
    return blocks


def block_vector(
    program: Program,
    dims: int = 64,
    iterations: int = 8,
    interval_index: int = 0,
) -> np.ndarray:
    """The BBV of one profiling interval of ``program``.

    Block execution counts are ``size x iterations`` (every block runs
    once per loop iteration); the interval-to-interval jitter real
    profilers see comes from the phase's randomized branch outcomes, so
    intervals of a deterministic phase are near-identical while noisy
    phases wobble.  Blocks hash into ``dims`` buckets by address, the
    fixed-dimension form the SimPoint tool uses.
    """
    blocks = extract_basic_blocks(program)
    if not blocks:
        raise ValueError("program has no instructions")
    vector = np.zeros(dims)
    randomness = float(program.metadata.get("branch_random_ratio", 0.0))
    rng = np.random.default_rng(
        (interval_index + 1) * 9973 + len(program)
    )
    for block in blocks:
        bucket = (block.address // 4) * 2654435761 % dims
        weight = block.size * iterations
        if randomness:
            weight *= 1.0 + rng.normal(0.0, 0.08 * randomness)
        vector[bucket] += max(0.0, weight)
    total = vector.sum()
    return vector / total if total else vector


def profile_workload(
    workload,
    intervals: int = 24,
    dims: int = 64,
) -> tuple[np.ndarray, list[str]]:
    """Collect the interval BBV trace of a reference workload's run.

    The full run executes phases in proportion to their weights; each
    interval profiles the phase active at that point.

    Returns:
        ``(bbvs, labels)`` — one row and phase label per interval.
    """
    total_weight = sum(p.weight for p in workload.phases)
    if total_weight <= 0:
        raise ValueError("workload has no weighted phases")
    programs = dict(zip((p.name for p in workload.phases),
                        workload.programs()))

    rows = []
    labels = []
    for phase in workload.phases:
        count = max(1, round(intervals * phase.weight / total_weight))
        program = programs[phase.name]
        for k in range(count):
            rows.append(
                block_vector(program, dims=dims, interval_index=k)
            )
            labels.append(phase.name)
    return np.asarray(rows), labels
