"""Reference workloads and SimPoint phase selection.

The paper clones 100M-instruction simpoints of eight SPEC CPU2006 INT
benchmarks.  SPEC binaries are proprietary and need a native toolchain, so
this package provides behaviourally characterized stand-ins: each reference
workload is a multi-phase synthetic application whose phase parameters are
drawn from published SPEC characterization (pointer-chasing mcf, streaming
libquantum, branchy sjeng, code-footprint-heavy gcc/xalancbmk, ...) and
deliberately lie *off* the cloning knob lattice, so cloning them is a
genuine search with realistic residual error.

A from-scratch SimPoint implementation (basic-block vectors + k-means with
BIC model selection) picks representative phases the way the paper's
workflow uses SimPoint [21].
"""

from repro.workloads.spec import (
    ReferenceWorkload,
    SPEC_BENCHMARKS,
    benchmark_names,
    get_benchmark,
)
from repro.workloads.spec_fp import (
    SPEC_FP_BENCHMARKS,
    all_benchmarks,
    fp_benchmark_names,
    get_fp_benchmark,
)
from repro.workloads.simpoint import SimPoint, kmeans, select_simpoints
from repro.workloads.characteristics import (
    characterize_program,
    characterize_workload,
    format_characteristics,
)

__all__ = [
    "ReferenceWorkload",
    "SPEC_BENCHMARKS",
    "benchmark_names",
    "get_benchmark",
    "SPEC_FP_BENCHMARKS",
    "fp_benchmark_names",
    "get_fp_benchmark",
    "all_benchmarks",
    "SimPoint",
    "kmeans",
    "select_simpoints",
    "characterize_program",
    "characterize_workload",
    "format_characteristics",
]
