"""SPEC CPU2006 FP-like extension workloads.

The paper evaluates on eight INT benchmarks; this extension suite adds
four floating-point stand-ins so the FP-side knobs (FADD/FMUL fractions,
FP dependency chains) get realistic cloning targets too.  Profiles follow
the published characterizations: bwaves/lbm are bandwidth-bound stencil
streams, milc mixes gather-style accesses with FP math, namd is
compute-dense with high ILP.
"""

from __future__ import annotations

from repro.workloads.spec import Phase, ReferenceWorkload, _phase, _streams

SPEC_FP_BENCHMARKS: dict[str, ReferenceWorkload] = {
    # bwaves: blast-wave CFD — long unit-stride FP streams, large
    # footprint, highly predictable control flow.
    "bwaves": ReferenceWorkload(
        "bwaves",
        "CFD stencil; streaming FP, bandwidth bound",
        [
            _phase(
                "stencil", 0.8, loop_size=520, seed=91,
                ADD=2.2, FADDD=3.2, FMULD=2.8, BEQ=0.7, BNE=0.3,
                LD=3.4, SD=1.6, REG_DIST=7, B_PATTERN=0.08,
                STREAMS=_streams([1, 1536 * 1024, 1.0, 16, 1, 1]),
            ),
            _phase(
                "boundary", 0.2, loop_size=480, seed=92,
                ADD=3.0, FADDD=2.4, FMULD=2.0, BEQ=1.0, BNE=0.4,
                LD=2.8, SD=1.2, REG_DIST=5, B_PATTERN=0.16,
                STREAMS=_streams([1, 256 * 1024, 1.0, 24, 2, 2]),
            ),
        ],
    ),
    # milc: lattice QCD — gather-heavy SU(3) algebra, moderate reuse.
    "milc": ReferenceWorkload(
        "milc",
        "lattice QCD; gathers plus dense FP multiply-add",
        [
            _phase(
                "mult_su3", 0.65, loop_size=560, seed=93,
                ADD=2.0, FADDD=3.4, FMULD=3.6, BEQ=0.8, BNE=0.3,
                LD=3.0, SD=1.4, REG_DIST=6, B_PATTERN=0.12,
                STREAMS=_streams(
                    [1, 896 * 1024, 0.7, 40, 1, 1],
                    [2, 96 * 1024, 0.3, 8, 8, 3],
                ),
            ),
            _phase(
                "gauge", 0.35, loop_size=500, seed=94,
                ADD=2.6, FADDD=2.8, FMULD=2.6, BEQ=1.0, BNE=0.4,
                LD=2.6, SD=1.6, REG_DIST=5, B_PATTERN=0.15,
                STREAMS=_streams([1, 384 * 1024, 1.0, 32, 2, 2]),
            ),
        ],
    ),
    # namd: molecular dynamics — compute-dense inner loops, small
    # working set, very high ILP.
    "namd": ReferenceWorkload(
        "namd",
        "molecular dynamics; compute dense, high ILP",
        [
            _phase(
                "pairlist", 0.75, loop_size=540, seed=95,
                ADD=2.8, FADDD=3.8, FMULD=3.4, BEQ=0.9, BNE=0.3,
                LD=2.4, SD=0.9, REG_DIST=9, B_PATTERN=0.07,
                STREAMS=_streams([1, 64 * 1024, 1.0, 8, 16, 4]),
            ),
            _phase(
                "integrate", 0.25, loop_size=460, seed=96,
                ADD=3.2, FADDD=3.0, FMULD=2.4, BEQ=0.8, BNE=0.3,
                LD=2.2, SD=1.2, REG_DIST=8, B_PATTERN=0.1,
                STREAMS=_streams([1, 32 * 1024, 1.0, 8, 16, 4]),
            ),
        ],
    ),
    # lbm: lattice-Boltzmann — the classic memory-bandwidth virus:
    # huge footprint, wide strides, stores as heavy as loads.
    "lbm": ReferenceWorkload(
        "lbm",
        "lattice-Boltzmann; store-heavy streaming over a huge grid",
        [
            _phase(
                "collide", 0.85, loop_size=500, seed=97,
                ADD=1.8, FADDD=3.0, FMULD=2.6, BEQ=0.6, BNE=0.2,
                LD=3.2, SD=2.8, REG_DIST=6, B_PATTERN=0.05,
                STREAMS=_streams(
                    [1, 1792 * 1024, 0.6, 24, 1, 1],
                    [2, 1280 * 1024, 0.4, 24, 1, 1],
                ),
            ),
            _phase(
                "stream", 0.15, loop_size=440, seed=98,
                ADD=2.2, FADDD=2.2, FMULD=1.8, BEQ=0.8, BNE=0.3,
                LD=3.0, SD=2.4, REG_DIST=5, B_PATTERN=0.09,
                STREAMS=_streams([1, 1024 * 1024, 1.0, 16, 1, 1]),
            ),
        ],
    ),
}


def fp_benchmark_names() -> list[str]:
    """The FP extension suite, in canonical order."""
    return list(SPEC_FP_BENCHMARKS)


def get_fp_benchmark(name: str) -> ReferenceWorkload:
    """Look up an FP extension workload.

    Raises:
        KeyError: for names outside the extension suite.
    """
    if name not in SPEC_FP_BENCHMARKS:
        raise KeyError(
            f"unknown FP benchmark {name!r}; available: {fp_benchmark_names()}"
        )
    return SPEC_FP_BENCHMARKS[name]


def all_benchmarks() -> dict[str, ReferenceWorkload]:
    """INT suite plus the FP extension suite."""
    from repro.workloads.spec import SPEC_BENCHMARKS

    combined = dict(SPEC_BENCHMARKS)
    combined.update(SPEC_FP_BENCHMARKS)
    return combined
