"""SPEC CPU2006 INT reference workload stand-ins.

Each benchmark is a :class:`ReferenceWorkload`: a weighted set of phases,
each phase a synthetic program generated with hidden parameters chosen to
match the benchmark's published behaviour.  Phase parameters intentionally
use values outside the Listing 1 cloning lattice (odd strides, fractional
branch randomness, multiple concurrent streams, non-500 loop sizes) so a
clone can approximate but never trivially equal the reference.

The cloning use case treats a reference's *measured metrics* as the target
vector, exactly as MicroGrad does when handed an application binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.isa.program import Program
from repro.sim.config import CoreConfig
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class Phase:
    """One execution phase of a reference workload.

    Attributes:
        name: phase label (used by the SimPoint machinery).
        weight: share of the workload's dynamic instructions.
        knobs: generation parameters (may use off-lattice values and
            multi-stream ``STREAMS`` entries).
        loop_size: static code footprint of the phase.
        seed: generation seed.
    """

    name: str
    weight: float
    knobs: dict
    loop_size: int = 500
    seed: int = 0


@dataclass
class ReferenceWorkload:
    """A multi-phase synthetic stand-in for one SPEC benchmark."""

    name: str
    description: str
    phases: list[Phase] = field(default_factory=list)

    def dominant_phase(self) -> Phase:
        """The highest-weight phase — the application's main simpoint."""
        return max(self.phases, key=lambda p: p.weight)

    def dominant_phase_metrics(
        self, core: CoreConfig, instructions: int = 20_000
    ) -> dict[str, float]:
        """Metric vector of the dominant simpoint phase on ``core``.

        The paper clones 100M-instruction simpoints; this is the target
        a whole-benchmark Fig 2/3 row uses (one clone for the benchmark's
        most representative phase).
        """
        dominant = self.dominant_phase()
        for phase, program in zip(self.phases, self.programs()):
            if phase is dominant:
                stats = Simulator(core).run(program, instructions=instructions)
                return stats.metrics()
        raise RuntimeError("unreachable: dominant phase not in phases")

    def programs(self) -> list[Program]:
        """Generate each phase's program (deterministic)."""
        out = []
        for phase in self.phases:
            options = GenerationOptions(loop_size=phase.loop_size, seed=phase.seed)
            program = generate_test_case(dict(phase.knobs), options)
            program.metadata["phase"] = phase.name
            out.append(program)
        return out

    def reference_metrics(
        self, core: CoreConfig, instructions: int = 20_000
    ) -> dict[str, float]:
        """Measured metric vector of the whole workload on ``core``.

        Phases are simulated independently and combined by weight:
        distribution fractions and hit/mispredict rates combine weighted
        by their governing event counts, IPC combines as total
        instructions over total cycles (harmonic, the physically correct
        aggregation).
        """
        sim = Simulator(core)
        total_weight = sum(p.weight for p in self.phases)
        if total_weight <= 0:
            raise ValueError(f"workload {self.name} has zero total weight")

        weighted: dict[str, float] = {}
        event_weights: dict[str, float] = {}
        for phase, program in zip(self.phases, self.programs()):
            stats = sim.run(program, instructions=instructions)
            metrics = stats.metrics()
            share = phase.weight / total_weight
            for key in ("integer", "float", "load", "store", "branch"):
                weighted[key] = weighted.get(key, 0.0) + share * metrics[key]
            rate_events = {
                "mispredict_rate": metrics["branch"],
                "l1d_hit_rate": metrics["load"] + metrics["store"],
                "l2_hit_rate": max(
                    1e-9, 1.0 - stats.l1d_hit_rate
                ) * (metrics["load"] + metrics["store"]),
                "l1i_hit_rate": 1.0,
            }
            for key, events in rate_events.items():
                w = share * max(events, 1e-9)
                weighted[key] = weighted.get(key, 0.0) + w * metrics[key]
                event_weights[key] = event_weights.get(key, 0.0) + w
            cpi = stats.cycles / stats.instructions
            weighted["_cpi"] = weighted.get("_cpi", 0.0) + share * cpi

        result = {}
        for key in ("integer", "float", "load", "store", "branch"):
            result[key] = weighted.get(key, 0.0)
        for key in ("mispredict_rate", "l1d_hit_rate", "l2_hit_rate",
                    "l1i_hit_rate"):
            result[key] = weighted.get(key, 0.0) / max(
                event_weights.get(key, 1e-9), 1e-9
            )
        result["ipc"] = 1.0 / weighted["_cpi"]
        return result


def _phase(name, weight, loop_size=500, seed=0, **knobs) -> Phase:
    return Phase(name=name, weight=weight, knobs=knobs,
                 loop_size=loop_size, seed=seed)


def _streams(*specs) -> list[list]:
    return [list(s) for s in specs]


#: The eight SPEC CPU2006 INT benchmarks of Section IV-A1.  Hidden phase
#: parameters summarize each benchmark's published behaviour; comments
#: note the behaviour being modelled.
SPEC_BENCHMARKS: dict[str, ReferenceWorkload] = {
    # astar: A* path-finding — data-dependent branches, moderate working
    # set with mixed regular/irregular accesses.
    "astar": ReferenceWorkload(
        "astar",
        "path-finding; data-dependent branches, mixed locality",
        [
            _phase(
                "search", 0.7, loop_size=620, seed=11,
                ADD=5.2, MUL=0.6, BEQ=1.6, BNE=1.4, LD=2.8, LW=0.9,
                SD=0.7, SW=0.4, REG_DIST=3, B_PATTERN=0.26,
                STREAMS=_streams(
                    [1, 96 * 1024, 0.7, 16, 8, 3],
                    [2, 768 * 1024, 0.3, 56, 1, 1],
                ),
            ),
            _phase(
                "heap", 0.3, loop_size=480, seed=12,
                ADD=5.0, MUL=0.4, BEQ=1.8, BNE=1.2, LD=2.4, SD=1.1,
                REG_DIST=2, B_PATTERN=0.34,
                STREAMS=_streams([1, 192 * 1024, 1.0, 24, 4, 2]),
            ),
        ],
    ),
    # bzip2: block-sorting compression — integer heavy, strong locality,
    # fairly predictable branches.
    "bzip2": ReferenceWorkload(
        "bzip2",
        "compression; integer-heavy, good locality",
        [
            _phase(
                "sort", 0.6, loop_size=560, seed=21,
                ADD=6.5, MUL=1.1, BEQ=1.2, BNE=0.9, LD=2.6, LW=0.8,
                SD=1.2, SW=0.5, REG_DIST=5, B_PATTERN=0.18,
                STREAMS=_streams([1, 224 * 1024, 1.0, 8, 16, 4]),
            ),
            _phase(
                "huffman", 0.4, loop_size=520, seed=22,
                ADD=6.8, MUL=0.6, BEQ=1.4, BNE=0.8, LD=2.2, SD=0.9,
                REG_DIST=4, B_PATTERN=0.22,
                STREAMS=_streams([1, 48 * 1024, 1.0, 12, 8, 3]),
            ),
        ],
    ),
    # gcc: compiler — very large instruction footprint (I-cache pressure),
    # pointerful IR walks, branchy.
    "gcc": ReferenceWorkload(
        "gcc",
        "compiler; large code footprint, branchy IR traversal",
        [
            _phase(
                "parse", 0.35, loop_size=4300, seed=31,
                ADD=5.4, MUL=0.5, BEQ=1.7, BNE=1.5, LD=2.9, LW=0.7,
                SD=1.0, SW=0.4, REG_DIST=3, B_PATTERN=0.24,
                STREAMS=_streams([1, 384 * 1024, 1.0, 28, 2, 2]),
            ),
            _phase(
                "optimize", 0.65, loop_size=3900, seed=32,
                ADD=5.8, MUL=0.9, BEQ=1.5, BNE=1.3, LD=2.7, SD=1.1,
                REG_DIST=4, B_PATTERN=0.21,
                STREAMS=_streams(
                    [1, 512 * 1024, 0.8, 32, 2, 2],
                    [2, 64 * 1024, 0.2, 8, 16, 4],
                ),
            ),
        ],
    ),
    # hmmer: profile HMM search — compute-bound inner loop, high ILP,
    # very predictable control flow.
    "hmmer": ReferenceWorkload(
        "hmmer",
        "HMM search; compute-bound, high ILP, predictable branches",
        [
            _phase(
                "viterbi", 0.85, loop_size=540, seed=41,
                ADD=7.2, MUL=1.8, BEQ=0.8, BNE=0.4, LD=2.4, LW=0.6,
                SD=1.0, REG_DIST=8, B_PATTERN=0.06,
                STREAMS=_streams([1, 96 * 1024, 1.0, 8, 32, 4]),
            ),
            _phase(
                "postproc", 0.15, loop_size=460, seed=42,
                ADD=6.0, MUL=1.0, BEQ=1.0, BNE=0.6, LD=2.0, SD=0.8,
                REG_DIST=6, B_PATTERN=0.18,
                STREAMS=_streams([1, 32 * 1024, 1.0, 8, 16, 4]),
            ),
        ],
    ),
    # libquantum: quantum simulation — long unit-stride streams over a
    # huge footprint, trivially predictable branches.
    "libquantum": ReferenceWorkload(
        "libquantum",
        "quantum gate simulation; streaming over a large footprint",
        [
            _phase(
                "toffoli", 0.8, loop_size=440, seed=51,
                ADD=4.6, MUL=0.5, BEQ=1.0, BNE=0.3, LD=3.4, LW=0.5,
                SD=1.8, SW=0.6, REG_DIST=6, B_PATTERN=0.12,
                STREAMS=_streams([1, 1792 * 1024, 1.0, 16, 1, 1]),
            ),
            _phase(
                "measure", 0.2, loop_size=420, seed=52,
                ADD=5.0, MUL=0.4, BEQ=1.2, BNE=0.4, LD=3.0, SD=1.0,
                REG_DIST=5, B_PATTERN=0.2,
                STREAMS=_streams([1, 896 * 1024, 1.0, 16, 2, 2]),
            ),
        ],
    ),
    # mcf: network simplex — pointer chasing with terrible locality and
    # a short dependency distance; the classic memory-bound benchmark.
    "mcf": ReferenceWorkload(
        "mcf",
        "network simplex; pointer chasing, memory bound",
        [
            _phase(
                "pbeampp", 0.75, loop_size=470, seed=61,
                ADD=4.4, MUL=0.3, BEQ=1.6, BNE=1.2, LD=3.6, LW=0.8,
                SD=0.9, SW=0.3, REG_DIST=2, B_PATTERN=0.33,
                STREAMS=_streams(
                    [1, 1536 * 1024, 0.8, 40, 1, 1],
                    [2, 128 * 1024, 0.2, 8, 8, 2],
                ),
            ),
            _phase(
                "refresh", 0.25, loop_size=500, seed=62,
                ADD=4.8, MUL=0.4, BEQ=1.4, BNE=1.0, LD=3.2, SD=1.2,
                REG_DIST=2, B_PATTERN=0.29,
                STREAMS=_streams([1, 1024 * 1024, 1.0, 48, 1, 1]),
            ),
        ],
    ),
    # sjeng: chess — branch-dominated search with moderate working set
    # and hard-to-predict move-ordering branches.
    "sjeng": ReferenceWorkload(
        "sjeng",
        "chess search; branch-dominated, hard-to-predict",
        [
            _phase(
                "search", 0.7, loop_size=580, seed=71,
                ADD=5.6, MUL=0.7, BEQ=2.3, BNE=1.9, LD=2.3, LW=0.5,
                SD=0.7, SW=0.3, REG_DIST=4, B_PATTERN=0.46,
                STREAMS=_streams([1, 112 * 1024, 1.0, 16, 8, 3]),
            ),
            _phase(
                "evaluate", 0.3, loop_size=540, seed=72,
                ADD=6.2, MUL=0.9, BEQ=1.8, BNE=1.4, LD=2.1, SD=0.6,
                REG_DIST=5, B_PATTERN=0.30,
                STREAMS=_streams([1, 64 * 1024, 1.0, 12, 8, 4]),
            ),
        ],
    ),
    # xalancbmk: XSLT processor — the largest instruction footprint of
    # the suite, virtual-call-heavy control flow.
    "xalancbmk": ReferenceWorkload(
        "xalancbmk",
        "XSLT; huge code footprint, indirect-branch heavy",
        [
            _phase(
                "template", 0.55, loop_size=4800, seed=81,
                ADD=5.0, MUL=0.5, BEQ=1.9, BNE=1.6, LD=3.0, LW=0.8,
                SD=0.9, SW=0.4, REG_DIST=3, B_PATTERN=0.26,
                STREAMS=_streams(
                    [1, 448 * 1024, 0.75, 24, 2, 2],
                    [2, 96 * 1024, 0.25, 8, 8, 3],
                ),
            ),
            _phase(
                "output", 0.45, loop_size=4400, seed=82,
                ADD=5.4, MUL=0.4, BEQ=1.7, BNE=1.3, LD=2.8, SD=1.3,
                REG_DIST=4, B_PATTERN=0.23,
                STREAMS=_streams([1, 256 * 1024, 1.0, 20, 4, 2]),
            ),
        ],
    ),
}


def benchmark_names() -> list[str]:
    """Paper order: the eight Fig 2/3 benchmarks."""
    return list(SPEC_BENCHMARKS)


def get_benchmark(name: str) -> ReferenceWorkload:
    """Look up a reference workload by SPEC name.

    Raises:
        KeyError: for names outside the suite.
    """
    if name not in SPEC_BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        )
    return SPEC_BENCHMARKS[name]
