"""Framework input configuration (Section III-A).

MicroGrad's inputs arrive as a configuration file; :class:`MicroGradConfig`
is its in-memory form with JSON (de)serialization.  Defaults follow the
paper: cloning defaults to instruction distributions + cache hit rates +
misprediction rate + IPC as metrics of interest with a 99% accuracy target;
stress testing defaults to IPC.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Default cloning metrics of interest (Section III-A1 / IV-A4).
DEFAULT_CLONING_METRICS = (
    "integer",
    "load",
    "store",
    "branch",
    "mispredict_rate",
    "l1i_hit_rate",
    "l1d_hit_rate",
    "l2_hit_rate",
    "ipc",
)

from repro.exec.backend import BACKEND_NAMES as _VALID_BACKENDS

_VALID_USE_CASES = ("cloning", "stress")
_VALID_TUNERS = ("gd", "ga", "random")


@dataclass
class MicroGradConfig:
    """Everything a MicroGrad run needs.

    Attributes:
        use_case: ``"cloning"`` or ``"stress"``.
        core: target core name (``small`` / ``large``).
        metrics: metrics of interest.  For cloning these are matched; for
            stress the single entry is the stress metric.
        targets: explicit target values (cloning); alternatively name a
            reference ``application`` to characterize automatically.
        application: reference workload name (cloning input option 2).
        application_scope: ``"simpoint"`` (default) targets the
            application's dominant simpoint phase — the paper generates
            clones on 100M-instruction simpoints; ``"combined"`` targets
            the whole application's phase-weighted metrics instead.
        use_simpoints: clone per simpoint instead of whole application.
        maximize: stress direction (True for power viruses).
        tuner: ``"gd"`` (default), ``"ga"`` or ``"random"``.
        accuracy_target: stop when mean cloning accuracy reaches this.
        max_epochs: tuning epoch limit.
        knobs: restrict tuning to these knob names (e.g. only the
            instruction-fraction knobs for Fig 5/6 scenarios).
        fixed_knobs: pinned knob values merged into every configuration.
        loop_size: static size of generated test cases.
        instructions: dynamic instruction budget per evaluation.
        with_power: attach the power model to the platform.
        seed: RNG seed for the whole run.
        jobs: evaluation worker processes (``1`` serial, ``0`` all
            cores).  Results are bit-identical at any worker count.
        backend: evaluation execution backend — ``"auto"`` (process
            pool whenever ``jobs`` asks for more than one worker),
            ``"serial"`` or ``"process"``.
        cache_dir: directory for the persistent evaluation result cache
            (``None`` disables it).  Also roots the shared on-disk
            trace-artifact store (``<cache_dir>/artifacts``) that lets
            worker processes — local pools and distributed workers alike
            — compute each trace artifact once per cluster.
        cache_max_entries: size cap for the persistent cache; least-
            recently-used entries (by file mtime) are compacted away once
            the cap is exceeded.  ``None`` means unbounded.
        dist_addr: ``host:port`` of an external persistent evaluation
            cluster (``repro.cli serve``) this run joins as a client
            session (``None`` starts a private coordinator on an
            ephemeral loopback port for purely local fan-out).
        dist_workers: local worker processes the dist backend spawns
            when it owns its own cluster; ``None`` defaults to local
            fan-out.  Must stay unset/0 with ``dist_addr`` — a shared
            cluster's workers belong to ``repro.cli serve``/``worker``,
            not to one tenant.  Spawned workers are kept alive by an
            elastic pool that respawns any that die.
        dist_priority: fair-share weight of this run's client session
            on a shared cluster (``dist_addr`` mode).  The coordinator
            interleaves dispatch across sessions proportionally to
            priority; ``None`` means ``1.0`` (equal share).
        dist_secret: shared secret for a cluster started with
            ``repro.cli serve --serve-secret`` (``None`` falls back to
            ``$REPRO_DIST_SECRET``).  Never sent over the wire — the
            client answers an HMAC challenge derived from it.
        dist_lease_timeout: seconds a leased distributed job may stay
            unresolved before the coordinator reschedules it on another
            worker (livelocked-worker backstop; hung workers are
            evicted faster via heartbeats).  ``None`` keeps the
            coordinator default; set it above the worst-case single-job
            runtime.
        batch_group_min: smallest evaluation chunk worth shipping to a
            worker when the platform supports generation batching.
            Epoch batches are chunked on equivalence-group boundaries
            and never below this size, so whole groups stay on one
            worker and ride one shared simulation pass (``1`` restores
            pure per-``jobs`` chunking).
        metrics_out: path to write the run's merged metrics report
            (JSON: per-stage time breakdown, engine-path and cache-hit
            counters across every worker — see
            :func:`repro.obs.build_run_report`).  ``None`` skips the
            file; the report is always available on
            ``MicroGradResult.run_report``.
    """

    use_case: str = "cloning"
    core: str = "large"
    metrics: tuple[str, ...] = DEFAULT_CLONING_METRICS
    targets: dict = field(default_factory=dict)
    application: str | None = None
    application_scope: str = "simpoint"
    use_simpoints: bool = False
    maximize: bool = False
    tuner: str = "gd"
    accuracy_target: float = 0.99
    max_epochs: int = 60
    knobs: tuple[str, ...] | None = None
    fixed_knobs: dict = field(default_factory=dict)
    loop_size: int = 500
    instructions: int = 20_000
    with_power: bool = False
    seed: int = 0
    jobs: int = 1
    backend: str = "auto"
    cache_dir: str | None = None
    cache_max_entries: int | None = None
    dist_addr: str | None = None
    dist_workers: int | None = None
    dist_lease_timeout: float | None = None
    dist_priority: float | None = None
    dist_secret: str | None = None
    batch_group_min: int = 4
    metrics_out: str | None = None

    def __post_init__(self) -> None:
        if self.use_case not in _VALID_USE_CASES:
            raise ValueError(
                f"use_case must be one of {_VALID_USE_CASES}, got {self.use_case!r}"
            )
        if self.tuner not in _VALID_TUNERS:
            raise ValueError(
                f"tuner must be one of {_VALID_TUNERS}, got {self.tuner!r}"
            )
        if not 0.0 < self.accuracy_target <= 1.0:
            raise ValueError("accuracy_target must be within (0, 1]")
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        self.metrics = tuple(self.metrics)
        if self.use_case == "cloning" and not self.targets and not self.application:
            raise ValueError(
                "cloning needs either explicit targets or an application name"
            )
        if self.use_case == "stress" and not self.metrics:
            raise ValueError("stress testing needs at least one stress metric")
        if self.application_scope not in ("simpoint", "combined"):
            raise ValueError(
                "application_scope must be 'simpoint' or 'combined', "
                f"got {self.application_scope!r}"
            )
        if self.backend not in _VALID_BACKENDS:
            raise ValueError(
                f"backend must be one of {_VALID_BACKENDS}, got {self.backend!r}"
            )
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 means all cores)")
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ValueError("cache_max_entries must be >= 1 (or None)")
        if self.dist_workers is not None and self.dist_workers < 0:
            raise ValueError("dist_workers must be >= 0 (or None)")
        if self.dist_lease_timeout is not None \
                and self.dist_lease_timeout <= 0:
            raise ValueError("dist_lease_timeout must be > 0 (or None)")
        if self.dist_priority is not None and self.dist_priority <= 0:
            raise ValueError("dist_priority must be > 0 (or None)")
        if self.batch_group_min < 1:
            raise ValueError("batch_group_min must be >= 1")
        if self.dist_addr is not None:
            from repro.dist.protocol import parse_addr

            parse_addr(self.dist_addr)  # fail fast on malformed addresses

    # -- serialization --------------------------------------------------

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialize to JSON (optionally writing ``path``)."""
        payload = asdict(self)
        payload["metrics"] = list(self.metrics)
        if self.knobs is not None:
            payload["knobs"] = list(self.knobs)
        text = json.dumps(payload, indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "MicroGradConfig":
        """Load from a JSON string or file path."""
        text = str(source)
        if "\n" not in text and len(text) < 4096:
            candidate = Path(text)
            if candidate.exists():
                text = candidate.read_text()
        data = json.loads(text)
        if "metrics" in data:
            data["metrics"] = tuple(data["metrics"])
        if data.get("knobs") is not None:
            data["knobs"] = tuple(data["knobs"])
        return cls(**data)
