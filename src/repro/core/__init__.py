"""The MicroGrad framework core.

Wires the substrates together exactly as Fig 1 draws it: inputs (a
configuration describing the use case), the knob interface, the
Microprobe-style code generation back-end, an evaluation platform
(performance simulator and/or power estimator), and the tuning mechanism —
producing the test-case binary, knob settings, metrics and epoch
progression as outputs.
"""

from repro.core.platform import (
    CompositePlatform,
    EvaluationPlatform,
    PerformancePlatform,
    PowerPlatform,
    platform_for,
)
from repro.core.config import MicroGradConfig
from repro.core.outputs import MicroGradResult
from repro.core.framework import MicroGrad
from repro.core.usecases.cloning import CloningUseCase
from repro.core.usecases.stress import StressTestingUseCase
from repro.core.usecases.bottleneck import BottleneckAnalysis, BottleneckPoint

__all__ = [
    "EvaluationPlatform",
    "PerformancePlatform",
    "PowerPlatform",
    "CompositePlatform",
    "platform_for",
    "MicroGradConfig",
    "MicroGradResult",
    "MicroGrad",
    "CloningUseCase",
    "StressTestingUseCase",
    "BottleneckAnalysis",
    "BottleneckPoint",
]
