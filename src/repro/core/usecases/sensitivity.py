"""Knob sensitivity analysis.

Ranks workload-generation knobs by how strongly they move a metric —
the screening step a user runs before tuning (fewer knobs, cheaper
epochs: the paper's GD epoch cost is 2 x knobs) and a generalization of
the bottleneck-analysis use case from one knob to the whole interface.

The method is one-at-a-time sweeps from a baseline configuration: each
knob visits every lattice value while the rest stay pinned, and its
sensitivity is the peak-to-peak metric swing it induces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.core.platform import EvaluationPlatform
from repro.isa.program import Program
from repro.sim.config import CoreConfig
from repro.sim.simulator import DEFAULT_INSTRUCTIONS, Simulator
from repro.tuning.knobs import KnobSpace


@dataclass
class KnobSensitivity:
    """Sensitivity of one knob.

    Attributes:
        knob: knob name.
        swing: peak-to-peak metric change over the knob's lattice.
        best_value / worst_value: lattice values at the metric extremes.
        samples: (value, metric) pairs of the sweep.
    """

    knob: str
    swing: float
    best_value: float
    worst_value: float
    samples: list[tuple[float, float]] = field(default_factory=list)


@dataclass
class SensitivityAnalysis:
    """One-at-a-time knob screening.

    Attributes:
        platform: evaluation platform.
        knob_space: knobs to screen (fixed entries stay pinned).
        baseline: baseline knob configuration the sweeps perturb.
        metric: observed metric.
        loop_size / seed: generation parameters.
    """

    platform: EvaluationPlatform
    knob_space: KnobSpace
    baseline: dict
    metric: str = "ipc"
    loop_size: int = 500
    seed: int = 0

    def _evaluate(self, config: dict) -> float:
        program = generate_test_case(
            config, GenerationOptions(loop_size=self.loop_size,
                                      seed=self.seed)
        )
        return self.platform.evaluate(program)[self.metric]

    def run(self, max_values_per_knob: int = 6) -> list[KnobSensitivity]:
        """Screen every knob; returns sensitivities sorted descending.

        Args:
            max_values_per_knob: subsample long lattices to this many
                values (endpoints always included).
        """
        results = []
        for knob in self.knob_space.knobs:
            values = list(knob.values)
            if len(values) > max_values_per_knob:
                step = (len(values) - 1) / (max_values_per_knob - 1)
                values = [values[round(i * step)]
                          for i in range(max_values_per_knob)]
            samples = []
            for value in values:
                config = dict(self.baseline)
                config.update(self.knob_space.fixed)
                config[knob.name] = value
                samples.append((value, self._evaluate(config)))
            metrics = [m for _, m in samples]
            swing = max(metrics) - min(metrics)
            best = max(samples, key=lambda s: s[1])[0]
            worst = min(samples, key=lambda s: s[1])[0]
            results.append(
                KnobSensitivity(
                    knob=knob.name, swing=swing,
                    best_value=best, worst_value=worst, samples=samples,
                )
            )
        return sorted(results, key=lambda r: r.swing, reverse=True)

    @staticmethod
    def format_ranking(ranking: list[KnobSensitivity],
                       metric: str = "ipc") -> str:
        """Aligned text report of a completed screening."""
        width = max(len(r.knob) for r in ranking) + 2
        lines = [f"{'knob':<{width}} {'swing':>8}  "
                 f"{'best@':>8} {'worst@':>8}   ({metric})"]
        for r in ranking:
            lines.append(
                f"{r.knob:<{width}} {r.swing:>8.3f}  "
                f"{r.best_value:>8g} {r.worst_value:>8g}"
            )
        return "\n".join(lines)


#: Default one-at-a-time lattices for the core-parameter screening —
#: the scalar :class:`~repro.sim.config.CoreConfig` fields the interval
#: model and event simulations respond to.
CORE_PARAMETER_LATTICE: dict[str, tuple] = {
    "front_end_width": (1, 2, 3, 4, 6, 8),
    "rob": (20, 40, 80, 160, 320),
    "lsq": (8, 16, 32, 64, 128),
    "alu_units": (1, 2, 3, 4, 6),
    "simd_units": (1, 2, 4),
    "fp_units": (1, 2, 4),
    "mem_ports": (1, 2, 4),
    "mispredict_penalty": (6, 10, 14, 20),
    "memory_latency": (90, 180, 270, 360),
}


@dataclass
class CoreSensitivityAnalysis:
    """One-at-a-time screening of *core* parameters for a fixed program.

    The dual of :class:`SensitivityAnalysis`: instead of sweeping
    generation knobs on one core, it sweeps core-configuration fields
    under one generated program — which resource the test case actually
    stresses.  Every variant in every sweep goes through one
    :meth:`~repro.sim.simulator.Simulator.run_many` batch, so the trace
    is expanded once and variants that the event simulations cannot
    distinguish (e.g. ROB sizes) share their cache/branch streams.

    Attributes:
        program: the (already generated) test case under study.
        base_core: configuration the sweeps perturb.
        parameters: parameter -> lattice mapping; defaults to
            :data:`CORE_PARAMETER_LATTICE`.
        metric: observed metric (a :meth:`SimStats.metrics` key).
        instructions: dynamic instruction budget per evaluation.
    """

    program: Program
    base_core: CoreConfig
    parameters: dict[str, tuple] | None = None
    metric: str = "ipc"
    instructions: int = DEFAULT_INSTRUCTIONS

    def run(self) -> list[KnobSensitivity]:
        """Screen every parameter; sensitivities sorted descending."""
        parameters = self.parameters or CORE_PARAMETER_LATTICE
        variants: list[CoreConfig] = []
        labels: list[tuple[str, float]] = []
        for name, values in parameters.items():
            for value in values:
                variants.append(replace(self.base_core, **{name: value}))
                labels.append((name, value))
        stats = Simulator.run_many(
            variants, self.program, instructions=self.instructions
        )
        by_parameter: dict[str, list[tuple[float, float]]] = {}
        for (name, value), stat in zip(labels, stats):
            by_parameter.setdefault(name, []).append(
                (value, stat.metrics()[self.metric])
            )
        results = []
        for name, samples in by_parameter.items():
            metrics = [m for _, m in samples]
            results.append(
                KnobSensitivity(
                    knob=name,
                    swing=max(metrics) - min(metrics),
                    best_value=max(samples, key=lambda s: s[1])[0],
                    worst_value=min(samples, key=lambda s: s[1])[0],
                    samples=samples,
                )
            )
        return sorted(results, key=lambda r: r.swing, reverse=True)
