"""Bottleneck analysis — the conclusion's future-work use case.

Sweeps one knob over its range while everything else stays pinned and
reports how the observed metric responds, flagging the knee: the knob
value past which the metric stops responding (the resource stops being
the bottleneck) or starts collapsing (it becomes one).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.core.platform import EvaluationPlatform
from repro.isa.program import Program
from repro.sim.config import CoreConfig
from repro.sim.simulator import DEFAULT_INSTRUCTIONS, Simulator


@dataclass
class BottleneckPoint:
    """One sweep sample: knob value and the metrics measured there."""

    value: float
    metrics: dict[str, float]


def find_knee(points: list[BottleneckPoint], metric: str) -> BottleneckPoint:
    """The sweep point with the largest metric response.

    The knee is where the absolute metric change per step is largest —
    the region where the swept characteristic actively bottlenecks the
    core.

    Raises:
        RuntimeError: with fewer than two sweep points.
    """
    if len(points) < 2:
        raise RuntimeError("run() the sweep (>= 2 points) before knee()")
    deltas = [
        abs(b.metrics[metric] - a.metrics[metric])
        for a, b in zip(points, points[1:])
    ]
    knee_idx = max(range(len(deltas)), key=deltas.__getitem__)
    return points[knee_idx + 1]


@dataclass
class BottleneckAnalysis:
    """Sweep a knob and locate the bottleneck knee.

    Attributes:
        platform: evaluation platform to run on.
        base_config: knob configuration the sweep perturbs.
        knob: name of the swept knob.
        values: knob values to sample, in order.
        metric: observed metric.
        loop_size / seed: generation parameters.
    """

    platform: EvaluationPlatform
    base_config: dict
    knob: str
    values: list[float]
    metric: str = "ipc"
    loop_size: int = 500
    seed: int = 0
    points: list[BottleneckPoint] = field(default_factory=list, init=False)

    def run(self) -> list[BottleneckPoint]:
        """Evaluate every sweep point (cached on self.points)."""
        options = GenerationOptions(loop_size=self.loop_size, seed=self.seed)
        self.points = []
        for value in self.values:
            config = dict(self.base_config)
            config[self.knob] = value
            program = generate_test_case(config, options)
            metrics = self.platform.evaluate(program)
            self.points.append(BottleneckPoint(value=value, metrics=metrics))
        return self.points

    def knee(self) -> BottleneckPoint:
        """The sweep point with the largest metric response.

        Raises:
            RuntimeError: if :meth:`run` has not produced >= 2 points.
        """
        return find_knee(self.points, self.metric)

    def response_curve(self) -> list[tuple[float, float]]:
        """(knob value, metric) pairs of the completed sweep."""
        return [(p.value, p.metrics[self.metric]) for p in self.points]


@dataclass
class CoreBottleneckAnalysis:
    """Sweep one *core parameter* under a fixed program via ``run_many``.

    The hardware-side dual of :class:`BottleneckAnalysis`: the program
    stays fixed and a :class:`~repro.sim.config.CoreConfig` field (ROB
    size, front-end width, functional-unit count, ...) sweeps its range.
    All sweep points evaluate in one
    :meth:`~repro.sim.simulator.Simulator.run_many` batch against a
    shared trace artifact, so the sweep costs one trace expansion plus
    the distinct event simulations — not one full simulation per point.

    Attributes:
        program: the (already generated) test case to hold fixed.
        base_core: configuration the sweep perturbs.
        parameter: name of the swept ``CoreConfig`` field.
        values: parameter values to sample, in order.
        metric: observed metric.
        instructions: dynamic instruction budget per evaluation.
    """

    program: Program
    base_core: CoreConfig
    parameter: str
    values: list[float]
    metric: str = "ipc"
    instructions: int = DEFAULT_INSTRUCTIONS
    points: list[BottleneckPoint] = field(default_factory=list, init=False)

    def run(self) -> list[BottleneckPoint]:
        """Evaluate every sweep point (cached on self.points)."""
        cores = [
            replace(self.base_core, **{self.parameter: value})
            for value in self.values
        ]
        stats = Simulator.run_many(
            cores, self.program, instructions=self.instructions
        )
        self.points = [
            BottleneckPoint(value=value, metrics=stat.metrics())
            for value, stat in zip(self.values, stats)
        ]
        return self.points

    def knee(self) -> BottleneckPoint:
        """The sweep point with the largest metric response."""
        return find_knee(self.points, self.metric)

    def response_curve(self) -> list[tuple[float, float]]:
        """(parameter value, metric) pairs of the completed sweep."""
        return [(p.value, p.metrics[self.metric]) for p in self.points]
