"""Stress testing use case (Section II-B, III-A2).

Drives a single stress metric to its extreme: worst-case performance
(minimize IPC — the Fig 5 performance virus) or worst-case power
(maximize dynamic power — the Fig 6 power virus).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.config import MicroGradConfig
from repro.tuning.loss import CombinedStressLoss, StressLoss

if TYPE_CHECKING:  # pragma: no cover
    from repro.isa.program import Program
    from repro.sim.config import CoreConfig


@dataclass
class StressTestingUseCase:
    """Builds the loss for one stress-testing run."""

    config: MicroGradConfig

    @property
    def metric(self) -> str:
        """The primary stress metric (defaults to IPC, Section III-A2)."""
        return self.config.metrics[0] if self.config.metrics else "ipc"

    def loss(self):
        """Single-metric loss, or the weighted combination for multi-
        metric stress (Section III-A2 allows either)."""
        if len(self.config.metrics) > 1:
            return CombinedStressLoss(
                metrics=tuple(self.config.metrics),
                maximize=self.config.maximize,
            )
        return StressLoss(metric=self.metric, maximize=self.config.maximize)

    def target_loss(self) -> float:
        """Stress has no a-priori target; only epochs/convergence stop it."""
        return -math.inf

    def evaluate_across_cores(
        self, program: "Program", cores: "Sequence[CoreConfig]"
    ) -> list[tuple["CoreConfig", dict[str, float]]]:
        """How a tuned stressmark generalizes across core configurations.

        A stress test tuned against one core is routinely re-examined on
        its neighbours (wider/narrower variants, different hierarchies)
        to check the stress is microarchitectural rather than
        incidental.  The whole sweep runs as one
        :meth:`~repro.sim.simulator.Simulator.run_many` batch over a
        shared trace artifact.

        Returns:
            ``(core, metrics)`` pairs in input order.
        """
        from repro.sim.simulator import Simulator

        stats = Simulator.run_many(
            list(cores), program, instructions=self.config.instructions
        )
        return [
            (core, stat.metrics()) for core, stat in zip(cores, stats)
        ]
