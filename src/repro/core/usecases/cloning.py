"""Workload cloning use case (Section II-A, III-A1).

Resolves the clone's target metric vector — from explicit values, from a
reference application characterized on the evaluation platform, or per
simpoint — and provides the log-loss the tuner minimizes plus the
accuracy-based stopping condition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import MicroGradConfig
from repro.core.platform import EvaluationPlatform
from repro.sim.config import core_by_name
from repro.tuning.knobs import KnobSpace
from repro.tuning.loss import CloningLoss
from repro.workloads.spec import get_benchmark

#: Mix knobs per reporting group (used by the informed initialization).
_GROUP_KNOBS = {
    "integer": ("ADD", "MUL"),
    "float": ("FADDD", "FMULD"),
    "branch": ("BEQ", "BNE"),
    "load": ("LD", "LW"),
    "store": ("SD", "SW"),
}


@dataclass
class CloningUseCase:
    """Builds the loss/targets for one cloning run."""

    config: MicroGradConfig

    def resolve_targets(self) -> dict[str, float]:
        """The metric values the clone must match.

        Explicit ``targets`` win; otherwise the named reference
        application is characterized on the configured core with the
        configured instruction budget (the "provide the application
        binary" input mode).

        Raises:
            ValueError: if a metric of interest has no target value.
        """
        if self.config.targets:
            targets = dict(self.config.targets)
        else:
            workload = get_benchmark(self.config.application)
            core = core_by_name(self.config.core)
            if self.config.application_scope == "simpoint":
                targets = workload.dominant_phase_metrics(
                    core, instructions=self.config.instructions
                )
            else:
                targets = workload.reference_metrics(
                    core, instructions=self.config.instructions
                )
        missing = [m for m in self.config.metrics if m not in targets]
        if missing:
            raise ValueError(f"no target value for metrics: {missing}")
        return {m: targets[m] for m in self.config.metrics}

    #: Instruction-distribution metrics depend only on the mix knobs,
    #: which makes them near-separable from the rest of the search; a
    #: higher weight lets the tuner pin the distribution first and spend
    #: the remaining knobs on rates and IPC, mirroring how the paper's
    #: clones match distributions essentially exactly.
    DISTRIBUTION_WEIGHT = 3.0
    _DISTRIBUTION_METRICS = ("integer", "float", "load", "store", "branch")

    def loss(self, targets: dict[str, float]) -> CloningLoss:
        """Log loss over the metrics of interest (Section IV-A4)."""
        weights = {
            m: self.DISTRIBUTION_WEIGHT
            for m in targets
            if m in self._DISTRIBUTION_METRICS
        }
        return CloningLoss(targets=targets, weights=weights)

    def target_loss(self) -> float:
        """Loss threshold equivalent to the configured accuracy target.

        A uniform per-metric ratio of ``accuracy_target`` produces a log
        loss of ``ln(accuracy)^2``; reaching it means every metric is at
        least that accurate on average.
        """
        return math.log(self.config.accuracy_target) ** 2

    def initial_vector(
        self, targets: dict[str, float], space: KnobSpace
    ) -> np.ndarray:
        """Informed starting point for the gradient tuner.

        Classic cloning generators (Bell & John) build the synthetic
        spine directly from the measured characteristics; we seed the
        tuner the same way: mix-knob positions from the target
        instruction distribution, ``B_PATTERN`` from the target
        misprediction rate, footprint from the target hit rates, and the
        remaining knobs at mid-range.  Gradient descent then refines
        jointly — keeping the paper's few-epoch convergence while
        retaining its synergic (non-greedy) tuning.
        """
        # Desired per-knob weight: group fraction split across its knobs,
        # scaled so the largest knob sits at the lattice top.
        desired: dict[str, float] = {}
        for group, knob_names in _GROUP_KNOBS.items():
            fraction = max(0.0, targets.get(group, 0.0))
            for name in knob_names:
                desired[name] = fraction / len(knob_names)
        peak = max(desired.values()) or 1.0

        mispredict = targets.get("mispredict_rate", 0.1)
        # Invert the measured gshare mispredict-vs-B_PATTERN curve (steep
        # at the low end where the predictor's history is only partially
        # polluted; saturating near 0.5 at full randomness).
        curve_b = (0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.7, 1.0)
        curve_mis = (0.003, 0.088, 0.153, 0.199, 0.245, 0.275, 0.306,
                     0.358, 0.400, 0.450, 0.505)
        b_pattern = float(np.interp(mispredict, curve_mis, curve_b))

        l1d_hit = targets.get("l1d_hit_rate", 0.9)
        l2_hit = targets.get("l2_hit_rate", 0.9)
        ipc = targets.get("ipc", 1.0)
        if l1d_hit > 0.97:
            mem_kb = 8.0
        elif l2_hit > 0.6:
            mem_kb = 128.0
        else:
            mem_kb = 1024.0
        # Temporal locality: a low L1D hit target means the application
        # streams (no reuse); a high one means tight reuse windows.
        if l1d_hit < 0.6:
            reuse_count, reuse_period = 1.0, 1.0
        elif l1d_hit < 0.9:
            reuse_count, reuse_period = 4.0, 2.0
        else:
            reuse_count, reuse_period = 16.0, 4.0
        stride = 48.0 if l1d_hit < 0.7 else 16.0
        # ILP seed: very low target IPC usually means short dependency
        # chains (pointer chasing); high IPC means ample parallelism.
        if ipc < 0.3:
            reg_dist = 2.0
        elif ipc < 1.0:
            reg_dist = 4.0
        else:
            reg_dist = 7.0

        seeds = {
            "B_PATTERN": b_pattern,
            "MEM_SIZE": mem_kb,
            "MEM_TEMP1": reuse_count,
            "MEM_TEMP2": reuse_period,
            "MEM_STRIDE": stride,
            "REG_DIST": reg_dist,
        }
        positions = []
        for knob in space.knobs:
            values = np.asarray(knob.values, dtype=float)
            if knob.name in desired:
                value = 10.0 * desired[knob.name] / peak
            elif knob.name in seeds:
                value = seeds[knob.name]
            else:
                positions.append((len(values) - 1) / 2.0)
                continue
            positions.append(float(np.argmin(np.abs(values - value))))
        return np.asarray(positions)


def evaluate_platform_targets(
    platform: EvaluationPlatform, program
) -> dict[str, float]:
    """Characterize an arbitrary program on a platform (helper for
    callers that bring their own reference binaries)."""
    return platform.evaluate(program)
