"""MicroGrad use cases: cloning, stress testing, bottleneck analysis."""
