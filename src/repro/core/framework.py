"""The MicroGrad facade: configuration in, result out.

Assembles knob space, code generation, evaluation platform, use-case loss
and tuning mechanism, runs the tuning loop, and packages the outputs —
the whole of Fig 1 behind one class.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import pickle
import time
from pathlib import Path

from repro import obs
from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.core.config import MicroGradConfig
from repro.core.outputs import MicroGradResult
from repro.core.platform import EvaluationPlatform, platform_for
from repro.core.usecases.cloning import CloningUseCase
from repro.core.usecases.stress import StressTestingUseCase
from repro.exec import (
    DiskResultCache,
    ExecutionBackend,
    SerialBackend,
    backend_for,
    evaluate_configs,
    evaluate_configs_stream,
    run_clone_jobs,
)
from repro.sim.artifact import (
    active_artifact_store,
    attach_artifact_store,
    detach_artifact_store,
    trace_schema_fingerprint,
)
from repro.sim.config import core_by_name
from repro.sim.simulator import Simulator
from repro.tuning.base import TuningResult
from repro.tuning.evaluator import Evaluator
from repro.tuning.genetic import GAParams, GeneticTuner
from repro.tuning.gradient import GDParams, GradientDescentTuner
from repro.tuning.knobs import KnobSpace, default_cloning_space
from repro.tuning.loss import accuracy_report, mean_accuracy
from repro.tuning.random_search import RandomSearch
from repro.workloads.simpoint import select_simpoints, workload_bbv_trace
from repro.workloads.spec import get_benchmark

#: Default values for knobs excluded from tuning (overridable through
#: ``MicroGradConfig.fixed_knobs``).
DEFAULT_KNOB_VALUES = {
    "ADD": 4, "MUL": 1, "FADDD": 1, "FMULD": 1, "BEQ": 2, "BNE": 1,
    "LD": 3, "LW": 1, "SD": 1, "SW": 1,
    "REG_DIST": 4, "MEM_SIZE": 64, "MEM_STRIDE": 64,
    "MEM_TEMP1": 4, "MEM_TEMP2": 2, "B_PATTERN": 0.3,
}


class MicroGrad:
    """One configured instance of the framework.

    Example::

        mg = MicroGrad(MicroGradConfig(use_case="cloning",
                                       application="mcf", core="large"))
        result = mg.run()
        print(result.summary())
    """

    def __init__(self, config: MicroGradConfig,
                 platform: EvaluationPlatform | None = None,
                 backend: ExecutionBackend | None = None):
        self.config = config
        self.platform = platform or platform_for(
            config.core,
            with_power=config.with_power or self._needs_power(),
            instructions=config.instructions,
        )
        self.backend = backend or backend_for(
            config.backend,
            config.jobs,
            cache_dir=config.cache_dir,
            cache_max_entries=config.cache_max_entries,
            dist_addr=config.dist_addr,
            dist_workers=config.dist_workers,
            dist_lease_timeout=config.dist_lease_timeout,
            dist_priority=config.dist_priority,
            dist_secret=config.dist_secret,
            batch_group_min=config.batch_group_min,
        )
        self.disk_cache = (
            DiskResultCache(
                config.cache_dir,
                max_entries=config.cache_max_entries,
                schema=trace_schema_fingerprint(),
            )
            if config.cache_dir
            else None
        )
        self._artifact_store = None
        if config.cache_dir:
            # Shared trace-artifact store: this process and every worker
            # (pool or distributed) compute each artifact once between
            # them.  Workers attach through the backend's store spec;
            # this covers serial evaluation and re-runs.
            self._artifact_store = attach_artifact_store(
                os.path.join(config.cache_dir, "artifacts"),
                max_entries=config.cache_max_entries,
            )
        self.knob_space = self._build_space()

    def close(self) -> None:
        """Release execution-backend workers (idempotent).

        Also detaches the process-wide artifact store this instance
        attached (if it is still the active one), so a later run with
        caching disabled does not keep reading and writing it.
        """
        self.backend.close()
        if self._artifact_store is not None \
                and active_artifact_store() is self._artifact_store:
            detach_artifact_store()
        self._artifact_store = None

    def _needs_power(self) -> bool:
        return any("power" in m for m in self.config.metrics)

    def _build_space(self) -> KnobSpace:
        full = default_cloning_space()
        selected = self.config.knobs
        if selected is None:
            knobs = full.knobs
            fixed = dict(self.config.fixed_knobs)
        else:
            unknown = set(selected) - {k.name for k in full.knobs}
            if unknown:
                raise ValueError(f"unknown knob names: {sorted(unknown)}")
            knobs = [k for k in full.knobs if k.name in selected]
            # Pin deselected knobs to the documented defaults; a knob the
            # default table does not know (e.g. from an extended space)
            # falls back to its own lattice midpoint instead of KeyError.
            fixed = {
                k.name: DEFAULT_KNOB_VALUES.get(k.name, k.default_value())
                for k in full.knobs
                if k.name not in selected
            }
            fixed.update(self.config.fixed_knobs)
        return KnobSpace(knobs, fixed=fixed)

    # -- evaluation bridge ----------------------------------------------

    def _generation_options(self) -> GenerationOptions:
        return GenerationOptions(
            loop_size=self.config.loop_size, seed=self.config.seed
        )

    def _evaluate_config(self, knob_config: dict) -> dict[str, float]:
        program = generate_test_case(knob_config, self._generation_options())
        return self.platform.evaluate(program)

    def _evaluate_config_batch(
        self, knob_configs: list[dict]
    ) -> list[dict[str, float]]:
        """Generate + evaluate a batch through the execution backend."""
        return evaluate_configs(
            self.backend, self.platform, self._generation_options(),
            knob_configs,
        )

    def _evaluate_config_stream(self, knob_configs: list[dict]):
        """Streaming twin of :meth:`_evaluate_config_batch`.

        Yields per-config metrics in input order as the backend's
        ``map_stream`` delivers chunks — the evaluator consumes this
        when a caller asks for partial-epoch results (``on_result``).
        """
        yield from evaluate_configs_stream(
            self.backend, self.platform, self._generation_options(),
            knob_configs,
        )

    def _cache_context(self) -> str:
        """Disk-cache identity: everything but the knob configuration.

        The platform is identified by a hash of its full pickled state,
        not just its name — constructor parameters that change metrics
        (instruction budgets, droop baselines, custom power models) must
        not alias into the same cache entries.
        """
        try:
            platform_id = hashlib.sha256(
                pickle.dumps(self.platform)
            ).hexdigest()[:16]
        except Exception:
            # Unpicklable custom platform (serial-only anyway): fall
            # back to its coarse identity.
            platform_id = (
                f"{getattr(self.platform, 'instructions', '')}"
            )
        return (
            f"{self.platform.name}|platform={platform_id}"
            f"|loop={self.config.loop_size}|seed={self.config.seed}"
        )

    def _group_key(self, knob_config: dict):
        """Generation-equivalence key for the evaluator's grouping planner."""
        from repro.codegen.wrapper import generation_fingerprint

        return generation_fingerprint(knob_config, self._generation_options())

    def build_evaluator(self) -> Evaluator:
        """The batch-capable evaluation engine for this instance."""
        return Evaluator(
            self.knob_space,
            self._evaluate_config,
            batch_fn=self._evaluate_config_batch,
            batch_stream_fn=self._evaluate_config_stream,
            disk_cache=self.disk_cache,
            cache_context=self._cache_context(),
            group_fn=(
                self._group_key
                if getattr(self.platform, "supports_config_batch", False)
                else None
            ),
        )

    def _build_tuner(self, evaluator: Evaluator, loss, target_loss: float,
                     initial=None):
        seed = self.config.seed
        if self.config.tuner == "gd":
            if initial is not None:
                # Informed start (cloning): smaller first steps so the
                # tuner refines the seeded configuration instead of
                # leaping away from it.
                params = GDParams(
                    max_epochs=self.config.max_epochs,
                    target_loss=target_loss,
                    step_initial=1.5,
                    patience=10,
                )
            else:
                # Cold random start (stress testing): aggressive early
                # steps with eager plateau restarts explore the mix
                # space the way the paper's <30-epoch convergence needs.
                params = GDParams(
                    max_epochs=self.config.max_epochs,
                    target_loss=target_loss,
                    step_initial=3.5,
                    patience=5,
                    restarts_on_plateau=5,
                )
            return GradientDescentTuner(
                evaluator, loss, params, initial=initial, seed=seed,
                restart_anchor=initial is not None,
            )
        if self.config.tuner == "ga":
            params = GAParams(
                max_epochs=self.config.max_epochs, target_loss=target_loss
            )
            return GeneticTuner(evaluator, loss, params, seed=seed)
        return RandomSearch(
            evaluator, loss, max_epochs=self.config.max_epochs, seed=seed,
            batch_group_min=self.config.batch_group_min,
        )

    # -- runs -------------------------------------------------------------

    def run(self) -> MicroGradResult:
        """Execute the configured use case end to end.

        The whole run executes inside a metrics collection scope: every
        counter and stage span recorded during it — including worker
        snapshots merged back from process pools and distributed
        workers — lands in ``result.run_report`` (and, with
        ``config.metrics_out``, in a JSON file).
        """
        start = time.perf_counter()
        with obs.collect() as scope, obs.span("run"):
            result = self._run_inner()
        wall_s = time.perf_counter() - start
        tuning = result.tuning
        extra = {
            "use_case": self.config.use_case,
            "core": self.config.core,
            "tuner": self.config.tuner,
            "backend": self.config.backend,
        }
        if tuning is not None:
            extra.update(
                epochs=tuning.epochs,
                best_loss=tuning.best_loss,
                requested_evaluations=tuning.requested_evaluations,
                unique_evaluations=tuning.unique_evaluations,
            )
        result.run_report = obs.build_run_report(
            scope.snapshot(), wall_s=wall_s, extra=extra
        )
        if self.config.metrics_out:
            path = Path(self.config.metrics_out)
            if path.parent != Path("."):
                path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(result.run_report, indent=2, sort_keys=True)
            )
        return result

    def _run_inner(self) -> MicroGradResult:
        initial = None
        if self.config.use_case == "cloning":
            usecase = CloningUseCase(self.config)
            targets = usecase.resolve_targets()
            loss = usecase.loss(targets)
            target_loss = usecase.target_loss()
            initial = usecase.initial_vector(targets, self.knob_space)
        else:
            usecase = StressTestingUseCase(self.config)
            targets = {}
            loss = usecase.loss()
            target_loss = usecase.target_loss()

        evaluator = self.build_evaluator()
        tuner = self._build_tuner(evaluator, loss, target_loss, initial=initial)
        tuning: TuningResult = tuner.run()

        program = generate_test_case(
            tuning.best_config,
            GenerationOptions(loop_size=self.config.loop_size,
                              seed=self.config.seed),
        )
        result = MicroGradResult(
            use_case=self.config.use_case,
            core=self.config.core,
            program=program,
            knobs=tuning.best_config,
            metrics=tuning.best_metrics,
            targets=targets,
            tuning=tuning,
        )
        if targets:
            result.accuracy = accuracy_report(tuning.best_metrics, targets)
            result.mean_accuracy = mean_accuracy(tuning.best_metrics, targets)
        return result

    def clone_simpoints(self, max_k: int = 4) -> list[MicroGradResult]:
        """Clone a reference application one simpoint at a time.

        Builds the application's BBV trace, selects simpoints, maps each
        back to the phase it samples, and runs one cloning pass per
        simpoint — "potentially one clone for each interesting phase"
        (Section III-A1).  Each result's ``targets`` are the sampled
        phase's metrics; the simpoint weight is stored in
        ``result.knobs["_simpoint_weight"]``.
        """
        if self.config.use_case != "cloning" or not self.config.application:
            raise ValueError("simpoint cloning needs a cloning config with "
                             "an application name")
        workload = get_benchmark(self.config.application)
        bbvs, labels = workload_bbv_trace(workload, seed=self.config.seed)
        simpoints = select_simpoints(bbvs, max_k=max_k, seed=self.config.seed)

        core = core_by_name(self.config.core)
        sim = Simulator(core)
        phase_programs = dict(zip([p.name for p in workload.phases],
                                  workload.programs()))
        phase_names = []
        sub_configs = []
        parallel = not isinstance(self.backend, SerialBackend)
        # Characterize each *distinct* phase once: simpoints frequently
        # sample the same phase, and the trace artifact of a phase
        # program is shared through the simulator's artifact cache.
        stats_by_phase: dict[str, dict[str, float]] = {}
        for sp in simpoints:
            phase_name = labels[sp.interval]
            targets = stats_by_phase.get(phase_name)
            if targets is None:
                targets = sim.run(
                    phase_programs[phase_name],
                    instructions=self.config.instructions,
                ).metrics()
                stats_by_phase[phase_name] = targets
            sub_config = dataclasses.replace(
                self.config,
                targets={m: targets[m] for m in self.config.metrics},
                application=None,
                use_simpoints=False,
                # When simpoints fan out across workers, each worker's
                # cloning pass runs serially inside its process — the
                # parallelism budget is spent at the simpoint level.
                jobs=1 if parallel else self.config.jobs,
                backend="serial" if parallel else self.config.backend,
            )
            phase_names.append(phase_name)
            sub_configs.append(sub_config)

        if parallel:
            # One clone per interesting phase, all phases in flight at
            # once: each worker rebuilds MicroGrad from the (picklable)
            # sub-config — and this instance's platform, so an injected
            # custom platform is honored in parallel exactly as in
            # serial — and returns the full result.
            results = run_clone_jobs(self.backend, sub_configs,
                                     platform=self.platform)
        else:
            results = [
                MicroGrad(sub_config, platform=self.platform,
                          backend=self.backend).run()
                for sub_config in sub_configs
            ]
        for sp, phase_name, result in zip(simpoints, phase_names, results):
            result.knobs["_simpoint_weight"] = sp.weight
            result.knobs["_simpoint_phase"] = phase_name
        return results
