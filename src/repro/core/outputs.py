"""Framework outputs (Section III-F).

A finished run yields the generated test case (as a program and as
assembly text), the knob configuration that produced it, its measured
metrics, and the per-epoch tuning progression — all saveable to a
directory for archival.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.isa.assembler import program_to_asm
from repro.isa.program import Program
from repro.tuning.base import TuningResult


@dataclass
class MicroGradResult:
    """Everything a MicroGrad run produced.

    Attributes:
        use_case: the use case that ran.
        core: target core name.
        program: the winning generated test case.
        knobs: its knob configuration.
        metrics: its measured metrics.
        targets: the target metric values (cloning) or empty (stress).
        accuracy: per-metric measured/target ratios (cloning).
        mean_accuracy: mean symmetric accuracy (cloning) or 0.
        tuning: the underlying tuner result (history, eval accounting).
        run_report: merged metrics report for the run (see
            :func:`repro.obs.build_run_report`) — stage time breakdown,
            engine-path and cache counters across every worker that
            contributed.
    """

    use_case: str
    core: str
    program: Program
    knobs: dict
    metrics: dict[str, float]
    targets: dict[str, float] = field(default_factory=dict)
    accuracy: dict[str, float] = field(default_factory=dict)
    mean_accuracy: float = 0.0
    tuning: TuningResult | None = None
    run_report: dict | None = None

    @property
    def assembly(self) -> str:
        """The test-case "binary" as assembly text."""
        return program_to_asm(self.program)

    def epoch_progression(self) -> list[dict]:
        """Per-epoch tuning records as plain dicts (for CSV/JSON dumps)."""
        if self.tuning is None:
            return []
        return [
            {
                "epoch": r.epoch,
                "loss": r.loss,
                "best_loss": r.best_loss,
                "evaluations": r.evaluations,
            }
            for r in self.tuning.history
        ]

    def save(self, directory: str | Path) -> Path:
        """Write assembly, knobs, metrics and progression into a directory."""
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        (out / "testcase.s").write_text(self.assembly)
        (out / "knobs.json").write_text(json.dumps(self.knobs, indent=2))
        payload = {
            "use_case": self.use_case,
            "core": self.core,
            "metrics": self.metrics,
            "targets": self.targets,
            "accuracy": self.accuracy,
            "mean_accuracy": self.mean_accuracy,
        }
        (out / "metrics.json").write_text(json.dumps(payload, indent=2))
        (out / "epochs.json").write_text(
            json.dumps(self.epoch_progression(), indent=2)
        )
        if self.run_report is not None:
            (out / "run_report.json").write_text(
                json.dumps(self.run_report, indent=2, sort_keys=True)
            )
        return out

    def summary(self) -> str:
        """Short human-readable result summary."""
        lines = [
            f"use case : {self.use_case} on {self.core}",
            f"knobs    : {self.knobs}",
        ]
        if self.targets:
            lines.append(f"accuracy : {self.mean_accuracy:.4f} (mean)")
        if self.tuning is not None:
            lines.append(
                f"tuning   : {self.tuning.epochs} epochs, "
                f"{self.tuning.requested_evaluations} evaluations "
                f"({self.tuning.stop_reason})"
            )
        return "\n".join(lines)
