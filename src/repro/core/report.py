"""Plot-free reporting helpers: ASCII charts and aligned tables.

The paper's figures are radar plots and epoch-progression line charts;
this module renders the equivalents as terminal text so examples and the
benchmark harness can show them without a plotting stack.
"""

from __future__ import annotations


def ascii_chart(
    series: dict[str, list[float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Render line series as an ASCII chart.

    Args:
        series: label -> y-values (x is the index, e.g. tuning epoch).
        width / height: plot area in characters.
        title: optional heading line.

    Returns:
        Multi-line string; each series draws with its own glyph and the
        legend maps glyphs to labels.
    """
    points = [v for values in series.values() for v in values]
    if not points:
        raise ValueError("no data to chart")
    lo, hi = min(points), max(points)
    if hi == lo:
        hi = lo + 1.0
    glyphs = "*o+x#@%&"
    grid = [[" "] * width for _ in range(height)]

    for (label, values), glyph in zip(series.items(), glyphs):
        if not values:
            continue
        n = len(values)
        for col in range(width):
            idx = min(n - 1, int(col / max(1, width - 1) * (n - 1)))
            y = values[idx]
            row = int((hi - y) / (hi - lo) * (height - 1))
            row = min(max(row, 0), height - 1)
            if grid[row][col] == " ":
                grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        y_label = hi - (hi - lo) * r / (height - 1)
        lines.append(f"{y_label:>9.3f} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    legend = "   ".join(
        f"{glyph}={label}" for (label, _), glyph in zip(series.items(), glyphs)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def format_table(headers: list[str], rows: list[list], floatfmt: str = ".3f") -> str:
    """Render rows as an aligned text table.

    Floats are formatted with ``floatfmt``; everything else with str().
    """
    def cell(value) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered
        else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def radar_text(ratios: dict[str, float], width: int = 40) -> str:
    """Text rendering of one radar plot: a bar per metric around 1.0.

    The bar is centred at 1.0; deviation bars grow left (below target)
    or right (above target), clipped at +/-50%.
    """
    lines = []
    half = width // 2
    for metric, ratio in ratios.items():
        deviation = max(-0.5, min(0.5, ratio - 1.0))
        cells = [" "] * width
        centre = half
        offset = int(deviation * 2 * (half - 1))
        lo, hi = sorted((centre, centre + offset))
        for c in range(lo, hi + 1):
            cells[c] = "="
        cells[centre] = "|"
        lines.append(f"{metric:<16} {ratio:5.3f} [{''.join(cells)}]")
    return "\n".join(lines)
