"""Evaluation platforms (Section III-E).

MicroGrad interfaces with performance simulators, power estimators and
native hardware; all the tuner sees is "program in, metric dict out".  The
platforms here wrap this reproduction's Gem5-like simulator and McPAT-like
power model; a new backend (e.g. real perf counters) plugs in by
implementing :class:`EvaluationPlatform`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.isa.program import Program
from repro.power.mcpat import PowerModel
from repro.sim.artifact import TraceArtifact, artifact_for
from repro.sim.config import CoreConfig, core_by_name
from repro.sim.simulator import DEFAULT_INSTRUCTIONS, Simulator


@runtime_checkable
class EvaluationPlatform(Protocol):
    """Anything that can execute a program and report metrics."""

    name: str

    def evaluate(self, program: Program) -> dict[str, float]:
        """Run ``program`` and return its metric dict."""
        ...

    def evaluate_many(self, programs: list[Program]) -> list[dict[str, float]]:
        """Run several programs, metrics in input order."""
        ...


class BatchEvaluationMixin:
    """Default ``evaluate_many``: evaluate in order, one at a time.

    Platforms are picklable, so execution backends ship whole platform
    instances (plus a chunk of programs) into worker processes and call
    this there — generation and simulation both run worker-side.
    """

    def evaluate_many(self, programs: list[Program]) -> list[dict[str, float]]:
        return [self.evaluate(program) for program in programs]


class SimulationPlatformMixin(BatchEvaluationMixin):
    """Shared evaluation shape for simulator-backed platforms.

    Subclasses set ``self.simulator``/``self.instructions`` in their
    constructor and override :meth:`_stats_metrics` to derive their
    metric dict from one :class:`~repro.sim.stats.SimStats`.  Because
    the metric derivation is a pure function of the stats, these
    platforms can serve a whole group of equivalent evaluations from one
    shared simulation pass (:meth:`evaluate_group`) with results
    bit-identical to per-program :meth:`evaluate` calls.  Platforms
    whose metrics are *not* stats-pure (e.g. wall-clock ``host_mips``
    on :class:`NativeExecutionPlatform`) must not claim
    ``supports_config_batch``.
    """

    #: Evaluation accepts a prebuilt trace artifact (composite sharing).
    accepts_artifact = True
    #: Equivalent evaluations may be collapsed into one shared pass.
    supports_config_batch = True

    def _stats_metrics(self, stats) -> dict[str, float]:
        return stats.metrics()

    def evaluate(
        self, program: Program, artifact: TraceArtifact | None = None
    ) -> dict[str, float]:
        stats = self.simulator.run(
            program, instructions=self.instructions, artifact=artifact
        )
        return self._stats_metrics(stats)

    def evaluate_group(
        self, program: Program, count: int,
        artifact: TraceArtifact | None = None,
    ) -> list[dict[str, float]]:
        """Metrics for ``count`` equivalent evaluations of ``program``.

        One :meth:`~repro.sim.simulator.Simulator.run_group` dispatch
        serves the whole group through the config-batched shared pass.
        """
        stats_list = self.simulator.run_group(
            program, count, instructions=self.instructions,
            artifact=artifact,
        )
        return [self._stats_metrics(stats) for stats in stats_list]


class PerformancePlatform(SimulationPlatformMixin):
    """Performance-simulator platform (the Gem5 role).

    Produces the canonical metric keys of
    :data:`repro.sim.stats.METRIC_KEYS`.
    """

    def __init__(self, core: CoreConfig, instructions: int = DEFAULT_INSTRUCTIONS):
        self.core = core
        self.instructions = instructions
        self.simulator = Simulator(core)
        self.name = f"perf:{core.name}"


class PowerPlatform(SimulationPlatformMixin):
    """Performance + power platform (the Gem5 -> McPAT pipeline).

    Adds ``dynamic_power`` and ``total_power`` (watts) to the performance
    metrics, mirroring the statistics transfer of Section IV-A2.
    """

    def __init__(
        self,
        core: CoreConfig,
        instructions: int = DEFAULT_INSTRUCTIONS,
        power_model: PowerModel | None = None,
    ):
        self.core = core
        self.instructions = instructions
        self.simulator = Simulator(core)
        self.power_model = power_model or PowerModel(core)
        self.name = f"power:{core.name}"

    def _stats_metrics(self, stats) -> dict[str, float]:
        metrics = stats.metrics()
        report = self.power_model.estimate(stats)
        metrics["dynamic_power"] = report.dynamic_w
        metrics["total_power"] = report.total_w
        return metrics


class VoltageDroopPlatform(SimulationPlatformMixin):
    """dI/dt stress platform: alternate the candidate against a baseline.

    Models the classic dI/dt stressmark structure: execution alternates
    between a fixed low-activity phase (``baseline_knobs``) and the
    candidate test case; the PDN model converts the resulting power swing
    into a droop.  Metrics: the candidate's performance metrics plus
    ``droop_mv``, ``didt_a_per_ns``, ``power_swing_w`` and
    ``dynamic_power``.
    """

    def __init__(
        self,
        core: CoreConfig,
        baseline_knobs: dict | None = None,
        instructions: int = DEFAULT_INSTRUCTIONS,
        pdn=None,
    ):
        from repro.codegen.wrapper import generate_test_case
        from repro.power.droop import DroopModel

        self.core = core
        self.instructions = instructions
        self.simulator = Simulator(core)
        self.power_model = PowerModel(core)
        self.droop_model = DroopModel(pdn)
        self.name = f"droop:{core.name}"
        baseline_knobs = baseline_knobs or {
            "ADD": 2, "BEQ": 1, "REG_DIST": 1, "B_PATTERN": 0.0,
        }
        baseline_program = generate_test_case(baseline_knobs)
        baseline_stats = self.simulator.run(
            baseline_program, instructions=instructions
        )
        self._baseline_power = self.power_model.estimate(
            baseline_stats
        ).dynamic_w

    @property
    def baseline_power_w(self) -> float:
        """Dynamic power of the fixed low-activity phase."""
        return self._baseline_power

    def _stats_metrics(self, stats) -> dict[str, float]:
        metrics = stats.metrics()
        candidate_power = self.power_model.estimate(stats).dynamic_w
        report = self.droop_model.estimate(self._baseline_power,
                                           candidate_power)
        metrics["dynamic_power"] = candidate_power
        metrics["power_swing_w"] = report.power_high_w - report.power_low_w
        metrics["didt_a_per_ns"] = report.didt_a_per_ns
        metrics["droop_mv"] = report.droop_mv
        return metrics


class NativeExecutionPlatform(BatchEvaluationMixin):
    """Functional-execution platform (the "native hardware" role).

    Architecturally executes the test case with the ISA interpreter and
    reports the counters real hardware would expose without a simulator:
    dynamic instruction distribution, memory-operation and taken-branch
    rates, plus host execution throughput (``host_mips``).  Useful for
    validating generated programs and for use cases whose metrics are
    functional rather than microarchitectural.
    """

    def __init__(self, iterations: int = 40):
        self.iterations = iterations
        self.name = "native"

    def evaluate(self, program: Program) -> dict[str, float]:
        import time

        from repro.isa.interpreter import Interpreter

        start = time.perf_counter()
        result = Interpreter(program).run(iterations=self.iterations)
        elapsed = max(time.perf_counter() - start, 1e-9)

        total = max(1, result.instructions)
        metrics: dict[str, float] = {
            "instructions": float(total),
            "loads_per_instr": result.loads / total,
            "stores_per_instr": result.stores / total,
            "taken_branch_rate": (
                result.taken_branches
                / max(1, sum(
                    n for c, n in result.class_counts.items()
                    if c.name == "BRANCH"
                ))
            ),
            "host_mips": total / elapsed / 1e6,
        }
        from repro.isa.instructions import class_of_group

        group_counts: dict[str, int] = {}
        for iclass, count in result.class_counts.items():
            group = class_of_group(iclass)
            group_counts[group] = group_counts.get(group, 0) + count
        for group in ("integer", "float", "load", "store", "branch"):
            metrics[group] = group_counts.get(group, 0) / total
        return metrics


class CompositePlatform(BatchEvaluationMixin):
    """Merge the metric dicts of several platforms (later ones win ties).

    Members that simulate (``accepts_artifact``) receive a shared
    :class:`~repro.sim.artifact.TraceArtifact` per distinct instruction
    budget, so a perf + power + droop composite expands the trace and
    simulates each event stream once per program, not once per member.
    """

    def __init__(self, platforms: list[EvaluationPlatform]):
        if not platforms:
            raise ValueError("composite platform needs at least one platform")
        self.platforms = list(platforms)
        self.name = "+".join(p.name for p in platforms)

    @property
    def supports_config_batch(self) -> bool:
        """Grouped evaluation is safe only if every member supports it.

        One wall-clock-dependent member (e.g. native execution) makes a
        collapsed group observably different from per-program calls, so
        the composite only claims the fast path when all members do.
        """
        return all(
            getattr(p, "supports_config_batch", False) for p in self.platforms
        )

    def evaluate(self, program: Program) -> dict[str, float]:
        merged: dict[str, float] = {}
        artifacts: dict[int, TraceArtifact] = {}
        for platform in self.platforms:
            if getattr(platform, "accepts_artifact", False):
                budget = platform.instructions
                artifact = artifacts.get(budget)
                if artifact is None:
                    artifact = artifact_for(program, budget)
                    artifacts[budget] = artifact
                merged.update(platform.evaluate(program, artifact=artifact))
            else:
                merged.update(platform.evaluate(program))
        return merged

    def evaluate_group(
        self, program: Program, count: int
    ) -> list[dict[str, float]]:
        """Grouped :meth:`evaluate`: each member serves the whole group
        from one shared pass, artifacts shared per budget as usual.
        Only valid when :attr:`supports_config_batch` is true (every
        member is then simulator-backed and accepts an artifact)."""
        merged: list[dict[str, float]] = [{} for _ in range(count)]
        artifacts: dict[int, TraceArtifact] = {}
        for platform in self.platforms:
            budget = platform.instructions
            artifact = artifacts.get(budget)
            if artifact is None:
                artifact = artifact_for(program, budget)
                artifacts[budget] = artifact
            group = platform.evaluate_group(program, count, artifact=artifact)
            for slot, metrics in zip(merged, group):
                slot.update(metrics)
        return merged


def platform_for(
    core: CoreConfig | str,
    with_power: bool = False,
    instructions: int = DEFAULT_INSTRUCTIONS,
) -> EvaluationPlatform:
    """Convenience factory: core (or name) -> platform."""
    core_config = core_by_name(core) if isinstance(core, str) else core
    if with_power:
        return PowerPlatform(core_config, instructions=instructions)
    return PerformancePlatform(core_config, instructions=instructions)
