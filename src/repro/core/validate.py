"""Cross-substrate validation.

Two independent back-ends execute generated programs: the functional ISA
interpreter (architectural semantics) and the performance simulator
(microarchitectural timing).  Quantities both can observe — dynamic
instruction counts, instruction distribution, memory-operation counts,
branch-taken behaviour — must agree exactly; this module checks that and
is wired into the test suite as a standing self-check of the substrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import class_of_group
from repro.isa.interpreter import Interpreter
from repro.isa.program import Program
from repro.sim.config import CoreConfig
from repro.sim.simulator import Simulator


@dataclass
class ValidationReport:
    """Outcome of one cross-validation run.

    Attributes:
        consistent: whether every checked quantity agreed.
        mismatches: human-readable description of each disagreement.
        checked: quantities compared.
    """

    consistent: bool
    mismatches: list[str] = field(default_factory=list)
    checked: list[str] = field(default_factory=list)


def cross_validate(
    program: Program,
    core: CoreConfig,
    iterations: int = 20,
    tolerance: float = 1e-9,
) -> ValidationReport:
    """Compare interpreter and simulator views of one program.

    Args:
        program: generated test case.
        core: core configuration for the simulator side.
        iterations: loop iterations the interpreter executes.
        tolerance: allowed absolute disagreement on fractions.

    Returns:
        A report; ``consistent`` is True when the substrates agree.
    """
    interp_result = Interpreter(program).run(iterations=iterations)
    stats = Simulator(core).run(
        program, instructions=iterations * len(program)
    )

    mismatches: list[str] = []
    checked: list[str] = []

    # 1. Instruction distribution: interpreter counts vs simulator
    # fractions (both derive from the same static body, but through
    # completely different code paths).
    total = interp_result.instructions
    interp_fractions: dict[str, float] = {}
    for iclass, count in interp_result.class_counts.items():
        group = class_of_group(iclass)
        interp_fractions[group] = interp_fractions.get(group, 0.0) + count / total
    for group in ("integer", "float", "load", "store", "branch"):
        checked.append(f"fraction:{group}")
        sim_value = stats.group_fractions.get(group, 0.0)
        interp_value = interp_fractions.get(group, 0.0)
        if abs(sim_value - interp_value) > tolerance:
            mismatches.append(
                f"{group} fraction: interpreter {interp_value:.6f} "
                f"vs simulator {sim_value:.6f}"
            )

    # 2. Memory operations per iteration.
    checked.append("memory_ops_per_iteration")
    interp_mem = (interp_result.loads + interp_result.stores) / iterations
    static_mem = len(program.memory_instructions())
    if abs(interp_mem - static_mem) > tolerance:
        mismatches.append(
            f"memory ops/iteration: interpreter {interp_mem} "
            f"vs static {static_mem}"
        )

    # 3. Branch taken rate: interpreter execution vs the declarative
    # behaviours the simulator's predictor consumes.
    branches = program.branch_instructions()
    if branches:
        checked.append("taken_branch_rate")
        declared_taken = sum(
            int(b.branch.outcomes(iterations).sum()) for b in branches
        )
        if declared_taken != interp_result.taken_branches:
            mismatches.append(
                f"taken branches: interpreter {interp_result.taken_branches} "
                f"vs declared {declared_taken}"
            )

    # 4. Dynamic instruction accounting.
    checked.append("instructions_per_iteration")
    if interp_result.instructions != iterations * len(program):
        mismatches.append("interpreter lost instructions")

    return ValidationReport(
        consistent=not mismatches,
        mismatches=mismatches,
        checked=checked,
    )
