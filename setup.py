"""Setup shim for environments without the wheel package.

``pip install -e .`` requires ``wheel`` for modern editable installs; this
offline environment lacks it, so ``python setup.py develop`` (or this shim
via pip's legacy path) provides the editable install instead.
"""
from setuptools import setup

setup()
