"""Setup shim for environments without the wheel package.

``pip install -e .`` requires ``wheel`` for modern editable installs; this
offline environment lacks it, so ``python setup.py develop`` (or this shim
via pip's legacy path) provides the editable install instead.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.4.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # Trace expansion and the vectorized stage-2 event engine need
    # sliding_window_view (numpy >= 1.20).
    install_requires=["numpy>=1.20"],
)
