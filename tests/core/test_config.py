"""Unit tests for the framework configuration."""

import pytest

from repro.core.config import DEFAULT_CLONING_METRICS, MicroGradConfig


def _cloning(**overrides):
    base = dict(use_case="cloning", application="mcf")
    base.update(overrides)
    return MicroGradConfig(**base)


def _stress(**overrides):
    base = dict(use_case="stress", metrics=("ipc",))
    base.update(overrides)
    return MicroGradConfig(**base)


class TestValidation:
    def test_defaults_follow_paper(self):
        config = _cloning()
        assert config.metrics == DEFAULT_CLONING_METRICS
        assert config.accuracy_target == 0.99
        assert config.tuner == "gd"
        assert config.loop_size == 500

    def test_unknown_use_case_rejected(self):
        with pytest.raises(ValueError, match="use_case"):
            MicroGradConfig(use_case="fuzzing")

    def test_unknown_tuner_rejected(self):
        with pytest.raises(ValueError, match="tuner"):
            _cloning(tuner="annealing")

    def test_cloning_needs_targets_or_application(self):
        with pytest.raises(ValueError, match="targets"):
            MicroGradConfig(use_case="cloning")

    def test_explicit_targets_accepted(self):
        config = MicroGradConfig(
            use_case="cloning", targets={"ipc": 1.0}, metrics=("ipc",)
        )
        assert config.targets == {"ipc": 1.0}

    def test_stress_accepts_metric_combinations(self):
        config = _stress(metrics=("ipc", "dynamic_power"))
        assert config.metrics == ("ipc", "dynamic_power")

    def test_stress_needs_at_least_one_metric(self):
        with pytest.raises(ValueError, match="at least one"):
            _stress(metrics=())

    def test_accuracy_bounds(self):
        with pytest.raises(ValueError, match="accuracy_target"):
            _cloning(accuracy_target=0.0)
        with pytest.raises(ValueError, match="accuracy_target"):
            _cloning(accuracy_target=1.5)

    def test_epoch_bounds(self):
        with pytest.raises(ValueError, match="max_epochs"):
            _cloning(max_epochs=0)

    def test_dist_lease_timeout_bounds(self):
        assert _stress(dist_lease_timeout=120.0).dist_lease_timeout == 120.0
        with pytest.raises(ValueError, match="dist_lease_timeout"):
            _stress(dist_lease_timeout=0.0)
        with pytest.raises(ValueError, match="dist_lease_timeout"):
            _stress(dist_lease_timeout=-5.0)


class TestSerialization:
    def test_json_round_trip(self, tmp_path):
        config = _cloning(core="small", max_epochs=17,
                          knobs=("ADD", "LD"), fixed_knobs={"REG_DIST": 5})
        path = tmp_path / "config.json"
        config.to_json(path)
        loaded = MicroGradConfig.from_json(path)
        assert loaded == config

    def test_from_json_string(self):
        text = _stress(maximize=True).to_json()
        loaded = MicroGradConfig.from_json(text)
        assert loaded.maximize is True
        assert loaded.use_case == "stress"

    def test_json_is_stable(self):
        a = _cloning().to_json()
        b = _cloning().to_json()
        assert a == b
