"""Tests for cross-substrate validation (interpreter vs simulator)."""

import pytest

from repro.codegen import generate_test_case
from repro.codegen.wrapper import GenerationOptions
from repro.core.validate import cross_validate
from repro.sim import LARGE_CORE, SMALL_CORE


def _program(**overrides):
    knobs = dict(ADD=4, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1, LD=2, SD=1,
                 REG_DIST=4, MEM_SIZE=16, MEM_STRIDE=16,
                 MEM_TEMP1=2, MEM_TEMP2=2, B_PATTERN=0.3)
    knobs.update(overrides)
    return generate_test_case(knobs, GenerationOptions(loop_size=120))


class TestCrossValidation:
    def test_substrates_agree_on_generated_programs(self):
        report = cross_validate(_program(), SMALL_CORE)
        assert report.consistent, report.mismatches

    def test_agreement_on_both_cores(self):
        program = _program()
        for core in (SMALL_CORE, LARGE_CORE):
            assert cross_validate(program, core).consistent

    def test_memoryless_and_branchless_programs(self):
        program = generate_test_case(
            dict(ADD=5, MUL=2, REG_DIST=3),
            GenerationOptions(loop_size=60),
        )
        report = cross_validate(program, SMALL_CORE)
        assert report.consistent
        assert "taken_branch_rate" not in report.checked

    def test_checked_quantities_enumerated(self):
        report = cross_validate(_program(), SMALL_CORE)
        assert "fraction:integer" in report.checked
        assert "memory_ops_per_iteration" in report.checked
        assert "taken_branch_rate" in report.checked

    def test_workload_phases_cross_validate(self):
        from repro.workloads import get_benchmark

        for program in get_benchmark("bzip2").programs():
            report = cross_validate(program, SMALL_CORE, iterations=5)
            assert report.consistent, report.mismatches

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_lattice_points_cross_validate(self, seed):
        import numpy as np

        from repro.tuning.knobs import default_cloning_space

        space = default_cloning_space()
        rng = np.random.default_rng(seed)
        config = space.materialize(space.random_vector(rng))
        program = generate_test_case(config, GenerationOptions(loop_size=100))
        report = cross_validate(program, SMALL_CORE, iterations=10)
        assert report.consistent, report.mismatches
