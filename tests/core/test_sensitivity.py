"""Unit tests for the knob sensitivity screening."""

import pytest

from repro.core.platform import PerformancePlatform
from repro.core.usecases.sensitivity import (
    KnobSensitivity,
    SensitivityAnalysis,
)
from repro.sim import SMALL_CORE
from repro.tuning.knobs import Knob, KnobSpace

BASELINE = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1, LD=3, LW=1,
                SD=1, SW=1, REG_DIST=4, MEM_SIZE=32, MEM_STRIDE=16,
                MEM_TEMP1=4, MEM_TEMP2=2, B_PATTERN=0.2)


@pytest.fixture(scope="module")
def analysis():
    space = KnobSpace(
        [
            Knob("REG_DIST", (1.0, 4.0, 10.0)),
            Knob("B_PATTERN", (0.0, 0.5, 1.0)),
            Knob("MEM_STRIDE", (8.0, 16.0)),
        ]
    )
    return SensitivityAnalysis(
        platform=PerformancePlatform(SMALL_CORE, instructions=5_000),
        knob_space=space,
        baseline=BASELINE,
        metric="ipc",
        loop_size=200,
    )


@pytest.fixture(scope="module")
def ranking(analysis):
    return analysis.run()


class TestScreening:
    def test_every_knob_screened(self, ranking):
        assert {r.knob for r in ranking} == {
            "REG_DIST", "B_PATTERN", "MEM_STRIDE"
        }

    def test_sorted_by_swing(self, ranking):
        swings = [r.swing for r in ranking]
        assert swings == sorted(swings, reverse=True)

    def test_branch_randomness_is_a_top_lever(self, ranking):
        # On a branchy baseline, B_PATTERN swings IPC far more than the
        # memory stride does.
        by_name = {r.knob: r for r in ranking}
        assert by_name["B_PATTERN"].swing > by_name["MEM_STRIDE"].swing

    def test_best_and_worst_values_are_on_lattice(self, ranking):
        by_name = {r.knob: r for r in ranking}
        assert by_name["B_PATTERN"].best_value in (0.0, 0.5, 1.0)
        assert by_name["B_PATTERN"].worst_value in (0.0, 0.5, 1.0)

    def test_predictable_branches_maximize_ipc(self, ranking):
        by_name = {r.knob: r for r in ranking}
        assert by_name["B_PATTERN"].best_value == 0.0

    def test_samples_recorded(self, ranking):
        for r in ranking:
            assert len(r.samples) >= 2


class TestSubsampling:
    def test_long_lattices_subsampled_with_endpoints(self):
        space = KnobSpace([Knob("MEM_SIZE",
                                tuple(float(2 ** k) for k in range(1, 12)))])
        analysis = SensitivityAnalysis(
            platform=PerformancePlatform(SMALL_CORE, instructions=4_000),
            knob_space=space,
            baseline=BASELINE,
            loop_size=150,
        )
        ranking = analysis.run(max_values_per_knob=4)
        values = [v for v, _ in ranking[0].samples]
        assert len(values) == 4
        assert values[0] == 2.0
        assert values[-1] == 2048.0


class TestFormatting:
    def test_ranking_report(self):
        ranking = [
            KnobSensitivity("B_PATTERN", 1.2, 0.0, 1.0),
            KnobSensitivity("MEM_STRIDE", 0.1, 8.0, 64.0),
        ]
        text = SensitivityAnalysis.format_ranking(ranking)
        assert "B_PATTERN" in text
        assert "1.200" in text
