"""Core-configuration sweeps through the batched simulator pipeline."""

from dataclasses import replace

import pytest

from repro.codegen import generate_test_case
from repro.core.config import MicroGradConfig
from repro.core.platform import (
    CompositePlatform,
    NativeExecutionPlatform,
    PerformancePlatform,
    PowerPlatform,
)
from repro.core.usecases.bottleneck import CoreBottleneckAnalysis, find_knee
from repro.core.usecases.sensitivity import (
    CORE_PARAMETER_LATTICE,
    CoreSensitivityAnalysis,
)
from repro.core.usecases.stress import StressTestingUseCase
from repro.sim import LARGE_CORE, SMALL_CORE

KNOBS = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1,
             LD=3, LW=1, SD=1, SW=1,
             REG_DIST=4, MEM_SIZE=256, MEM_STRIDE=64,
             MEM_TEMP1=2, MEM_TEMP2=1, B_PATTERN=0.2)


@pytest.fixture(scope="module")
def program():
    return generate_test_case(KNOBS)


class TestCoreSensitivity:
    @pytest.fixture(scope="class")
    def ranking(self, program):
        return CoreSensitivityAnalysis(
            program=program, base_core=SMALL_CORE, instructions=6_000
        ).run()

    def test_every_parameter_screened(self, ranking):
        assert {r.knob for r in ranking} == set(CORE_PARAMETER_LATTICE)

    def test_sorted_by_swing(self, ranking):
        swings = [r.swing for r in ranking]
        assert swings == sorted(swings, reverse=True)

    def test_samples_cover_the_lattice(self, ranking):
        for result in ranking:
            values = [v for v, _ in result.samples]
            assert values == list(CORE_PARAMETER_LATTICE[result.knob])

    def test_restricted_parameter_set(self, program):
        ranking = CoreSensitivityAnalysis(
            program=program,
            base_core=SMALL_CORE,
            parameters={"front_end_width": (1, 8)},
            instructions=6_000,
        ).run()
        assert len(ranking) == 1
        assert ranking[0].knob == "front_end_width"
        # A 1-wide front end must throttle IPC relative to 8-wide.
        assert ranking[0].swing > 0


class TestCoreBottleneck:
    @pytest.fixture(scope="class")
    def sweep(self, program):
        analysis = CoreBottleneckAnalysis(
            program=program,
            base_core=SMALL_CORE,
            parameter="front_end_width",
            values=[1, 2, 3, 4, 8],
            instructions=6_000,
        )
        analysis.run()
        return analysis

    def test_one_point_per_value(self, sweep):
        assert [p.value for p in sweep.points] == [1, 2, 3, 4, 8]

    def test_width_eventually_stops_binding(self, sweep):
        curve = dict(sweep.response_curve())
        assert curve[8] >= curve[1]

    def test_knee_requires_run(self, program):
        analysis = CoreBottleneckAnalysis(
            program=program, base_core=SMALL_CORE,
            parameter="rob", values=[40],
        )
        with pytest.raises(RuntimeError):
            analysis.knee()

    def test_matches_per_core_runs(self, program, sweep):
        from repro.sim import Simulator

        core = replace(SMALL_CORE, front_end_width=2)
        solo = Simulator(core).run(program, instructions=6_000)
        assert sweep.points[1].metrics == solo.metrics()

    def test_find_knee_flags_largest_step(self):
        from repro.core.usecases.bottleneck import BottleneckPoint

        points = [
            BottleneckPoint(value=v, metrics={"ipc": m})
            for v, m in [(1, 1.0), (2, 1.1), (3, 2.9), (4, 3.0)]
        ]
        assert find_knee(points, "ipc").value == 3


class TestStressAcrossCores:
    def test_sweep_matches_input_order(self, program):
        usecase = StressTestingUseCase(
            MicroGradConfig(use_case="stress", metrics=("ipc",),
                            instructions=6_000)
        )
        cores = [SMALL_CORE, LARGE_CORE, replace(SMALL_CORE, rob=80)]
        results = usecase.evaluate_across_cores(program, cores)
        assert [core for core, _ in results] == cores
        for _, metrics in results:
            assert metrics["ipc"] > 0


class TestCompositeArtifactSharing:
    def test_members_share_one_artifact(self, program, monkeypatch):
        import repro.core.platform as platform_mod

        built = []
        real = platform_mod.artifact_for

        def counting(prog, budget, cache=None):
            artifact = real(prog, budget, cache=cache)
            built.append(budget)
            return artifact

        monkeypatch.setattr(platform_mod, "artifact_for", counting)
        composite = CompositePlatform([
            PerformancePlatform(SMALL_CORE, instructions=6_000),
            PowerPlatform(SMALL_CORE, instructions=6_000),
        ])
        composite.evaluate(program)
        # Two simulating members, one shared budget: one artifact fetch.
        assert built == [6_000]

    def test_composite_metrics_match_isolated_platforms(self, program):
        perf = PerformancePlatform(SMALL_CORE, instructions=6_000)
        power = PowerPlatform(SMALL_CORE, instructions=6_000)
        composite = CompositePlatform([
            PerformancePlatform(SMALL_CORE, instructions=6_000),
            PowerPlatform(SMALL_CORE, instructions=6_000),
        ])
        merged = composite.evaluate(program)
        expected = perf.evaluate(program)
        expected.update(power.evaluate(program))
        assert merged == expected

    def test_non_simulating_members_still_work(self, program):
        composite = CompositePlatform([
            PerformancePlatform(SMALL_CORE, instructions=6_000),
            NativeExecutionPlatform(iterations=4),
        ])
        merged = composite.evaluate(program)
        assert "ipc" in merged and "host_mips" in merged
