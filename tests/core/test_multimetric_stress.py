"""Tests for multi-metric stress testing (Section III-A2)."""

import pytest

from repro import MicroGrad, MicroGradConfig
from repro.core.usecases.stress import StressTestingUseCase
from repro.tuning.loss import CombinedStressLoss, StressLoss


class TestCombinedStressLoss:
    def test_sums_metric_contributions(self):
        loss = CombinedStressLoss(metrics=("a", "b"))
        assert loss({"a": 1.0, "b": 2.0}) == pytest.approx(3.0)

    def test_maximize_negates(self):
        loss = CombinedStressLoss(metrics=("a",), maximize=True)
        assert loss({"a": 2.0}) == -2.0

    def test_normalizers_rescale(self):
        loss = CombinedStressLoss(
            metrics=("ipc", "power"), normalizers={"power": 2.0}
        )
        assert loss({"ipc": 1.0, "power": 2.0}) == pytest.approx(2.0)

    def test_weights_apply(self):
        loss = CombinedStressLoss(metrics=("a", "b"), weights={"a": 3.0})
        assert loss({"a": 1.0, "b": 1.0}) == pytest.approx(4.0)

    def test_missing_metric_raises(self):
        with pytest.raises(KeyError):
            CombinedStressLoss(metrics=("a",))({"b": 1.0})

    def test_empty_metrics_rejected(self):
        with pytest.raises(ValueError):
            CombinedStressLoss(metrics=())


class TestUseCaseSelection:
    def test_single_metric_uses_plain_loss(self):
        config = MicroGradConfig(use_case="stress", metrics=("ipc",))
        assert isinstance(StressTestingUseCase(config).loss(), StressLoss)

    def test_multiple_metrics_use_combined_loss(self):
        config = MicroGradConfig(
            use_case="stress", metrics=("ipc", "mispredict_rate")
        )
        loss = StressTestingUseCase(config).loss()
        assert isinstance(loss, CombinedStressLoss)
        assert loss.metrics == ("ipc", "mispredict_rate")


class TestEndToEnd:
    def test_joint_ipc_and_mispredict_stress(self):
        """Minimize IPC while also minimizing the mispredict rate: the
        tuner must find low-IPC mixes that do NOT rely on mispredicts —
        a qualitatively different optimum than IPC alone."""
        joint = MicroGradConfig(
            use_case="stress",
            metrics=("ipc", "mispredict_rate"),
            core="small",
            max_epochs=6,
            loop_size=200,
            instructions=5_000,
            knobs=("ADD", "MUL", "FADDD", "FMULD", "BEQ", "BNE",
                   "LD", "LW", "SD", "SW"),
            seed=4,
        )
        result = MicroGrad(joint).run()
        assert result.metrics["ipc"] > 0
        assert "mispredict_rate" in result.metrics
        # Loss history must be monotone non-increasing (best-so-far).
        curve = result.tuning.loss_curve()
        assert all(a >= b for a, b in zip(curve, curve[1:]))
