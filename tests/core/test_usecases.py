"""Unit tests for the use-case builders."""

import math

import pytest

from repro.core.config import MicroGradConfig
from repro.core.platform import PerformancePlatform
from repro.core.usecases.bottleneck import BottleneckAnalysis
from repro.core.usecases.cloning import CloningUseCase
from repro.core.usecases.stress import StressTestingUseCase
from repro.sim import SMALL_CORE


class TestCloningUseCase:
    def test_explicit_targets_pass_through(self):
        config = MicroGradConfig(
            use_case="cloning", metrics=("ipc",), targets={"ipc": 1.5}
        )
        usecase = CloningUseCase(config)
        assert usecase.resolve_targets() == {"ipc": 1.5}

    def test_application_targets_are_characterized(self):
        config = MicroGradConfig(
            use_case="cloning", application="bzip2", core="small",
            metrics=("ipc", "l1d_hit_rate"), instructions=6_000,
        )
        targets = CloningUseCase(config).resolve_targets()
        assert set(targets) == {"ipc", "l1d_hit_rate"}
        assert targets["ipc"] > 0

    def test_missing_metric_target_raises(self):
        config = MicroGradConfig(
            use_case="cloning", metrics=("ipc", "bogus_metric"),
            targets={"ipc": 1.0},
        )
        with pytest.raises(ValueError, match="bogus_metric"):
            CloningUseCase(config).resolve_targets()

    def test_target_loss_matches_accuracy(self):
        config = MicroGradConfig(
            use_case="cloning", targets={"ipc": 1.0}, metrics=("ipc",),
            accuracy_target=0.99,
        )
        assert CloningUseCase(config).target_loss() == pytest.approx(
            math.log(0.99) ** 2
        )

    def test_loss_is_zero_at_targets(self):
        config = MicroGradConfig(
            use_case="cloning", targets={"ipc": 2.0}, metrics=("ipc",)
        )
        usecase = CloningUseCase(config)
        loss = usecase.loss(usecase.resolve_targets())
        assert loss({"ipc": 2.0}) == pytest.approx(0.0)


class TestStressUseCase:
    def test_default_metric_is_ipc(self):
        config = MicroGradConfig(use_case="stress", metrics=("ipc",))
        assert StressTestingUseCase(config).metric == "ipc"

    def test_maximize_flips_sign(self):
        config = MicroGradConfig(
            use_case="stress", metrics=("dynamic_power",), maximize=True
        )
        loss = StressTestingUseCase(config).loss()
        assert loss({"dynamic_power": 2.0}) == -2.0

    def test_target_loss_is_unbounded(self):
        config = MicroGradConfig(use_case="stress", metrics=("ipc",))
        assert StressTestingUseCase(config).target_loss() == -math.inf


class TestBottleneckAnalysis:
    @pytest.fixture(scope="class")
    def sweep(self):
        analysis = BottleneckAnalysis(
            platform=PerformancePlatform(SMALL_CORE, instructions=5_000),
            base_config=dict(ADD=5, BEQ=1, LD=3, SD=1, REG_DIST=4,
                             MEM_STRIDE=64, MEM_TEMP1=1, MEM_TEMP2=1,
                             B_PATTERN=0.1),
            knob="MEM_SIZE",
            values=[4, 16, 64, 256, 1024],
            metric="ipc",
            loop_size=200,
        )
        analysis.run()
        return analysis

    def test_one_point_per_value(self, sweep):
        assert [p.value for p in sweep.points] == [4, 16, 64, 256, 1024]

    def test_response_curve_shows_memory_bottleneck(self, sweep):
        curve = sweep.response_curve()
        # IPC must fall as the footprint outgrows the caches.
        assert curve[0][1] > curve[-1][1]

    def test_knee_is_past_the_l1_capacity(self, sweep):
        knee = sweep.knee()
        assert knee.value >= 16

    def test_knee_requires_run(self):
        analysis = BottleneckAnalysis(
            platform=PerformancePlatform(SMALL_CORE),
            base_config={}, knob="MEM_SIZE", values=[1], metric="ipc",
        )
        with pytest.raises(RuntimeError):
            analysis.knee()
