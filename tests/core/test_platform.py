"""Unit tests for the evaluation platforms."""

import pytest

from repro.codegen import generate_test_case
from repro.core.platform import (
    CompositePlatform,
    EvaluationPlatform,
    PerformancePlatform,
    PowerPlatform,
    platform_for,
)
from repro.sim import LARGE_CORE, SMALL_CORE
from repro.sim.stats import METRIC_KEYS


@pytest.fixture(scope="module")
def program():
    return generate_test_case(
        dict(ADD=5, MUL=1, BEQ=1, LD=2, SD=1, REG_DIST=4,
             MEM_SIZE=32, MEM_STRIDE=16, B_PATTERN=0.2)
    )


class TestPerformancePlatform:
    def test_provides_canonical_metrics(self, program):
        metrics = PerformancePlatform(SMALL_CORE, instructions=6_000).evaluate(
            program
        )
        for key in METRIC_KEYS:
            assert key in metrics

    def test_implements_protocol(self):
        assert isinstance(
            PerformancePlatform(SMALL_CORE), EvaluationPlatform
        )

    def test_name_encodes_core(self):
        assert PerformancePlatform(LARGE_CORE).name == "perf:large"


class TestPowerPlatform:
    def test_adds_power_metrics(self, program):
        metrics = PowerPlatform(SMALL_CORE, instructions=6_000).evaluate(program)
        assert metrics["dynamic_power"] > 0
        assert metrics["total_power"] > metrics["dynamic_power"]
        assert "ipc" in metrics


class TestCompositePlatform:
    def test_merges_metric_dicts(self, program):
        composite = CompositePlatform(
            [
                PerformancePlatform(SMALL_CORE, instructions=6_000),
                PowerPlatform(SMALL_CORE, instructions=6_000),
            ]
        )
        metrics = composite.evaluate(program)
        assert "ipc" in metrics
        assert "dynamic_power" in metrics

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            CompositePlatform([])

    def test_name_joins_members(self):
        composite = CompositePlatform(
            [PerformancePlatform(SMALL_CORE), PowerPlatform(SMALL_CORE)]
        )
        assert composite.name == "perf:small+power:small"


class TestFactory:
    def test_by_name(self):
        assert platform_for("small").core is SMALL_CORE

    def test_with_power(self):
        assert isinstance(platform_for("large", with_power=True), PowerPlatform)

    def test_accepts_config_object(self):
        assert platform_for(LARGE_CORE).core is LARGE_CORE
