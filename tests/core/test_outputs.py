"""Unit tests for the result/outputs container."""

import json

from repro.codegen import generate_test_case
from repro.core.outputs import MicroGradResult
from repro.tuning.base import EpochRecord, TuningResult


def _result():
    program = generate_test_case(
        dict(ADD=4, BEQ=1, LD=2, SD=1, REG_DIST=3, MEM_SIZE=16,
             B_PATTERN=0.2)
    )
    tuning = TuningResult(
        best_config={"ADD": 4},
        best_metrics={"ipc": 1.2},
        best_loss=0.01,
        epochs=3,
        converged=True,
        stop_reason="target_loss",
        history=[
            EpochRecord(1, 0.5, 0.5, {"ipc": 0.8}, {"ADD": 2}, 10),
            EpochRecord(2, 0.1, 0.1, {"ipc": 1.1}, {"ADD": 3}, 20),
            EpochRecord(3, 0.01, 0.01, {"ipc": 1.2}, {"ADD": 4}, 30),
        ],
        requested_evaluations=30,
        unique_evaluations=25,
    )
    return MicroGradResult(
        use_case="cloning",
        core="small",
        program=program,
        knobs={"ADD": 4},
        metrics={"ipc": 1.2},
        targets={"ipc": 1.25},
        accuracy={"ipc": 0.96},
        mean_accuracy=0.96,
        tuning=tuning,
    )


class TestMicroGradResult:
    def test_assembly_is_generated(self):
        result = _result()
        assert "loop:" in result.assembly
        assert "j loop" in result.assembly

    def test_epoch_progression_shape(self):
        rows = _result().epoch_progression()
        assert [r["epoch"] for r in rows] == [1, 2, 3]
        assert rows[-1]["evaluations"] == 30

    def test_epoch_progression_empty_without_tuning(self):
        result = _result()
        result.tuning = None
        assert result.epoch_progression() == []

    def test_save_writes_all_artifacts(self, tmp_path):
        out = _result().save(tmp_path / "run1")
        assert (out / "testcase.s").exists()
        assert (out / "knobs.json").exists()
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["mean_accuracy"] == 0.96
        epochs = json.loads((out / "epochs.json").read_text())
        assert len(epochs) == 3

    def test_summary_mentions_accuracy_and_epochs(self):
        text = _result().summary()
        assert "0.96" in text
        assert "3 epochs" in text
        assert "target_loss" in text
