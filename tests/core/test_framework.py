"""End-to-end tests of the MicroGrad facade (small budgets)."""

import pytest

from repro.core.config import MicroGradConfig
from repro.core.framework import DEFAULT_KNOB_VALUES, MicroGrad

MIX_KNOBS = ("ADD", "MUL", "FADDD", "FMULD", "BEQ", "BNE",
             "LD", "LW", "SD", "SW")


def _fast_cloning(**overrides):
    base = dict(
        use_case="cloning",
        targets={"ipc": 1.2, "branch": 0.1},
        metrics=("ipc", "branch"),
        core="small",
        max_epochs=6,
        loop_size=200,
        instructions=4_000,
    )
    base.update(overrides)
    return MicroGradConfig(**base)


def _fast_stress(**overrides):
    base = dict(
        use_case="stress",
        metrics=("ipc",),
        core="small",
        max_epochs=4,
        loop_size=200,
        instructions=4_000,
        knobs=MIX_KNOBS,
    )
    base.update(overrides)
    return MicroGradConfig(**base)


class TestKnobSpaceConstruction:
    def test_full_space_by_default(self):
        mg = MicroGrad(_fast_cloning())
        assert len(mg.knob_space) == 16

    def test_subset_pins_the_rest(self):
        mg = MicroGrad(_fast_stress())
        assert len(mg.knob_space) == 10
        assert mg.knob_space.fixed["REG_DIST"] == DEFAULT_KNOB_VALUES["REG_DIST"]

    def test_fixed_knobs_override_defaults(self):
        mg = MicroGrad(_fast_stress(fixed_knobs={"REG_DIST": 9}))
        assert mg.knob_space.fixed["REG_DIST"] == 9

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown knob"):
            MicroGrad(_fast_stress(knobs=("ADD", "WARP_SPEED")))

    def test_missing_default_falls_back_to_lattice_midpoint(self, monkeypatch):
        """A pinned knob absent from DEFAULT_KNOB_VALUES must not KeyError."""
        from repro.core import framework as framework_module

        monkeypatch.delitem(framework_module.DEFAULT_KNOB_VALUES, "MEM_TEMP2")
        mg = MicroGrad(_fast_stress())
        # MEM_TEMP2's lattice is 1..10; its own default is the midpoint.
        assert mg.knob_space.fixed["MEM_TEMP2"] == 5.0


class TestRuns:
    def test_cloning_run_produces_complete_result(self):
        result = MicroGrad(_fast_cloning()).run()
        assert result.use_case == "cloning"
        assert result.targets == {"ipc": 1.2, "branch": 0.1}
        assert set(result.accuracy) == {"ipc", "branch"}
        assert 0 < result.mean_accuracy <= 1.0
        assert result.tuning.epochs <= 6
        assert len(result.program) == 200
        result.program.validate()

    def test_stress_run_minimizes_ipc(self):
        result = MicroGrad(_fast_stress()).run()
        assert result.metrics["ipc"] > 0
        assert result.targets == {}
        assert result.tuning.requested_evaluations > 0

    def test_power_metric_attaches_power_platform(self):
        config = _fast_stress(metrics=("dynamic_power",), maximize=True)
        mg = MicroGrad(config)
        assert "power" in mg.platform.name
        result = mg.run()
        assert result.metrics["dynamic_power"] > 0

    def test_runs_are_deterministic(self):
        a = MicroGrad(_fast_stress(seed=3)).run()
        b = MicroGrad(_fast_stress(seed=3)).run()
        assert a.knobs == b.knobs
        assert a.metrics == b.metrics

    def test_ga_tuner_selectable(self):
        result = MicroGrad(_fast_stress(tuner="ga", max_epochs=2)).run()
        # One GA epoch costs a population's worth of evaluations.
        assert result.tuning.requested_evaluations == 2 * 50

    def test_random_tuner_selectable(self):
        result = MicroGrad(_fast_stress(tuner="random", max_epochs=2)).run()
        assert result.tuning.epochs == 2


class TestSimpointCloning:
    def test_one_clone_per_simpoint(self):
        config = MicroGradConfig(
            use_case="cloning",
            application="bzip2",
            metrics=("ipc", "branch"),
            core="small",
            max_epochs=3,
            loop_size=150,
            instructions=3_000,
            use_simpoints=True,
        )
        results = MicroGrad(config).clone_simpoints(max_k=3)
        assert len(results) >= 2  # bzip2 has two phases
        weights = [r.knobs["_simpoint_weight"] for r in results]
        assert sum(weights) == pytest.approx(1.0)
        phases = {r.knobs["_simpoint_phase"] for r in results}
        assert phases <= {"sort", "huffman"}

    def test_simpoint_cloning_requires_application(self):
        with pytest.raises(ValueError, match="application"):
            MicroGrad(_fast_cloning()).clone_simpoints()
