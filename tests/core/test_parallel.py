"""End-to-end parallel-evaluation tests: backends must not change results.

The acceptance bar for the batched evaluation engine: a process pool with
``jobs > 1`` produces **bit-identical** best-config/metrics to serial
execution for seeded runs, for every tuner the framework exposes.
"""

import dataclasses

import pytest

from repro.core.config import MicroGradConfig
from repro.core.framework import MicroGrad

MIX_KNOBS = ("ADD", "MUL", "FADDD", "FMULD", "BEQ", "BNE",
             "LD", "LW", "SD", "SW")


def _stress(jobs, backend, **overrides):
    base = dict(
        use_case="stress",
        metrics=("ipc",),
        core="small",
        max_epochs=2,
        loop_size=150,
        instructions=2_000,
        knobs=MIX_KNOBS,
        seed=7,
        jobs=jobs,
        backend=backend,
    )
    base.update(overrides)
    return MicroGradConfig(**base)


def _run(config):
    mg = MicroGrad(config)
    try:
        return mg.run()
    finally:
        mg.close()


class TestSerialProcessBitIdentity:
    @pytest.mark.parametrize("tuner", ["ga", "gd", "random"])
    def test_process_pool_matches_serial(self, tuner):
        serial = _run(_stress(1, "serial", tuner=tuner))
        parallel = _run(_stress(3, "process", tuner=tuner))
        assert parallel.knobs == serial.knobs
        assert parallel.metrics == serial.metrics
        assert parallel.tuning.best_loss == serial.tuning.best_loss
        assert (parallel.tuning.requested_evaluations
                == serial.tuning.requested_evaluations)
        assert (parallel.tuning.unique_evaluations
                == serial.tuning.unique_evaluations)

    def test_loss_curves_match(self):
        serial = _run(_stress(1, "serial", tuner="ga"))
        parallel = _run(_stress(3, "process", tuner="ga"))
        assert parallel.tuning.loss_curve() == serial.tuning.loss_curve()


class TestBackendSelection:
    def test_auto_with_one_job_is_serial(self):
        mg = MicroGrad(_stress(1, "auto"))
        assert mg.backend.name == "serial"
        mg.close()

    def test_auto_with_many_jobs_is_process(self):
        mg = MicroGrad(_stress(4, "auto"))
        assert mg.backend.name.startswith("process")
        assert mg.backend.jobs == 4
        mg.close()

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            _stress(1, "quantum")

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            _stress(-2, "auto")


class TestDiskCachePersistence:
    def test_second_run_is_served_from_cache(self, tmp_path):
        config = _stress(1, "serial", cache_dir=str(tmp_path))
        first = _run(config)
        mg = MicroGrad(config)
        try:
            from repro.core.usecases.stress import StressTestingUseCase

            usecase = StressTestingUseCase(config)
            evaluator = mg.build_evaluator()
            tuner = mg._build_tuner(
                evaluator, usecase.loss(), usecase.target_loss()
            )
            tuner.run()
            # Every evaluation the rerun requested was already on disk.
            assert evaluator.unique_evaluations == 0
        finally:
            mg.close()
        second = _run(config)
        assert second.knobs == first.knobs
        assert second.metrics == first.metrics


class TestSimpointCloningParallel:
    def _config(self, jobs, backend):
        return MicroGradConfig(
            use_case="cloning",
            application="bzip2",
            metrics=("ipc", "branch"),
            core="small",
            max_epochs=2,
            loop_size=120,
            instructions=2_000,
            use_simpoints=True,
            jobs=jobs,
            backend=backend,
        )

    def test_parallel_simpoint_clones_match_serial(self):
        mg_parallel = MicroGrad(self._config(3, "process"))
        mg_serial = MicroGrad(self._config(1, "serial"))
        try:
            parallel = mg_parallel.clone_simpoints(max_k=3)
            serial = mg_serial.clone_simpoints(max_k=3)
        finally:
            mg_parallel.close()
            mg_serial.close()
        assert len(parallel) == len(serial) >= 2
        for a, b in zip(parallel, serial):
            assert a.knobs == b.knobs
            assert a.metrics == b.metrics


class TestSubConfigConstruction:
    def test_clone_simpoints_preserves_every_config_field(self):
        """Sub-configs come from dataclasses.replace, not dict surgery."""
        config = MicroGradConfig(
            use_case="cloning",
            application="bzip2",
            metrics=("ipc",),
            core="small",
            max_epochs=2,
            loop_size=123,
            instructions=2_000,
            use_simpoints=True,
            fixed_knobs={"B_PATTERN": 0.2},
            accuracy_target=0.9,
        )
        sub = dataclasses.replace(
            config, targets={"ipc": 1.0}, application=None,
            use_simpoints=False,
        )
        # Fields untouched by the per-simpoint overrides survive intact.
        assert sub.loop_size == 123
        assert sub.fixed_knobs == {"B_PATTERN": 0.2}
        assert sub.accuracy_target == 0.9
        assert sub.metrics == ("ipc",)
