"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_clone_flags(self):
        args = build_parser().parse_args(
            ["clone", "--application", "mcf", "--core", "small",
             "--tuner", "ga", "--max-epochs", "5"]
        )
        assert args.application == "mcf"
        assert args.tuner == "ga"
        assert args.max_epochs == 5

    def test_unknown_application_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["clone", "--application", "nope"])

    def test_execution_flags(self):
        args = build_parser().parse_args(
            ["stress", "--jobs", "4", "--backend", "process",
             "--cache-dir", "/tmp/mg-cache"]
        )
        assert args.jobs == 4
        assert args.backend == "process"
        assert args.cache_dir == "/tmp/mg-cache"

    def test_execution_flags_default_to_unset(self):
        args = build_parser().parse_args(["stress"])
        assert args.jobs is None
        assert args.backend is None
        assert args.cache_dir is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stress", "--backend", "gpu"])

    def test_dist_flags(self):
        args = build_parser().parse_args(
            ["stress", "--backend", "dist", "--dist-addr", "0.0.0.0:9900",
             "--dist-workers", "0", "--dist-lease-timeout", "120"]
        )
        assert args.dist_addr == "0.0.0.0:9900"
        assert args.dist_workers == 0
        assert args.dist_lease_timeout == 120.0

    def test_worker_heartbeat_flag(self):
        args = build_parser().parse_args(
            ["worker", "--addr", "host:9900", "--heartbeat", "0.5"]
        )
        assert args.heartbeat == 0.5
        assert build_parser().parse_args(
            ["worker", "--addr", "host:9900"]
        ).heartbeat is None


class TestCommands:
    def test_cores_lists_both(self, capsys):
        assert main(["cores"]) == 0
        out = capsys.readouterr().out
        assert '"small"' in out
        assert '"large"' in out

    def test_simpoints_prints_intervals(self, capsys):
        assert main(["simpoints", "--application", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "interval" in out
        assert "weight" in out

    def test_characterize_prints_table(self, capsys):
        assert main(
            ["characterize", "--application", "bzip2", "--core", "small"]
        ) == 0
        out = capsys.readouterr().out
        assert "combined" in out

    def test_stress_with_config_file(self, tmp_path, capsys):
        from repro.core.config import MicroGradConfig

        config = MicroGradConfig(
            use_case="stress", metrics=("ipc",), core="small",
            max_epochs=2, loop_size=150, instructions=3_000,
            knobs=("ADD", "MUL", "LD", "SD"),
        )
        path = tmp_path / "stress.json"
        config.to_json(path)
        assert main(["stress", "--config", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stress" in out
        assert "ipc" in out

    def test_execution_flags_override_config_file(self, tmp_path, capsys):
        from repro.core.config import MicroGradConfig

        config = MicroGradConfig(
            use_case="stress", metrics=("ipc",), core="small",
            max_epochs=2, loop_size=120, instructions=2_000,
            knobs=("ADD", "MUL", "LD", "SD"),
        )
        path = tmp_path / "stress.json"
        config.to_json(path)
        cache_dir = tmp_path / "cache"
        assert main(
            ["stress", "--config", str(path), "--jobs", "2",
             "--backend", "process", "--cache-dir", str(cache_dir)]
        ) == 0
        # The run populated the persistent cache named on the CLI.
        assert cache_dir.exists() and any(cache_dir.glob("*.json"))

    def test_clone_saves_artifacts(self, tmp_path, capsys):
        from repro.core.config import MicroGradConfig

        config = MicroGradConfig(
            use_case="cloning", targets={"ipc": 1.0}, metrics=("ipc",),
            core="small", max_epochs=2, loop_size=150, instructions=3_000,
        )
        path = tmp_path / "clone.json"
        config.to_json(path)
        out_dir = tmp_path / "result"
        assert main(
            ["clone", "--config", str(path), "--out", str(out_dir)]
        ) == 0
        assert (out_dir / "testcase.s").exists()
        knobs = json.loads((out_dir / "knobs.json").read_text())
        assert "ADD" in knobs


class TestExtensionCommands:
    def test_bottleneck_sweeps_and_finds_knee(self, capsys):
        assert main(
            ["bottleneck", "--knob", "MEM_SIZE", "--core", "small",
             "--instructions", "4000"]
        ) == 0
        out = capsys.readouterr().out
        assert "MEM_SIZE=2" in out
        assert "knee at" in out

    def test_bottleneck_unknown_knob_rejected(self):
        with pytest.raises(SystemExit):
            main(["bottleneck", "--knob", "TURBO"])

    def test_sensitivity_ranks_knobs(self, capsys):
        assert main(
            ["sensitivity", "--core", "small", "--instructions", "3000"]
        ) == 0
        out = capsys.readouterr().out
        assert "B_PATTERN" in out
        assert "swing" in out

    def test_droop_runs(self, capsys):
        assert main(
            ["droop", "--core", "small", "--max-epochs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "peak droop" in out
