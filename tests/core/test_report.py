"""Unit tests for the ASCII reporting helpers."""

import pytest

from repro.core.report import ascii_chart, format_table, radar_text


class TestAsciiChart:
    def test_renders_title_and_legend(self):
        text = ascii_chart({"gd": [3, 2, 1], "ga": [3, 2.5, 2]},
                           title="convergence")
        assert text.splitlines()[0] == "convergence"
        assert "*=gd" in text
        assert "o=ga" in text

    def test_height_and_width_respected(self):
        text = ascii_chart({"s": [1, 2, 3]}, width=30, height=8)
        body = [l for l in text.splitlines() if "|" in l]
        assert len(body) == 8
        assert all(len(l) <= 12 + 30 for l in body)

    def test_constant_series_renders(self):
        ascii_chart({"flat": [2.0, 2.0, 2.0]})  # must not divide by zero

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"nothing": []})

    def test_extremes_land_on_edges(self):
        text = ascii_chart({"s": [0.0, 10.0]}, width=20, height=5)
        rows = [l for l in text.splitlines() if "|" in l]
        assert "*" in rows[0]    # max at the top row
        assert "*" in rows[-1]   # min at the bottom row


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text
        assert len(lines) == 4

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestRadarText:
    def test_perfect_clone_is_centered(self):
        text = radar_text({"ipc": 1.0})
        assert "1.000" in text
        assert "|" in text

    def test_deviation_grows_bar(self):
        near = radar_text({"m": 1.02}).count("=")
        far = radar_text({"m": 1.4}).count("=")
        assert far > near

    def test_clips_extreme_ratios(self):
        radar_text({"m": 5.0})  # must not raise or overflow the width


class TestRadarTextEdge:
    def test_multiple_metrics_render_one_line_each(self):
        text = radar_text({"ipc": 1.1, "l1d_hit_rate": 0.9, "branch": 1.0})
        assert len(text.splitlines()) == 3

    def test_below_target_bars_point_left(self):
        line = radar_text({"m": 0.7}, width=20)
        centre = line.index("|")
        left = line[:centre].count("=")
        right = line[centre:].count("=")
        assert left > right
