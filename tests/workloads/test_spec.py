"""Unit tests for the SPEC-like reference workloads."""

import pytest

from repro.sim import LARGE_CORE, SMALL_CORE
from repro.sim.stats import METRIC_KEYS
from repro.workloads.spec import (
    SPEC_BENCHMARKS,
    benchmark_names,
    get_benchmark,
)

PAPER_SUITE = [
    "astar", "bzip2", "gcc", "hmmer", "libquantum", "mcf", "sjeng",
    "xalancbmk",
]


class TestSuiteContents:
    def test_the_eight_paper_benchmarks_exist(self):
        assert benchmark_names() == PAPER_SUITE

    def test_lookup_and_error(self):
        assert get_benchmark("mcf").name == "mcf"
        with pytest.raises(KeyError):
            get_benchmark("povray")

    def test_every_workload_has_weighted_phases(self):
        for workload in SPEC_BENCHMARKS.values():
            assert workload.phases
            assert all(p.weight > 0 for p in workload.phases)

    def test_phase_programs_generate_and_validate(self):
        for workload in SPEC_BENCHMARKS.values():
            for program in workload.programs():
                program.validate()

    def test_phase_programs_record_phase_name(self):
        workload = get_benchmark("astar")
        names = [p.metadata["phase"] for p in workload.programs()]
        assert names == [p.name for p in workload.phases]


class TestReferenceMetrics:
    @pytest.fixture(scope="class")
    def mcf_metrics(self):
        return get_benchmark("mcf").reference_metrics(LARGE_CORE,
                                                      instructions=8_000)

    def test_metric_keys_complete(self, mcf_metrics):
        for key in METRIC_KEYS:
            assert key in mcf_metrics

    def test_rates_bounded(self, mcf_metrics):
        for key in ("mispredict_rate", "l1i_hit_rate", "l1d_hit_rate",
                    "l2_hit_rate"):
            assert 0.0 <= mcf_metrics[key] <= 1.0

    def test_distribution_sums_to_one(self, mcf_metrics):
        total = sum(
            mcf_metrics[g]
            for g in ("integer", "float", "load", "store", "branch")
        )
        assert total == pytest.approx(1.0, abs=0.01)

    def test_deterministic(self):
        a = get_benchmark("sjeng").reference_metrics(SMALL_CORE, 6_000)
        b = get_benchmark("sjeng").reference_metrics(SMALL_CORE, 6_000)
        assert a == b


class TestBehaviouralSignatures:
    """The stand-ins must show each benchmark's published personality."""

    @pytest.fixture(scope="class")
    def all_metrics(self):
        return {
            name: get_benchmark(name).reference_metrics(LARGE_CORE, 8_000)
            for name in PAPER_SUITE
        }

    def test_mcf_is_the_memory_bound_one(self, all_metrics):
        mcf = all_metrics["mcf"]["l1d_hit_rate"]
        assert mcf == min(
            m["l1d_hit_rate"] for m in all_metrics.values()
        )

    def test_hmmer_is_the_compute_bound_one(self, all_metrics):
        hmmer = all_metrics["hmmer"]
        assert hmmer["ipc"] == max(m["ipc"] for m in all_metrics.values())
        assert hmmer["mispredict_rate"] == min(
            m["mispredict_rate"] for m in all_metrics.values()
        )

    def test_sjeng_is_branchy_and_mispredicts(self, all_metrics):
        sjeng = all_metrics["sjeng"]
        assert sjeng["mispredict_rate"] == max(
            m["mispredict_rate"] for m in all_metrics.values()
        )

    def test_xalancbmk_has_icache_pressure_on_small_core(self):
        # The small core's 16k L1I cannot hold xalancbmk's code footprint;
        # its IC hit rate is the suite's worst there (the paper's worst
        # cloning residual, Section IV-B).
        metrics = {
            name: get_benchmark(name).reference_metrics(SMALL_CORE, 8_000)
            for name in ("xalancbmk", "bzip2", "mcf", "sjeng")
        }
        xalan = metrics["xalancbmk"]["l1i_hit_rate"]
        assert xalan == min(m["l1i_hit_rate"] for m in metrics.values())
        assert xalan < 0.95

    def test_libquantum_streams_through_l2(self, all_metrics):
        # Streaming with a prefetching L2: far better L2 behaviour than
        # pointer-chasing mcf.
        libq = all_metrics["libquantum"]
        assert libq["l2_hit_rate"] > 0.7
        assert libq["l2_hit_rate"] > all_metrics["mcf"]["l2_hit_rate"]

    def test_zero_weight_workload_rejected(self):
        from repro.workloads.spec import Phase, ReferenceWorkload

        broken = ReferenceWorkload(
            "broken", "zero weights",
            [Phase("p", 0.0, {"ADD": 1})],
        )
        with pytest.raises(ValueError):
            broken.reference_metrics(SMALL_CORE)
