"""Unit tests for structural BBV profiling."""

import numpy as np
import pytest

from repro.codegen import generate_test_case
from repro.codegen.wrapper import GenerationOptions
from repro.workloads.profiling import (
    block_vector,
    extract_basic_blocks,
    profile_workload,
)
from repro.workloads.simpoint import select_simpoints
from repro.workloads.spec import get_benchmark


def _program(loop_size=120, **overrides):
    knobs = dict(ADD=4, MUL=1, BEQ=1, BNE=1, LD=2, SD=1, REG_DIST=3,
                 MEM_SIZE=16, B_PATTERN=0.3)
    knobs.update(overrides)
    return generate_test_case(knobs, GenerationOptions(loop_size=loop_size))


class TestBasicBlocks:
    def test_blocks_cover_whole_body(self):
        program = _program()
        blocks = extract_basic_blocks(program)
        covered = sum(b.size for b in blocks)
        assert covered == len(program)

    def test_every_block_ends_at_branch_or_body_end(self):
        program = _program()
        blocks = extract_basic_blocks(program)
        for block in blocks[:-1]:
            assert program.body[block.end - 1].idef.is_branch

    def test_branchless_program_is_one_block(self):
        program = generate_test_case(
            dict(ADD=3, MUL=1, REG_DIST=2),
            GenerationOptions(loop_size=40),
        )
        blocks = extract_basic_blocks(program)
        assert len(blocks) == 1
        assert blocks[0].size == 40

    def test_block_count_tracks_branch_count(self):
        program = _program()
        blocks = extract_basic_blocks(program)
        branches = len(program.branch_instructions())
        assert branches <= len(blocks) <= branches + 1


class TestBlockVector:
    def test_normalized(self):
        v = block_vector(_program())
        assert v.sum() == pytest.approx(1.0)
        assert (v >= 0).all()

    def test_dimension_respected(self):
        assert block_vector(_program(), dims=32).shape == (32,)

    def test_deterministic_per_interval(self):
        program = _program()
        a = block_vector(program, interval_index=3)
        b = block_vector(program, interval_index=3)
        assert np.allclose(a, b)

    def test_noisy_phases_wobble_between_intervals(self):
        program = _program(B_PATTERN=1.0)
        a = block_vector(program, interval_index=0)
        b = block_vector(program, interval_index=1)
        assert not np.allclose(a, b)

    def test_different_programs_differ(self):
        a = block_vector(_program())
        b = block_vector(_program(ADD=1, LD=5, BEQ=3))
        assert np.linalg.norm(a - b) > 0.05


class TestProfileWorkload:
    def test_interval_counts_follow_weights(self):
        workload = get_benchmark("mcf")  # weights 0.75 / 0.25
        bbvs, labels = profile_workload(workload, intervals=20)
        from collections import Counter

        counts = Counter(labels)
        assert counts["pbeampp"] > counts["refresh"]

    def test_simpoints_recover_phases_from_structural_bbvs(self):
        workload = get_benchmark("gcc")
        bbvs, labels = profile_workload(workload, intervals=24)
        simpoints = select_simpoints(bbvs, max_k=5, seed=0)
        picked = {labels[s.interval] for s in simpoints}
        assert picked == {p.name for p in workload.phases}

    def test_rows_match_labels(self):
        workload = get_benchmark("bzip2")
        bbvs, labels = profile_workload(workload)
        assert len(bbvs) == len(labels)
