"""Unit tests for the SimPoint implementation."""

import numpy as np
import pytest

from repro.workloads.simpoint import (
    bic_score,
    kmeans,
    random_projection,
    select_simpoints,
    workload_bbv_trace,
)
from repro.workloads.spec import get_benchmark


def _two_blob_bbvs(n_per=20, dims=30, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.05, (n_per, dims)) + np.linspace(0, 1, dims)
    b = rng.normal(0.0, 0.05, (n_per, dims)) + np.linspace(1, 0, dims)
    return np.abs(np.vstack([a, b]))


class TestKMeans:
    def test_two_obvious_clusters(self):
        points = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [5.0, 5.0], [5.1, 5.0],
             [5.0, 5.1]]
        )
        labels, centers, inertia = kmeans(points, 2, seed=0)
        assert len(set(labels[:3])) == 1
        assert len(set(labels[3:])) == 1
        assert labels[0] != labels[3]
        assert inertia < 0.2

    def test_k_equals_n_is_exact(self):
        points = np.array([[0.0], [1.0], [2.0]])
        labels, centers, inertia = kmeans(points, 3, seed=0)
        assert inertia == pytest.approx(0.0)

    def test_bad_k_rejected(self):
        points = np.zeros((3, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 4)

    def test_deterministic_per_seed(self):
        points = _two_blob_bbvs()
        a = kmeans(points, 2, seed=5)[2]
        b = kmeans(points, 2, seed=5)[2]
        assert a == b


class TestProjection:
    def test_reduces_dimension(self):
        bbvs = np.ones((10, 100))
        assert random_projection(bbvs, dims=15).shape == (10, 15)

    def test_small_input_passthrough(self):
        bbvs = np.ones((10, 8))
        assert random_projection(bbvs, dims=15).shape == (10, 8)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            random_projection(np.ones(5))


class TestBic:
    def test_tighter_clustering_scores_higher(self):
        points = _two_blob_bbvs()
        l1, c1, i1 = kmeans(points, 1, seed=0)
        l2, c2, i2 = kmeans(points, 2, seed=0)
        assert bic_score(points, l2, i2) > bic_score(points, l1, i1)


class TestSelectSimpoints:
    def test_recovers_two_blobs(self):
        bbvs = _two_blob_bbvs()
        simpoints = select_simpoints(bbvs, max_k=5, seed=0)
        assert len(simpoints) == 2
        assert sum(s.weight for s in simpoints) == pytest.approx(1.0)
        # One representative from each half.
        halves = sorted(s.interval < 20 for s in simpoints)
        assert halves == [False, True]

    def test_single_phase_collapses_to_one(self):
        rng = np.random.default_rng(0)
        bbvs = np.abs(rng.normal(1.0, 0.01, (30, 20)))
        simpoints = select_simpoints(bbvs, max_k=4, seed=0)
        assert len(simpoints) == 1
        assert simpoints[0].weight == pytest.approx(1.0)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            select_simpoints(np.empty((0, 4)))

    def test_weights_match_cluster_population(self):
        bbvs = np.vstack([_two_blob_bbvs(n_per=30)[:30],
                          _two_blob_bbvs(n_per=10)[30:]])
        simpoints = select_simpoints(bbvs, max_k=4, seed=1)
        assert sum(s.weight for s in simpoints) == pytest.approx(1.0)


class TestWorkloadTrace:
    def test_trace_rows_normalized(self):
        workload = get_benchmark("bzip2")
        bbvs, labels = workload_bbv_trace(workload, seed=0)
        assert len(bbvs) == len(labels)
        assert np.allclose(bbvs.sum(axis=1), 1.0)

    def test_simpoints_recover_phase_structure(self):
        workload = get_benchmark("gcc")
        bbvs, labels = workload_bbv_trace(workload, seed=0)
        simpoints = select_simpoints(bbvs, max_k=5, seed=0)
        picked_phases = {labels[s.interval] for s in simpoints}
        assert picked_phases == {p.name for p in workload.phases}
