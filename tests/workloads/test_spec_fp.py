"""Unit tests for the FP extension workload suite."""

import pytest

from repro.sim import LARGE_CORE
from repro.workloads.spec_fp import (
    SPEC_FP_BENCHMARKS,
    all_benchmarks,
    fp_benchmark_names,
    get_fp_benchmark,
)


class TestSuiteContents:
    def test_four_fp_benchmarks(self):
        assert fp_benchmark_names() == ["bwaves", "milc", "namd", "lbm"]

    def test_lookup_and_error(self):
        assert get_fp_benchmark("lbm").name == "lbm"
        with pytest.raises(KeyError):
            get_fp_benchmark("povray")

    def test_programs_generate_and_validate(self):
        for workload in SPEC_FP_BENCHMARKS.values():
            for program in workload.programs():
                program.validate()

    def test_combined_registry_is_disjoint_union(self):
        combined = all_benchmarks()
        assert len(combined) == 12
        assert "mcf" in combined
        assert "lbm" in combined


class TestFPSignatures:
    @pytest.fixture(scope="class")
    def metrics(self):
        return {
            name: get_fp_benchmark(name).reference_metrics(
                LARGE_CORE, instructions=8_000
            )
            for name in fp_benchmark_names()
        }

    def test_every_fp_benchmark_is_fp_heavy(self, metrics):
        for name, m in metrics.items():
            assert m["float"] > 0.25, f"{name} float share {m['float']:.2f}"

    def test_fp_benchmarks_are_predictable(self, metrics):
        for name, m in metrics.items():
            assert m["mispredict_rate"] < 0.2, name

    def test_lbm_is_store_heavy_and_streaming(self, metrics):
        lbm = metrics["lbm"]
        assert lbm["store"] > 0.15
        assert lbm["l1d_hit_rate"] < 0.9

    def test_namd_has_highest_ipc(self, metrics):
        assert metrics["namd"]["ipc"] == max(m["ipc"] for m in metrics.values())

    def test_bwaves_streams(self, metrics):
        # Unit-stride streaming with the Large core's prefetcher: the L2
        # serves the stream even though L1 misses.
        assert metrics["bwaves"]["l1d_hit_rate"] < 0.95


class TestFPCloning:
    def test_fp_benchmark_clones_with_explicit_registry(self):
        """Cloning an FP workload end to end (distribution + IPC)."""
        from repro import MicroGrad, MicroGradConfig
        from repro.workloads.spec_fp import get_fp_benchmark

        workload = get_fp_benchmark("namd")
        targets = workload.dominant_phase_metrics(LARGE_CORE,
                                                  instructions=5_000)
        config = MicroGradConfig(
            use_case="cloning",
            targets={m: targets[m] for m in
                     ("integer", "float", "load", "store", "branch", "ipc")},
            metrics=("integer", "float", "load", "store", "branch", "ipc"),
            core="large",
            max_epochs=10,
            loop_size=250,
            instructions=5_000,
        )
        result = MicroGrad(config).run()
        assert result.mean_accuracy > 0.85
        assert abs(result.accuracy["float"] - 1.0) < 0.25
