"""Unit tests for characteristics extraction and reporting."""

from repro.codegen import generate_test_case
from repro.sim import SMALL_CORE
from repro.workloads.characteristics import (
    characterize_program,
    characterize_workload,
    format_characteristics,
)
from repro.workloads.spec import get_benchmark


def _program(**overrides):
    knobs = dict(ADD=4, MUL=1, BEQ=1, LD=2, SD=1, REG_DIST=3,
                 MEM_SIZE=64, MEM_STRIDE=16, B_PATTERN=0.2)
    knobs.update(overrides)
    return generate_test_case(knobs)


class TestCharacterizeProgram:
    def test_static_fields_present(self):
        chars = characterize_program(_program())
        for key in ("static_instructions", "code_bytes",
                    "dependency_distance", "memory_footprint_bytes",
                    "branch_random_ratio"):
            assert key in chars

    def test_fractions_reported_per_group(self):
        chars = characterize_program(_program())
        total = sum(chars[f"frac_{g}"] for g in
                    ("integer", "float", "load", "store", "branch"))
        assert abs(total - 1.0) < 1e-9

    def test_knob_values_round_trip(self):
        chars = characterize_program(_program(REG_DIST=7, MEM_SIZE=128))
        assert chars["dependency_distance"] == 7
        assert chars["memory_footprint_bytes"] == 128 * 1024

    def test_memoryless_program_zero_footprint(self):
        program = generate_test_case(dict(ADD=3, BEQ=1, B_PATTERN=0.0))
        chars = characterize_program(program)
        assert chars["memory_footprint_bytes"] == 0.0
        assert "min_stride" not in chars


class TestCharacterizeWorkload:
    def test_per_phase_and_combined_entries(self):
        workload = get_benchmark("bzip2")
        report = characterize_workload(workload, SMALL_CORE,
                                       instructions=6_000)
        assert set(report) == {p.name for p in workload.phases} | {"combined"}
        for phase in workload.phases:
            assert "ipc" in report[phase.name]
            assert report[phase.name]["weight"] == phase.weight

    def test_format_produces_aligned_table(self):
        workload = get_benchmark("bzip2")
        report = characterize_workload(workload, SMALL_CORE,
                                       instructions=6_000)
        text = format_characteristics(report)
        assert "combined" in text
        assert "ipc" in text
        # Every row has the same number of columns.
        rows = text.splitlines()
        assert len(rows) > 5
