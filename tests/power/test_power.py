"""Unit tests for the McPAT-like power model."""

import pytest

from repro.codegen import generate_test_case
from repro.power.mcpat import (
    LARGE_ENERGY,
    SMALL_ENERGY,
    EnergyTable,
    PowerModel,
    PowerReport,
    energy_table_for_core,
)
from repro.sim import LARGE_CORE, SMALL_CORE, Simulator
from repro.sim.stats import SimStats


def _stats(core=SMALL_CORE, **overrides):
    knobs = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1,
                 LD=3, LW=1, SD=1, SW=1,
                 REG_DIST=4, MEM_SIZE=32, MEM_STRIDE=16,
                 MEM_TEMP1=4, MEM_TEMP2=2, B_PATTERN=0.2)
    knobs.update(overrides)
    return Simulator(core).run(generate_test_case(knobs), instructions=10_000)


class TestEnergyTables:
    def test_large_scales_every_field(self):
        from dataclasses import fields

        for f in fields(EnergyTable):
            assert getattr(LARGE_ENERGY, f.name) > getattr(SMALL_ENERGY, f.name)

    def test_factory_matches_core(self):
        assert energy_table_for_core(SMALL_CORE) is SMALL_ENERGY
        assert energy_table_for_core(LARGE_CORE) is LARGE_ENERGY


class TestPowerModel:
    def test_report_structure(self):
        report = PowerModel(SMALL_CORE).estimate(_stats())
        assert isinstance(report, PowerReport)
        assert report.dynamic_w > 0
        assert report.leakage_w > 0
        assert report.total_w == pytest.approx(
            report.dynamic_w + report.leakage_w
        )

    def test_components_sum_to_dynamic(self):
        report = PowerModel(SMALL_CORE).estimate(_stats())
        assert sum(report.components.values()) == pytest.approx(
            report.dynamic_w
        )

    def test_all_components_nonnegative(self):
        report = PowerModel(SMALL_CORE).estimate(_stats())
        assert all(v >= 0 for v in report.components.values())

    def test_large_core_burns_more_for_same_program(self):
        small = PowerModel(SMALL_CORE).estimate(_stats(SMALL_CORE))
        large = PowerModel(LARGE_CORE).estimate(_stats(LARGE_CORE))
        assert large.dynamic_w > small.dynamic_w

    def test_fp_heavy_mix_burns_more_than_int(self):
        # At maximal dependency distance neither mix is chain-bound, so
        # the FP ops' higher per-event energy dominates.
        int_mix = _stats(ADD=10, MUL=0, FADDD=0, FMULD=0, BEQ=1, BNE=0,
                         LD=0, LW=0, SD=0, SW=0, B_PATTERN=0.0, REG_DIST=10)
        fp_mix = _stats(ADD=1, MUL=0, FADDD=5, FMULD=5, BEQ=1, BNE=0,
                        LD=0, LW=0, SD=0, SW=0, B_PATTERN=0.0, REG_DIST=10)
        model = PowerModel(SMALL_CORE)
        assert (
            model.estimate(fp_mix).dynamic_w
            > model.estimate(int_mix).dynamic_w * 0.9
        )

    def test_dram_traffic_adds_component(self):
        streaming = _stats(MEM_SIZE=2048, MEM_TEMP1=1, MEM_TEMP2=1)
        report = PowerModel(SMALL_CORE).estimate(streaming)
        assert report.components["dram"] > 0

    def test_missing_class_counts_raise(self):
        bare = SimStats(
            core="small", instructions=100, cycles=100.0, ipc=1.0,
            l1i_hit_rate=1.0, l1d_hit_rate=1.0, l2_hit_rate=1.0,
            mispredict_rate=0.0,
        )
        with pytest.raises(ValueError, match="class_counts"):
            PowerModel(SMALL_CORE).estimate(bare)

    def test_watts_in_plausible_range(self):
        report = PowerModel(LARGE_CORE).estimate(_stats(LARGE_CORE))
        assert 0.1 < report.dynamic_w < 4.0
