"""Unit tests for the voltage-droop (dI/dt) model and platform."""

import pytest

from repro.power.droop import DroopModel, PdnParams


class TestDroopModel:
    def test_no_swing_no_droop(self):
        report = DroopModel().estimate(1.0, 1.0)
        assert report.droop_mv == 0.0
        assert report.delta_current_a == 0.0

    def test_droop_monotone_in_swing(self):
        model = DroopModel()
        small = model.estimate(1.0, 1.5).droop_mv
        large = model.estimate(1.0, 2.5).droop_mv
        assert large > small

    def test_order_of_arguments_is_irrelevant(self):
        model = DroopModel()
        assert model.estimate(0.5, 2.0).droop_mv == pytest.approx(
            model.estimate(2.0, 0.5).droop_mv
        )

    def test_sharper_ramp_droops_more(self):
        slow = DroopModel(PdnParams(ramp_ns=10.0)).estimate(0.5, 2.0)
        fast = DroopModel(PdnParams(ramp_ns=1.0)).estimate(0.5, 2.0)
        assert fast.droop_mv > slow.droop_mv

    def test_components_add_up(self):
        params = PdnParams(vdd=1.0, resistance_mohm=1.0,
                           inductance_ph=0.0, ramp_ns=1.0)
        report = DroopModel(params).estimate(0.0, 2.0)
        # Pure resistive: droop = dI * R = 2A * 1mOhm = 2 mV.
        assert report.droop_mv == pytest.approx(2.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            DroopModel().estimate(-1.0, 2.0)


class TestVoltageDroopPlatform:
    @pytest.fixture(scope="class")
    def platform(self):
        from repro.core.platform import VoltageDroopPlatform
        from repro.sim import LARGE_CORE

        return VoltageDroopPlatform(LARGE_CORE, instructions=6_000)

    def test_metrics_include_droop(self, platform):
        from repro.codegen import generate_test_case

        program = generate_test_case(
            dict(ADD=1, FADDD=3, FMULD=3, LD=2, SD=2, BEQ=1,
                 REG_DIST=10, MEM_SIZE=16, B_PATTERN=0.0)
        )
        metrics = platform.evaluate(program)
        for key in ("droop_mv", "didt_a_per_ns", "power_swing_w",
                    "dynamic_power", "ipc"):
            assert key in metrics
        assert metrics["droop_mv"] >= 0

    def test_high_power_candidate_droops_more(self, platform):
        from repro.codegen import generate_test_case

        quiet = generate_test_case(
            dict(ADD=3, BEQ=1, REG_DIST=1, B_PATTERN=0.0)
        )
        loud = generate_test_case(
            dict(ADD=1, FADDD=3, FMULD=3, LD=2, SD=3, BEQ=1,
                 REG_DIST=10, MEM_SIZE=16, B_PATTERN=0.0)
        )
        assert (
            platform.evaluate(loud)["droop_mv"]
            > platform.evaluate(quiet)["droop_mv"]
        )

    def test_baseline_power_positive(self, platform):
        assert platform.baseline_power_w > 0


class TestDroopStressEndToEnd:
    def test_micrograd_maximizes_droop(self):
        from repro import MicroGrad, MicroGradConfig
        from repro.core.platform import VoltageDroopPlatform
        from repro.sim import LARGE_CORE

        config = MicroGradConfig(
            use_case="stress",
            metrics=("droop_mv",),
            maximize=True,
            core="large",
            max_epochs=4,
            loop_size=200,
            instructions=5_000,
            knobs=("ADD", "FADDD", "FMULD", "LD", "SD"),
        )
        platform = VoltageDroopPlatform(LARGE_CORE, instructions=5_000)
        result = MicroGrad(config, platform=platform).run()
        assert result.metrics["droop_mv"] > 0
        first_epoch = result.tuning.history[0].loss
        assert result.tuning.best_loss <= first_epoch
