"""Property-based tests: any lattice knob config yields a sound program."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.tuning.knobs import (
    B_PATTERN_VALUES,
    INSTRUCTION_FRACTIONS,
    MEM_SIZE_VALUES,
    MEM_STRIDE_VALUES,
    MEM_TEMP1_VALUES,
    MEM_TEMP2_VALUES,
    MIX_KNOB_NAMES,
    REG_DIST_VALUES,
)

lattice_config = st.fixed_dictionaries(
    {
        **{name: st.sampled_from(INSTRUCTION_FRACTIONS)
           for name in MIX_KNOB_NAMES},
        "REG_DIST": st.sampled_from(REG_DIST_VALUES),
        "MEM_SIZE": st.sampled_from(MEM_SIZE_VALUES),
        "MEM_STRIDE": st.sampled_from(MEM_STRIDE_VALUES),
        "MEM_TEMP1": st.sampled_from(MEM_TEMP1_VALUES),
        "MEM_TEMP2": st.sampled_from(MEM_TEMP2_VALUES),
        "B_PATTERN": st.sampled_from(B_PATTERN_VALUES),
    }
)


class TestLatticeConfigs:
    @given(lattice_config)
    @settings(max_examples=25, deadline=None)
    def test_every_lattice_point_generates_valid_program(self, config):
        program = generate_test_case(config, GenerationOptions(loop_size=120))
        program.validate()
        assert len(program) == 120

    @given(lattice_config)
    @settings(max_examples=25, deadline=None)
    def test_group_fractions_track_knob_weights(self, config):
        weights = {
            "integer": config["ADD"] + config["MUL"],
            "float": config["FADDD"] + config["FMULD"],
            "branch": config["BEQ"] + config["BNE"],
            "load": config["LD"] + config["LW"],
            "store": config["SD"] + config["SW"],
        }
        total = sum(weights.values())
        assume(total > 0)
        program = generate_test_case(config, GenerationOptions(loop_size=200))
        fractions = program.group_fractions()
        for group, weight in weights.items():
            expected = weight / total
            # Apportionment rounds to whole slots out of 200.
            assert abs(fractions.get(group, 0.0) - expected) < 0.02

    @given(lattice_config)
    @settings(max_examples=15, deadline=None)
    def test_memory_attachments_complete_and_consistent(self, config):
        assume(config["LD"] + config["LW"] + config["SD"] + config["SW"] > 0)
        program = generate_test_case(config, GenerationOptions(loop_size=150))
        mem = program.memory_instructions()
        assert mem, "configs with memory weight include loads/stores"
        for instr in mem:
            assert instr.memory.footprint == config["MEM_SIZE"] * 1024
            assert instr.memory.stride == config["MEM_STRIDE"]
            assert instr.memory.reuse_count == config["MEM_TEMP1"]
            assert instr.memory.reuse_period == config["MEM_TEMP2"]
