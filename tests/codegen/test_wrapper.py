"""Unit tests for the knob-to-program wrapper."""

import pytest

from repro.codegen.wrapper import (
    DEFAULT_LOOP_SIZE,
    GenerationOptions,
    KNOB_INSTRUCTIONS,
    generate_test_case,
)


def _knobs(**overrides):
    base = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1,
                LD=3, LW=1, SD=1, SW=1,
                REG_DIST=4, MEM_SIZE=64, MEM_STRIDE=16,
                MEM_TEMP1=4, MEM_TEMP2=2, B_PATTERN=0.3)
    base.update(overrides)
    return base


class TestGenerateTestCase:
    def test_default_loop_size_matches_paper(self):
        program = generate_test_case(_knobs())
        assert len(program) == DEFAULT_LOOP_SIZE == 500

    def test_program_is_valid(self):
        generate_test_case(_knobs()).validate()

    def test_metadata_records_knobs(self):
        program = generate_test_case(_knobs())
        assert program.metadata["knobs"]["ADD"] == 5
        assert program.metadata["dependency_distance"] == 4

    def test_mix_fractions_follow_weights(self):
        program = generate_test_case(_knobs(ADD=8, MUL=0, FADDD=0, FMULD=0,
                                             BEQ=1, BNE=0, LD=1, LW=0,
                                             SD=0, SW=0))
        fr = program.group_fractions()
        assert fr["integer"] == pytest.approx(0.8, abs=0.01)
        assert fr["branch"] == pytest.approx(0.1, abs=0.01)
        assert fr["load"] == pytest.approx(0.1, abs=0.01)

    def test_mem_size_knob_is_kilobytes(self):
        program = generate_test_case(_knobs(MEM_SIZE=128))
        footprints = {i.memory.footprint for i in program.memory_instructions()}
        assert footprints == {128 * 1024}

    def test_streams_override_beats_scalar_knobs(self):
        program = generate_test_case(
            _knobs(STREAMS=[[1, 4096, 0.5, 8, 1, 1], [2, 8192, 0.5, 16, 1, 1]])
        )
        ids = {i.memory.stream_id for i in program.memory_instructions()}
        assert ids == {1, 2}

    def test_no_positive_instruction_weight_falls_back_to_alu(self):
        # The all-zero mix corner degenerates to a pure ALU loop rather
        # than raising, so lattice-edge tuner probes stay evaluable.
        program = generate_test_case({"REG_DIST": 2})
        assert program.group_fractions() == {"integer": 1.0}

    def test_memoryless_config_generates(self):
        program = generate_test_case(
            dict(ADD=5, BEQ=1, REG_DIST=3, B_PATTERN=0.2)
        )
        assert program.memory_instructions() == []
        program.validate()

    def test_custom_loop_size(self):
        program = generate_test_case(
            _knobs(), GenerationOptions(loop_size=800)
        )
        assert len(program) == 800

    def test_generation_is_deterministic(self):
        a = generate_test_case(_knobs())
        b = generate_test_case(_knobs())
        assert [i.mnemonic for i in a] == [i.mnemonic for i in b]
        assert [i.srcs for i in a] == [i.srcs for i in b]

    def test_different_seeds_differ(self):
        a = generate_test_case(_knobs(), GenerationOptions(seed=1))
        b = generate_test_case(_knobs(), GenerationOptions(seed=2))
        assert [i.mnemonic for i in a] != [i.mnemonic for i in b]

    def test_knob_instruction_table_is_consistent(self):
        from repro.isa.instructions import instruction_def

        for knob, mnemonic in KNOB_INSTRUCTIONS.items():
            instruction_def(mnemonic)  # must not raise


class TestGenerationFingerprint:
    """Equal fingerprints must mean identical generated programs."""

    def _fp(self, knobs, **opt):
        from repro.codegen.wrapper import generation_fingerprint

        return generation_fingerprint(knobs, GenerationOptions(**opt))

    def _program_id(self, knobs, **opt):
        from repro.sim.artifact import program_fingerprint

        return program_fingerprint(
            generate_test_case(knobs, GenerationOptions(**opt))
        )

    def test_identical_knobs_merge(self):
        assert self._fp(_knobs()) == self._fp(_knobs())

    def test_proportionally_scaled_profiles_merge(self):
        base = _knobs()
        tripled = {
            k: v * 3 if k in KNOB_INSTRUCTIONS else v
            for k, v in base.items()
        }
        assert self._fp(base) == self._fp(tripled)
        assert self._program_id(base) == self._program_id(tripled)

    def test_b_pattern_inert_without_branches(self):
        base = dict(ADD=5, LD=2, REG_DIST=3, MEM_SIZE=16, B_PATTERN=0.1)
        other = dict(base, B_PATTERN=0.9)
        assert self._fp(base) == self._fp(other)
        assert self._program_id(base) == self._program_id(other)

    def test_b_pattern_matters_with_branches(self):
        assert self._fp(_knobs(B_PATTERN=0.1)) != \
            self._fp(_knobs(B_PATTERN=0.9))

    def test_memory_knobs_inert_without_memory_instructions(self):
        base = dict(ADD=5, BEQ=1, REG_DIST=3, B_PATTERN=0.2,
                    MEM_SIZE=16, MEM_STRIDE=64, MEM_TEMP1=1, MEM_TEMP2=1)
        other = dict(base, MEM_SIZE=2048, MEM_STRIDE=16,
                     MEM_TEMP1=9, MEM_TEMP2=7)
        assert self._fp(base) == self._fp(other)
        assert self._program_id(base) == self._program_id(other)

    def test_memory_knobs_matter_with_memory_instructions(self):
        assert self._fp(_knobs(MEM_SIZE=16)) != \
            self._fp(_knobs(MEM_SIZE=2048))

    def test_reg_dist_splits(self):
        assert self._fp(_knobs(REG_DIST=2)) != self._fp(_knobs(REG_DIST=8))

    def test_unknown_knob_splits_conservatively(self):
        assert self._fp(_knobs()) != self._fp(_knobs(FUTURE_KNOB=1))

    def test_options_split(self):
        assert self._fp(_knobs(), seed=1) != self._fp(_knobs(), seed=2)
        assert self._fp(_knobs(), loop_size=300) != \
            self._fp(_knobs(), loop_size=500)

    def test_equal_fingerprints_generate_identical_programs(self):
        """The planner contract, spot-checked across merge classes."""
        pairs = [
            (_knobs(), {k: v * 2 if k in KNOB_INSTRUCTIONS else v
                        for k, v in _knobs().items()}),
            (dict(ADD=4, REG_DIST=2, B_PATTERN=0.0),
             dict(ADD=4, REG_DIST=2, B_PATTERN=0.8)),
        ]
        for a, b in pairs:
            assert self._fp(a) == self._fp(b)
            assert self._program_id(a) == self._program_id(b)
