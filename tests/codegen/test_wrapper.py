"""Unit tests for the knob-to-program wrapper."""

import pytest

from repro.codegen.wrapper import (
    DEFAULT_LOOP_SIZE,
    GenerationOptions,
    KNOB_INSTRUCTIONS,
    generate_test_case,
)


def _knobs(**overrides):
    base = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1,
                LD=3, LW=1, SD=1, SW=1,
                REG_DIST=4, MEM_SIZE=64, MEM_STRIDE=16,
                MEM_TEMP1=4, MEM_TEMP2=2, B_PATTERN=0.3)
    base.update(overrides)
    return base


class TestGenerateTestCase:
    def test_default_loop_size_matches_paper(self):
        program = generate_test_case(_knobs())
        assert len(program) == DEFAULT_LOOP_SIZE == 500

    def test_program_is_valid(self):
        generate_test_case(_knobs()).validate()

    def test_metadata_records_knobs(self):
        program = generate_test_case(_knobs())
        assert program.metadata["knobs"]["ADD"] == 5
        assert program.metadata["dependency_distance"] == 4

    def test_mix_fractions_follow_weights(self):
        program = generate_test_case(_knobs(ADD=8, MUL=0, FADDD=0, FMULD=0,
                                             BEQ=1, BNE=0, LD=1, LW=0,
                                             SD=0, SW=0))
        fr = program.group_fractions()
        assert fr["integer"] == pytest.approx(0.8, abs=0.01)
        assert fr["branch"] == pytest.approx(0.1, abs=0.01)
        assert fr["load"] == pytest.approx(0.1, abs=0.01)

    def test_mem_size_knob_is_kilobytes(self):
        program = generate_test_case(_knobs(MEM_SIZE=128))
        footprints = {i.memory.footprint for i in program.memory_instructions()}
        assert footprints == {128 * 1024}

    def test_streams_override_beats_scalar_knobs(self):
        program = generate_test_case(
            _knobs(STREAMS=[[1, 4096, 0.5, 8, 1, 1], [2, 8192, 0.5, 16, 1, 1]])
        )
        ids = {i.memory.stream_id for i in program.memory_instructions()}
        assert ids == {1, 2}

    def test_no_positive_instruction_weight_falls_back_to_alu(self):
        # The all-zero mix corner degenerates to a pure ALU loop rather
        # than raising, so lattice-edge tuner probes stay evaluable.
        program = generate_test_case({"REG_DIST": 2})
        assert program.group_fractions() == {"integer": 1.0}

    def test_memoryless_config_generates(self):
        program = generate_test_case(
            dict(ADD=5, BEQ=1, REG_DIST=3, B_PATTERN=0.2)
        )
        assert program.memory_instructions() == []
        program.validate()

    def test_custom_loop_size(self):
        program = generate_test_case(
            _knobs(), GenerationOptions(loop_size=800)
        )
        assert len(program) == 800

    def test_generation_is_deterministic(self):
        a = generate_test_case(_knobs())
        b = generate_test_case(_knobs())
        assert [i.mnemonic for i in a] == [i.mnemonic for i in b]
        assert [i.srcs for i in a] == [i.srcs for i in b]

    def test_different_seeds_differ(self):
        a = generate_test_case(_knobs(), GenerationOptions(seed=1))
        b = generate_test_case(_knobs(), GenerationOptions(seed=2))
        assert [i.mnemonic for i in a] != [i.mnemonic for i in b]

    def test_knob_instruction_table_is_consistent(self):
        from repro.isa.instructions import instruction_def

        for knob, mnemonic in KNOB_INSTRUCTIONS.items():
            instruction_def(mnemonic)  # must not raise
