"""Unit tests for the instruction-level generation model."""

import numpy as np
import pytest

from repro.codegen.instlevel import (
    DEFAULT_ALPHABET,
    FixedCodeParams,
    GenomeEvaluator,
    InstructionLevelSpace,
    SequenceProfilePass,
    genome_to_program,
)


class TestSequenceProfilePass:
    def test_exact_sequence_materialized(self):
        genome = ("ADD", "LD", "FMUL.D", "BEQ", "SD")
        program = genome_to_program(genome)
        assert tuple(i.mnemonic for i in program) == genome

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            SequenceProfilePass([])

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(KeyError):
            SequenceProfilePass(["WARP"])


class TestGenomeToProgram:
    def test_program_validates(self):
        genome = ("ADD",) * 10 + ("LD", "SD", "BEQ", "FMUL.D") * 3
        genome_to_program(genome).validate()

    def test_memoryless_genome(self):
        program = genome_to_program(("ADD", "MUL", "BEQ", "ADD"))
        assert program.memory_instructions() == []
        program.validate()

    def test_params_flow_through(self):
        params = FixedCodeParams(dependency_distance=3,
                                 mem_footprint_bytes=8192, mem_stride=16)
        program = genome_to_program(("LD", "SD", "ADD", "ADD"), params)
        assert program.metadata["dependency_distance"] == 3
        mem = program.memory_instructions()
        assert all(i.memory.footprint == 8192 for i in mem)

    def test_genome_recorded_in_metadata(self):
        genome = ("ADD", "LW")
        program = genome_to_program(genome)
        assert program.metadata["genome"] == genome
        assert program.metadata["model"] == "instruction-level"

    def test_simulates_end_to_end(self):
        from repro.sim import SMALL_CORE, Simulator

        genome = ("ADD", "LD", "FADD.D", "BNE", "SW") * 20
        stats = Simulator(SMALL_CORE).run(
            genome_to_program(genome), instructions=4_000
        )
        assert stats.ipc > 0


class TestSpaceOperators:
    def setup_method(self):
        self.space = InstructionLevelSpace(length=20)
        self.rng = np.random.default_rng(0)

    def test_random_genome_shape_and_alphabet(self):
        genome = self.space.random_genome(self.rng)
        assert len(genome) == 20
        assert set(genome) <= set(DEFAULT_ALPHABET)

    def test_crossover_splices_subsequences(self):
        a = ("ADD",) * 20
        b = ("SD",) * 20
        child = self.space.crossover(a, b, self.rng)
        assert len(child) == 20
        point = child.index("SD")
        assert all(g == "ADD" for g in child[:point])
        assert all(g == "SD" for g in child[point:])

    def test_mutation_rate_zero_is_identity(self):
        genome = self.space.random_genome(self.rng)
        assert self.space.mutate(genome, 0.0, self.rng) == genome

    def test_mutation_rate_one_rewrites_most_slots(self):
        genome = ("ADD",) * 20
        mutated = self.space.mutate(genome, 1.0, self.rng)
        changed = sum(1 for a, b in zip(genome, mutated) if a != b)
        assert changed > 12  # redraw may pick ADD again ~1/10 of the time

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            InstructionLevelSpace(length=1)
        with pytest.raises(ValueError):
            InstructionLevelSpace(alphabet=())
        with pytest.raises(KeyError):
            InstructionLevelSpace(alphabet=("NOPE",))


class TestGenomeEvaluator:
    def test_memoizes_identical_genomes(self):
        calls = []
        evaluator = GenomeEvaluator(
            lambda program: calls.append(1) or {"y": float(len(program))}
        )
        genome = ("ADD", "SD")
        evaluator.evaluate_genome(genome)
        evaluator.evaluate_genome(genome)
        assert evaluator.requested_evaluations == 2
        assert evaluator.unique_evaluations == 1
        assert len(calls) == 1
