"""Unit tests for individual code-synthesis passes."""

import pytest

from repro.codegen.passes.addresses import UpdateInstructionAddressesPass
from repro.codegen.passes.branches import RandomizeByTypePass
from repro.codegen.passes.building_block import SimpleBuildingBlockPass
from repro.codegen.passes.memory import GenericMemoryStreamsPass, StreamSpec
from repro.codegen.passes.profile import SetInstructionTypeByProfilePass, apportion
from repro.codegen.passes.registers import (
    DefaultRegisterAllocationPass,
    InitializeRegistersPass,
    ReserveRegistersPass,
)
from repro.codegen.passes.verify import VerifyProgramPass
from repro.codegen.synthesizer import (
    GenerationContext,
    PassOrderingError,
    Synthesizer,
)
from repro.isa.program import Program
from repro.isa.registers import RegisterFile, RegisterKind


def _context():
    return GenerationContext()


class TestApportion:
    def test_exact_split(self):
        counts = apportion({"A": 1, "B": 1}, 10)
        assert counts == {"A": 5, "B": 5}

    def test_sums_to_total(self):
        counts = apportion({"A": 1, "B": 2, "C": 4}, 100)
        assert sum(counts.values()) == 100

    def test_each_count_within_one_of_ideal(self):
        weights = {"A": 3, "B": 5, "C": 7, "D": 11}
        total = 97
        counts = apportion(weights, total)
        wsum = sum(weights.values())
        for k, w in weights.items():
            ideal = w / wsum * total
            assert abs(counts[k] - ideal) < 1.0

    def test_empty_weights_raise(self):
        with pytest.raises(ValueError):
            apportion({}, 10)

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            apportion({"A": -1}, 10)

    def test_zero_sum_raises(self):
        with pytest.raises(ValueError):
            apportion({"A": 0.0}, 10)


class TestBuildingBlock:
    def test_creates_requested_slots(self):
        program = Program()
        SimpleBuildingBlockPass(123).run(program, _context())
        assert len(program) == 123
        assert all(i.mnemonic == "NOP" for i in program)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            SimpleBuildingBlockPass(0)


class TestProfilePass:
    def _program(self, n=100):
        program = Program()
        SimpleBuildingBlockPass(n).run(program, _context())
        return program

    def test_distribution_matches_profile_exactly(self):
        program = self._program(100)
        SetInstructionTypeByProfilePass({"ADD": 3, "MUL": 1}).run(
            program, _context()
        )
        counts = {}
        for i in program:
            counts[i.mnemonic] = counts.get(i.mnemonic, 0) + 1
        assert counts == {"ADD": 75, "MUL": 25}

    def test_unknown_mnemonic_rejected_at_construction(self):
        with pytest.raises(KeyError):
            SetInstructionTypeByProfilePass({"BOGUS": 1})

    def test_classes_are_interleaved_not_clustered(self):
        program = self._program(200)
        SetInstructionTypeByProfilePass({"ADD": 1, "MUL": 1}).run(
            program, _context()
        )
        # A fully clustered assignment would have exactly 1 transition;
        # interleaving should produce many.
        transitions = sum(
            1
            for a, b in zip(program.body, program.body[1:])
            if a.mnemonic != b.mnemonic
        )
        assert transitions > 20


class TestReserveAndInit:
    def test_reserved_registers_leave_pool(self):
        program = Program()
        ctx = _context()
        ReserveRegistersPass(["x5", "f3"]).run(program, ctx)
        assert ctx.registers.is_reserved(RegisterFile.parse("x5"))
        assert ctx.registers.is_reserved(RegisterFile.parse("f3"))

    def test_initialize_literal_value(self):
        program = Program()
        InitializeRegistersPass(value=7).run(program, _context())
        values = program.metadata["register_init"]
        assert set(values.values()) == {7}

    def test_initialize_random_is_deterministic(self):
        p1, p2 = Program(), Program()
        InitializeRegistersPass().run(p1, _context())
        InitializeRegistersPass().run(p2, _context())
        assert p1.metadata["register_init"] == p2.metadata["register_init"]


class TestRegisterAllocation:
    def _profiled_program(self, profile, n=60):
        program = Program()
        ctx = _context()
        SimpleBuildingBlockPass(n).run(program, ctx)
        SetInstructionTypeByProfilePass(profile).run(program, ctx)
        return program, ctx

    def test_dependency_distance_links_sources_to_producers(self):
        program, ctx = self._profiled_program({"ADD": 1})
        dd = 4
        DefaultRegisterAllocationPass(dd=dd).run(program, ctx)
        # After warmup, each source must equal the destination written
        # dd instructions earlier.
        body = program.body
        for n in range(dd + 1, len(body)):
            producer = body[n - dd]
            assert body[n].srcs[0] == producer.dests[0]

    def test_destination_not_rewritten_within_distance(self):
        program, ctx = self._profiled_program({"ADD": 1})
        dd = 5
        DefaultRegisterAllocationPass(dd=dd).run(program, ctx)
        body = program.body
        for n, instr in enumerate(body):
            for back in range(1, min(dd, n) + 1):
                assert instr.dests != body[n - back].dests or back > dd

    def test_bad_distance_raises(self):
        with pytest.raises(ValueError):
            DefaultRegisterAllocationPass(dd=0)

    def test_distance_too_large_for_pool_raises(self):
        program, ctx = self._profiled_program({"ADD": 1})
        for i in range(1, 29):
            ctx.registers.reserve(RegisterFile.parse(f"x{i}"))
        with pytest.raises(ValueError, match="allocatable"):
            DefaultRegisterAllocationPass(dd=9).run(program, ctx)


class TestMemoryStreams:
    def _memory_program(self, n=60):
        program = Program()
        ctx = _context()
        SimpleBuildingBlockPass(n).run(program, ctx)
        SetInstructionTypeByProfilePass({"LD": 1, "SD": 1}).run(program, ctx)
        return program, ctx

    def test_single_stream_covers_all_memory_ops(self):
        program, ctx = self._memory_program()
        GenericMemoryStreamsPass([[1, 4096, 1.0, 64, 1, 1]]).run(program, ctx)
        mem = program.memory_instructions()
        assert all(i.memory is not None for i in mem)
        assert {i.memory.stream_id for i in mem} == {1}

    def test_ratio_split_is_proportional(self):
        program, ctx = self._memory_program(120)
        GenericMemoryStreamsPass(
            [[1, 4096, 0.75, 64, 1, 1], [2, 8192, 0.25, 8, 1, 1]]
        ).run(program, ctx)
        mem = program.memory_instructions()
        ones = sum(1 for i in mem if i.memory.stream_id == 1)
        assert abs(ones / len(mem) - 0.75) < 0.05

    def test_step_equals_stream_population(self):
        program, ctx = self._memory_program(80)
        GenericMemoryStreamsPass([[1, 4096, 1.0, 64, 1, 1]]).run(program, ctx)
        mem = program.memory_instructions()
        for instr in mem:
            assert instr.memory.step == len(mem)

    def test_phases_are_unique_within_stream(self):
        program, ctx = self._memory_program(80)
        GenericMemoryStreamsPass([[1, 4096, 1.0, 64, 1, 1]]).run(program, ctx)
        phases = [i.memory.phase for i in program.memory_instructions()]
        assert sorted(phases) == list(range(len(phases)))

    def test_no_streams_raises(self):
        with pytest.raises(ValueError):
            GenericMemoryStreamsPass([])

    def test_oversized_stream_rejected(self):
        with pytest.raises(ValueError):
            StreamSpec(1, 1 << 30, 1.0, 64)


class TestBranchesAndAddresses:
    def test_branch_pass_attaches_behaviour(self):
        program = Program()
        ctx = _context()
        SimpleBuildingBlockPass(40).run(program, ctx)
        SetInstructionTypeByProfilePass({"BEQ": 1, "ADD": 3}).run(program, ctx)
        RandomizeByTypePass(0.4).run(program, ctx)
        for br in program.branch_instructions():
            assert br.branch is not None
            assert br.branch.random_ratio == 0.4

    def test_branch_seeds_differ_per_instruction(self):
        program = Program()
        ctx = _context()
        SimpleBuildingBlockPass(40).run(program, ctx)
        SetInstructionTypeByProfilePass({"BNE": 1}).run(program, ctx)
        RandomizeByTypePass(1.0).run(program, ctx)
        seeds = [b.branch.seed for b in program.branch_instructions()]
        assert len(set(seeds)) == len(seeds)

    def test_addresses_are_sequential(self):
        program = Program()
        ctx = _context()
        SimpleBuildingBlockPass(10).run(program, ctx)
        UpdateInstructionAddressesPass().run(program, ctx)
        addrs = [i.address for i in program]
        assert addrs == [program.entry_address + 4 * n for n in range(10)]
        assert program.metadata["code_bytes"] == 40

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            RandomizeByTypePass(1.5)


class TestSynthesizerOrdering:
    def test_pass_ordering_is_enforced(self):
        synth = Synthesizer(
            passes=[
                SimpleBuildingBlockPass(10),
                # Register allocation before the profile: must fail.
                DefaultRegisterAllocationPass(dd=2),
                SetInstructionTypeByProfilePass({"ADD": 1}),
            ]
        )
        with pytest.raises(PassOrderingError, match="requires"):
            synth.synthesize()

    def test_verify_requires_layout(self):
        synth = Synthesizer(
            passes=[SimpleBuildingBlockPass(10), VerifyProgramPass()]
        )
        with pytest.raises(PassOrderingError):
            synth.synthesize()
