"""Unit tests for phased (multi-section) test-case generation."""

import pytest

from repro.codegen.phased import generate_phased_test_case, split_sections
from repro.codegen.wrapper import GenerationOptions

QUIET = dict(ADD=4, BEQ=1, REG_DIST=1, B_PATTERN=0.0)
LOUD = dict(ADD=1, FADDD=3, FMULD=3, LD=2, SD=3, BEQ=1,
            REG_DIST=10, MEM_SIZE=16, B_PATTERN=0.0)


@pytest.fixture(scope="module")
def phased():
    return generate_phased_test_case(
        [QUIET, LOUD], GenerationOptions(loop_size=400)
    )


class TestGeneration:
    def test_program_validates(self, phased):
        phased.validate()

    def test_sections_recorded(self, phased):
        assert phased.metadata["sections"] == [(0, 200), (200, 400)]

    def test_addresses_are_contiguous(self, phased):
        addrs = [i.address for i in phased.body]
        assert addrs == [phased.entry_address + 4 * n
                         for n in range(len(phased))]

    def test_sections_have_distinct_mixes(self, phased):
        first, second = split_sections(phased)
        assert first.group_fractions().get("float", 0.0) == 0.0
        assert second.group_fractions().get("float", 0.0) > 0.2

    def test_stream_ids_do_not_collide_across_sections(self):
        both_mem = generate_phased_test_case(
            [dict(LOUD), dict(LOUD)], GenerationOptions(loop_size=300)
        )
        first, second = split_sections(both_mem)
        ids_a = {i.memory.stream_id for i in first.memory_instructions()}
        ids_b = {i.memory.stream_id for i in second.memory_instructions()}
        assert ids_a.isdisjoint(ids_b)

    def test_single_section_rejected(self):
        with pytest.raises(ValueError, match=">= 2 sections"):
            generate_phased_test_case([QUIET])

    def test_three_sections(self):
        program = generate_phased_test_case(
            [QUIET, LOUD, QUIET], GenerationOptions(loop_size=300)
        )
        assert len(program.metadata["sections"]) == 3


class TestSplit:
    def test_split_round_trips_sizes(self, phased):
        parts = split_sections(phased)
        assert [len(p) for p in parts] == [200, 200]
        for part in parts:
            part.validate()

    def test_unphased_program_rejected(self):
        from repro.codegen import generate_test_case

        with pytest.raises(ValueError, match="section metadata"):
            split_sections(generate_test_case(QUIET))


class TestSimulationAndDroop:
    def test_phased_program_simulates(self, phased):
        from repro.sim import LARGE_CORE, Simulator

        stats = Simulator(LARGE_CORE).run(phased, instructions=8_000)
        assert stats.ipc > 0
        fractions = stats.group_fractions
        assert 0.0 < fractions.get("float", 0.0) < 0.4  # the loud half

    def test_alternation_droops_more_than_uniform(self):
        from repro.power.droop import analyze_phased_program
        from repro.sim import LARGE_CORE

        alternating = generate_phased_test_case(
            [QUIET, LOUD], GenerationOptions(loop_size=400)
        )
        uniform = generate_phased_test_case(
            [LOUD, dict(LOUD)], GenerationOptions(loop_size=400)
        )
        droop_alt = analyze_phased_program(alternating, LARGE_CORE,
                                           instructions=6_000)
        droop_uni = analyze_phased_program(uniform, LARGE_CORE,
                                           instructions=6_000)
        assert droop_alt.droop_mv > droop_uni.droop_mv
