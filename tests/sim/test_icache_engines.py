"""Instruction-cache engines: closed form and batch vs the per-set loop.

PR 7 adds icache events to the config-batched shared pass.  The
reference per-set loop (:func:`cyclic_code_hits`) is the oracle; the
closed form over the at-most-two distinct per-set line counts and the
key-dedup batch entry point must both be bit-identical to it for every
geometry, footprint and iteration count.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.events as events_mod
from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.sim import LARGE_CORE, SMALL_CORE
from repro.sim.artifact import TraceArtifact
from repro.sim.cache import cyclic_code_hits, cyclic_code_hits_closed
from repro.sim.config import CacheGeometry
from repro.sim.events import (
    engine_path_counts,
    reset_engine_path_counts,
    simulate_icache,
    simulate_icache_batch,
)

KNOBS = dict(ADD=5, MUL=1, FADDD=1, BEQ=1, LD=2, SD=1,
             REG_DIST=4, MEM_SIZE=16, B_PATTERN=0.3)

WARMUP_FRACTIONS = (0.0, 0.2, 1.0)

#: Geometry samples keep ``size >= assoc * line_bytes`` so ``num_sets``
#: stays valid for every combination.
_L1I_SIZES = [1024, 4 * 1024, 16 * 1024, 64 * 1024]
_L2_SIZES = [32 * 1024, 256 * 1024, 1024 * 1024]
_ASSOCS = [1, 2, 4, 8]


class TestClosedForm:
    @given(
        num_lines=st.integers(min_value=-2, max_value=5000),
        num_sets=st.integers(min_value=1, max_value=600),
        assoc=st.integers(min_value=1, max_value=16),
        iterations=st.integers(min_value=-1, max_value=100_000),
    )
    @settings(max_examples=300, deadline=None)
    def test_bit_identical_to_per_set_loop(
        self, num_lines, num_sets, assoc, iterations
    ):
        assert cyclic_code_hits_closed(
            num_lines, num_sets, assoc, iterations
        ) == cyclic_code_hits(num_lines, num_sets, assoc, iterations)


class TestCrossEngine:
    @given(
        l1i_size=st.sampled_from(_L1I_SIZES),
        l1i_assoc=st.sampled_from(_ASSOCS),
        l2_size=st.sampled_from(_L2_SIZES),
        l2_assoc=st.sampled_from(_ASSOCS),
        code_bytes=st.integers(min_value=0, max_value=1 << 21),
        iterations=st.integers(min_value=0, max_value=50_000),
    )
    @settings(max_examples=150, deadline=None)
    def test_all_engines_agree(
        self, l1i_size, l1i_assoc, l2_size, l2_assoc, code_bytes, iterations
    ):
        core = replace(
            SMALL_CORE,
            l1i=CacheGeometry(l1i_size, l1i_assoc, latency=2),
            l2=CacheGeometry(l2_size, l2_assoc, latency=12),
        )
        reference = simulate_icache(
            core, code_bytes, iterations, engine="reference"
        )
        vectorized = simulate_icache(
            core, code_bytes, iterations, engine="vectorized"
        )
        [batch_vec] = simulate_icache_batch(
            [core], code_bytes, [iterations], engine="vectorized"
        )
        [batch_ref] = simulate_icache_batch(
            [core], code_bytes, [iterations], engine="reference"
        )
        assert reference == vectorized == batch_vec == batch_ref

    @pytest.mark.parametrize("warmup_fraction", WARMUP_FRACTIONS)
    def test_artifact_window_engines_agree(self, warmup_fraction):
        """Real schedules: every warmup boundary, both cores, all engines."""
        program = generate_test_case(KNOBS, GenerationOptions(seed=5))
        artifact = TraceArtifact.build(program, 8_000)
        cores = [SMALL_CORE, LARGE_CORE]
        iters = [
            artifact.schedule(core, warmup_fraction)[1] for core in cores
        ]
        singles_ref = [
            simulate_icache(core, artifact.code_bytes, m, engine="reference")
            for core, m in zip(cores, iters)
        ]
        singles_vec = [
            simulate_icache(core, artifact.code_bytes, m, engine="vectorized")
            for core, m in zip(cores, iters)
        ]
        batch = simulate_icache_batch(
            cores, artifact.code_bytes, iters, engine="vectorized"
        )
        assert singles_ref == singles_vec == batch


class TestBatchEntryPoint:
    CORES = [
        SMALL_CORE,
        LARGE_CORE,
        SMALL_CORE,  # duplicate key: must dedupe, not recompute
        replace(SMALL_CORE, l1i=replace(SMALL_CORE.l1i, assoc=2)),
        SMALL_CORE,
    ]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="iteration counts"):
            simulate_icache_batch([SMALL_CORE], 4096, [10, 20])

    def test_duplicate_keys_computed_once(self, monkeypatch):
        calls = []

        def counting(num_lines, num_sets, assoc, iterations):
            calls.append((num_sets, assoc, iterations))
            return cyclic_code_hits_closed(
                num_lines, num_sets, assoc, iterations
            )

        monkeypatch.setattr(
            events_mod, "cyclic_code_hits_closed", counting
        )
        # Small footprint: fits in every L2, so each distinct key costs
        # exactly one L1I-side call.
        results = simulate_icache_batch(
            self.CORES, 4096, [500] * len(self.CORES), engine="vectorized"
        )
        distinct = {
            events_mod.icache_event_key(core) for core in self.CORES
        }
        assert len(calls) == len(distinct)
        assert results[0] == results[2] == results[4]

    def test_artifact_batch_accessor_fills_memos_identically(self):
        program = generate_test_case(KNOBS, GenerationOptions(seed=7))
        batched = TraceArtifact.build(program, 8_000)
        single = TraceArtifact.build(program, 8_000)
        iters = [batched.schedule(core, 0.2)[1] for core in self.CORES]
        batch = batched.icache_events_batch(self.CORES, iters)
        singles = [
            single.icache_events(core, m)
            for core, m in zip(self.CORES, iters)
        ]
        assert batch == singles
        assert batched._icache == single._icache

    def test_paths_recorded(self):
        reset_engine_path_counts()
        simulate_icache(SMALL_CORE, 4096, 100, engine="reference")
        simulate_icache(SMALL_CORE, 4096, 100, engine="vectorized")
        simulate_icache_batch([SMALL_CORE], 4096, [100])
        paths = engine_path_counts()
        assert paths["icache.reference"] == 1
        assert paths["icache.vectorized"] == 1
        assert paths["icache.batch"] == 1
