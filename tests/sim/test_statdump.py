"""Unit tests for the Gem5-style stats dump writer/reader."""

import pytest

from repro.codegen import generate_test_case
from repro.sim import SMALL_CORE, Simulator
from repro.sim.statdump import (
    metrics_from_dump,
    parse_stats_dump,
    write_stats_dump,
)


@pytest.fixture(scope="module")
def stats():
    knobs = dict(ADD=4, MUL=1, BEQ=1, LD=2, SD=1, REG_DIST=4,
                 MEM_SIZE=32, MEM_STRIDE=16, B_PATTERN=0.2)
    return Simulator(SMALL_CORE).run(generate_test_case(knobs),
                                     instructions=8_000)


class TestWrite:
    def test_dump_has_begin_end_markers(self, stats):
        text = write_stats_dump(stats)
        assert text.startswith("---------- Begin")
        assert "End Simulation Statistics" in text

    def test_dump_contains_core_counters(self, stats):
        text = write_stats_dump(stats)
        for counter in ("sim_insts", "numCycles", "ipc",
                        "dcache.overall_hit_rate",
                        "branchPred.condIncorrectRate", "dtb.missRate"):
            assert counter in text

    def test_write_to_file(self, stats, tmp_path):
        path = tmp_path / "stats.txt"
        write_stats_dump(stats, path)
        assert path.read_text().startswith("---------- Begin")


class TestRoundTrip:
    def test_parse_recovers_values(self, stats):
        values = parse_stats_dump(write_stats_dump(stats))
        assert values["sim_insts"] == stats.instructions
        assert values["ipc"] == pytest.approx(stats.ipc, abs=1e-6)

    def test_metrics_from_dump_match_stats(self, stats):
        metrics = metrics_from_dump(write_stats_dump(stats))
        original = stats.metrics()
        for key in ("ipc", "l1d_hit_rate", "mispredict_rate", "load"):
            assert metrics[key] == pytest.approx(original[key], abs=1e-6)

    def test_parser_ignores_foreign_lines(self):
        text = (
            "warning: something\n"
            "ipc 1.5 # comment\n"
            "not_a_number abc\n"
        )
        values = parse_stats_dump(text)
        assert values == {"ipc": 1.5}

    def test_missing_counter_raises(self):
        with pytest.raises(KeyError):
            metrics_from_dump("ipc 1.0\n")
