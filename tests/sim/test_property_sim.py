"""Property-based tests: simulator contracts over the whole knob lattice."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.sim import LARGE_CORE, SMALL_CORE, Simulator
from repro.tuning.knobs import (
    B_PATTERN_VALUES,
    INSTRUCTION_FRACTIONS,
    MEM_SIZE_VALUES,
    MEM_STRIDE_VALUES,
    MEM_TEMP1_VALUES,
    MEM_TEMP2_VALUES,
    MIX_KNOB_NAMES,
    REG_DIST_VALUES,
)

# Small footprints keep the adaptive warmup short so each example is fast.
fast_lattice_config = st.fixed_dictionaries(
    {
        **{name: st.sampled_from(INSTRUCTION_FRACTIONS)
           for name in MIX_KNOB_NAMES},
        "REG_DIST": st.sampled_from(REG_DIST_VALUES),
        "MEM_SIZE": st.sampled_from(MEM_SIZE_VALUES[:6]),
        "MEM_STRIDE": st.sampled_from(MEM_STRIDE_VALUES),
        "MEM_TEMP1": st.sampled_from(MEM_TEMP1_VALUES[:6]),
        "MEM_TEMP2": st.sampled_from(MEM_TEMP2_VALUES),
        "B_PATTERN": st.sampled_from(B_PATTERN_VALUES),
    }
)


class TestSimulatorContracts:
    @given(fast_lattice_config, st.sampled_from(["small", "large"]))
    @settings(max_examples=25, deadline=None)
    def test_metrics_always_bounded(self, config, core_name):
        core = SMALL_CORE if core_name == "small" else LARGE_CORE
        program = generate_test_case(config, GenerationOptions(loop_size=80))
        stats = Simulator(core).run(program, instructions=3_000)
        metrics = stats.metrics()
        assert 0.0 < metrics["ipc"] <= core.front_end_width
        for key in ("l1i_hit_rate", "l1d_hit_rate", "l2_hit_rate",
                    "mispredict_rate", "dtlb_miss_rate"):
            assert 0.0 <= metrics[key] <= 1.0, key
        distribution = sum(
            metrics[g] for g in ("integer", "float", "load", "store",
                                 "branch")
        )
        assert 0.99 <= distribution <= 1.01 or distribution == 0.0

    @given(fast_lattice_config)
    @settings(max_examples=15, deadline=None)
    def test_simulation_is_deterministic(self, config):
        program = generate_test_case(config, GenerationOptions(loop_size=80))
        sim = Simulator(SMALL_CORE)
        a = sim.run(program, instructions=3_000)
        b = sim.run(program, instructions=3_000)
        assert a.metrics() == b.metrics()

    @given(fast_lattice_config)
    @settings(max_examples=15, deadline=None)
    def test_cycles_cover_all_breakdown_components(self, config):
        program = generate_test_case(config, GenerationOptions(loop_size=80))
        stats = Simulator(SMALL_CORE).run(program, instructions=3_000)
        # The breakdown is purely numeric (the binding bound travels in
        # its own field), so summing the values needs no filtering.
        total = sum(stats.breakdown.values())
        assert total > 0
        assert abs(total - stats.cycles) / stats.cycles < 1e-6
        assert isinstance(stats.binding_bound, str) and stats.binding_bound

    @given(fast_lattice_config, st.sampled_from(["small", "large"]))
    @settings(max_examples=15, deadline=None)
    def test_event_engines_agree(self, config, core_name):
        core = SMALL_CORE if core_name == "small" else LARGE_CORE
        program = generate_test_case(config, GenerationOptions(loop_size=80))
        reference = Simulator(core).run(
            program, instructions=3_000, engine="reference"
        )
        vectorized = Simulator(core).run(
            program, instructions=3_000, engine="vectorized"
        )
        assert reference == vectorized  # full SimStats equality

    @given(fast_lattice_config)
    @settings(max_examples=10, deadline=None)
    def test_power_is_finite_and_positive(self, config):
        assume(sum(config[k] for k in MIX_KNOB_NAMES) > 0)
        from repro.power import PowerModel

        program = generate_test_case(config, GenerationOptions(loop_size=80))
        stats = Simulator(LARGE_CORE).run(program, instructions=3_000)
        report = PowerModel(LARGE_CORE).estimate(stats)
        assert 0.0 < report.dynamic_w < 20.0
