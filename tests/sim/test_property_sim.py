"""Property-based tests: simulator contracts over the whole knob lattice."""

from dataclasses import replace

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.sim import LARGE_CORE, SMALL_CORE, Simulator
from repro.sim.artifact import TraceArtifactCache
from repro.sim.events import simulate_branches, simulate_memory
from repro.sim.trace import ExpandedTrace
from repro.tuning.knobs import (
    B_PATTERN_VALUES,
    INSTRUCTION_FRACTIONS,
    MEM_SIZE_VALUES,
    MEM_STRIDE_VALUES,
    MEM_TEMP1_VALUES,
    MEM_TEMP2_VALUES,
    MIX_KNOB_NAMES,
    REG_DIST_VALUES,
)

# Small footprints keep the adaptive warmup short so each example is fast.
fast_lattice_config = st.fixed_dictionaries(
    {
        **{name: st.sampled_from(INSTRUCTION_FRACTIONS)
           for name in MIX_KNOB_NAMES},
        "REG_DIST": st.sampled_from(REG_DIST_VALUES),
        "MEM_SIZE": st.sampled_from(MEM_SIZE_VALUES[:6]),
        "MEM_STRIDE": st.sampled_from(MEM_STRIDE_VALUES),
        "MEM_TEMP1": st.sampled_from(MEM_TEMP1_VALUES[:6]),
        "MEM_TEMP2": st.sampled_from(MEM_TEMP2_VALUES),
        "B_PATTERN": st.sampled_from(B_PATTERN_VALUES),
    }
)


def _branch_only_trace(pcs, outcomes) -> ExpandedTrace:
    n = len(pcs)
    return ExpandedTrace(
        iterations=n, loop_size=1, line_bytes=64,
        mem_pcs=np.empty(0, dtype=np.int64),
        mem_lines=np.empty(0, dtype=np.int64),
        mem_is_store=np.empty(0, dtype=bool),
        branch_pcs=np.asarray(pcs, dtype=np.int64),
        branch_outcomes=np.asarray(outcomes, dtype=bool),
        class_counts={},
    )


def _memory_only_trace(lines, pcs, stores) -> ExpandedTrace:
    n = len(lines)
    return ExpandedTrace(
        iterations=n, loop_size=1, line_bytes=64,
        mem_pcs=np.asarray(pcs, dtype=np.int64),
        mem_lines=np.asarray(lines, dtype=np.int64),
        mem_is_store=np.asarray(stores, dtype=bool),
        branch_pcs=np.empty(0, dtype=np.int64),
        branch_outcomes=np.empty(0, dtype=bool),
        class_counts={},
    )


class TestSimulatorContracts:
    @given(fast_lattice_config, st.sampled_from(["small", "large"]))
    @settings(max_examples=25, deadline=None)
    def test_metrics_always_bounded(self, config, core_name):
        core = SMALL_CORE if core_name == "small" else LARGE_CORE
        program = generate_test_case(config, GenerationOptions(loop_size=80))
        stats = Simulator(core).run(program, instructions=3_000)
        metrics = stats.metrics()
        assert 0.0 < metrics["ipc"] <= core.front_end_width
        for key in ("l1i_hit_rate", "l1d_hit_rate", "l2_hit_rate",
                    "mispredict_rate", "dtlb_miss_rate"):
            assert 0.0 <= metrics[key] <= 1.0, key
        distribution = sum(
            metrics[g] for g in ("integer", "float", "load", "store",
                                 "branch")
        )
        assert 0.99 <= distribution <= 1.01 or distribution == 0.0

    @given(fast_lattice_config)
    @settings(max_examples=15, deadline=None)
    def test_simulation_is_deterministic(self, config):
        program = generate_test_case(config, GenerationOptions(loop_size=80))
        sim = Simulator(SMALL_CORE)
        a = sim.run(program, instructions=3_000)
        b = sim.run(program, instructions=3_000)
        assert a.metrics() == b.metrics()

    @given(fast_lattice_config)
    @settings(max_examples=15, deadline=None)
    def test_cycles_cover_all_breakdown_components(self, config):
        program = generate_test_case(config, GenerationOptions(loop_size=80))
        stats = Simulator(SMALL_CORE).run(program, instructions=3_000)
        # The breakdown is purely numeric (the binding bound travels in
        # its own field), so summing the values needs no filtering.
        total = sum(stats.breakdown.values())
        assert total > 0
        assert abs(total - stats.cycles) / stats.cycles < 1e-6
        assert isinstance(stats.binding_bound, str) and stats.binding_bound

    @given(fast_lattice_config, st.sampled_from(["small", "large"]))
    @settings(max_examples=15, deadline=None)
    def test_event_engines_agree(self, config, core_name):
        core = SMALL_CORE if core_name == "small" else LARGE_CORE
        program = generate_test_case(config, GenerationOptions(loop_size=80))
        reference = Simulator(core).run(
            program, instructions=3_000, engine="reference"
        )
        vectorized = Simulator(core).run(
            program, instructions=3_000, engine="vectorized"
        )
        assert reference == vectorized  # full SimStats equality

    @given(fast_lattice_config, st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_run_many_config_batch_bit_identical(self, config, seed):
        program = generate_test_case(
            config, GenerationOptions(loop_size=80, seed=seed % 97)
        )
        cores = [
            SMALL_CORE,
            LARGE_CORE,
            replace(SMALL_CORE, name="small-tournament"),
            replace(LARGE_CORE, name="large-bimodal"),
            SMALL_CORE,
        ]
        batched = Simulator.run_many(
            cores, program, instructions=3_000,
            artifact_cache=TraceArtifactCache(), config_batch=True,
        )
        per_config = Simulator.run_many(
            cores, program, instructions=3_000,
            artifact_cache=TraceArtifactCache(), config_batch=False,
        )
        assert batched == per_config  # full SimStats equality

    @given(st.integers(0, 2 ** 32 - 1), st.integers(1, 900),
           st.sampled_from(["small-tournament", "large-tournament",
                            "small-bimodal"]))
    @settings(max_examples=20, deadline=None)
    def test_tournament_and_bimodal_engines_agree(self, seed, n, name):
        rng = np.random.default_rng(seed)
        base = LARGE_CORE if name.startswith("large") else SMALL_CORE
        core = replace(base, name=name)
        trace = _branch_only_trace(
            rng.integers(0, 1 << 13, n) * 4,
            rng.random(n) < rng.random(),
        )
        warmup = int(rng.integers(0, n + 2))
        assert simulate_branches(
            core, trace, warmup, engine="reference"
        ) == simulate_branches(core, trace, warmup, engine="vectorized")

    @given(st.integers(0, 2 ** 32 - 1), st.integers(1, 700),
           st.sampled_from(["small", "large"]))
    @settings(max_examples=20, deadline=None)
    def test_aperiodic_memory_engines_agree(self, seed, n, core_name):
        rng = np.random.default_rng(seed)
        core = SMALL_CORE if core_name == "small" else LARGE_CORE
        trace = _memory_only_trace(
            rng.integers(0, 6000, n),
            rng.integers(0, 64, n) * 4,
            rng.random(n) < 0.3,
        )
        warmup = int(rng.integers(0, n + 2))
        assert simulate_memory(
            core, trace, warmup, engine="reference"
        ) == simulate_memory(core, trace, warmup, engine="vectorized")

    @given(fast_lattice_config)
    @settings(max_examples=10, deadline=None)
    def test_power_is_finite_and_positive(self, config):
        assume(sum(config[k] for k in MIX_KNOB_NAMES) > 0)
        from repro.power import PowerModel

        program = generate_test_case(config, GenerationOptions(loop_size=80))
        stats = Simulator(LARGE_CORE).run(program, instructions=3_000)
        report = PowerModel(LARGE_CORE).estimate(stats)
        assert 0.0 < report.dynamic_w < 20.0
