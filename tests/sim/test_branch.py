"""Unit tests for the branch predictors."""

import numpy as np
import pytest

from repro.sim.branch import (
    BimodalPredictor,
    GSharePredictor,
    predictor_for_core,
)


class TestBimodal:
    def test_learns_always_taken(self):
        p = BimodalPredictor(entries=64)
        for _ in range(100):
            p.predict_and_update(0x40, True)
        p.reset_stats()
        for _ in range(50):
            p.predict_and_update(0x40, True)
        assert p.mispredict_rate == 0.0

    def test_learns_always_not_taken(self):
        p = BimodalPredictor(entries=64)
        for _ in range(100):
            p.predict_and_update(0x40, False)
        p.reset_stats()
        for _ in range(50):
            p.predict_and_update(0x40, False)
        assert p.mispredict_rate == 0.0

    def test_alternating_pattern_defeats_bimodal(self):
        p = BimodalPredictor(entries=64)
        for n in range(400):
            p.predict_and_update(0x40, n % 2 == 0)
        # Bimodal cannot capture strict alternation; gshare can.
        assert p.mispredict_rate > 0.3

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)

    def test_idle_rate_is_zero(self):
        assert BimodalPredictor().mispredict_rate == 0.0


class TestGShare:
    def test_learns_alternating_pattern(self):
        p = GSharePredictor(entries=1024, history_bits=8)
        for n in range(600):
            p.predict_and_update(0x80, n % 2 == 0)
        p.reset_stats()
        for n in range(200):
            p.predict_and_update(0x80, n % 2 == 0)
        assert p.mispredict_rate < 0.05

    def test_learns_periodic_pattern(self):
        pattern = [True, True, False, True]
        p = GSharePredictor(entries=4096, history_bits=10)
        for n in range(2000):
            p.predict_and_update(0x80, pattern[n % 4])
        p.reset_stats()
        for n in range(400):
            p.predict_and_update(0x80, pattern[n % 4])
        assert p.mispredict_rate < 0.05

    def test_random_outcomes_mispredict_about_half(self):
        rng = np.random.default_rng(0)
        p = GSharePredictor(entries=1024, history_bits=8)
        outcomes = rng.random(4000) < 0.5
        for taken in outcomes:
            p.predict_and_update(0x80, bool(taken))
        assert 0.4 < p.mispredict_rate < 0.6

    def test_more_random_means_more_mispredicts(self):
        rng = np.random.default_rng(1)
        rates = []
        for ratio in (0.0, 0.3, 0.7, 1.0):
            p = GSharePredictor(entries=2048, history_bits=9)
            pattern = [True, True, False, True]
            for n in range(3000):
                if rng.random() < ratio:
                    taken = bool(rng.random() < 0.5)
                else:
                    taken = pattern[n % 4]
                p.predict_and_update(0x80, taken)
            rates.append(p.mispredict_rate)
        assert all(a <= b + 0.03 for a, b in zip(rates, rates[1:]))


class TestFactory:
    def test_core_sizing(self):
        small = predictor_for_core("small")
        large = predictor_for_core("large")
        assert isinstance(small, GSharePredictor)
        assert large.table.entries > small.table.entries


class TestTournament:
    def test_beats_bimodal_on_alternating(self):
        from repro.sim.branch import TournamentPredictor

        tournament = TournamentPredictor(entries=1024, history_bits=8)
        bimodal = BimodalPredictor(entries=1024)
        for n in range(1500):
            tournament.predict_and_update(0x80, n % 2 == 0)
            bimodal.predict_and_update(0x80, n % 2 == 0)
        tournament.reset_stats()
        bimodal.reset_stats()
        for n in range(400):
            tournament.predict_and_update(0x80, n % 2 == 0)
            bimodal.predict_and_update(0x80, n % 2 == 0)
        assert tournament.mispredict_rate < bimodal.mispredict_rate

    def test_matches_best_component_on_biased_branches(self):
        from repro.sim.branch import TournamentPredictor

        rng = np.random.default_rng(0)
        predictor = TournamentPredictor(entries=1024, history_bits=8)
        # Strongly biased branch: bimodal is near-perfect; the chooser
        # must not be worse than ~the bias noise floor.
        for _ in range(3000):
            predictor.predict_and_update(0x40, bool(rng.random() < 0.95))
        assert predictor.mispredict_rate < 0.15

    def test_idle_rate_zero(self):
        from repro.sim.branch import TournamentPredictor

        assert TournamentPredictor().mispredict_rate == 0.0
