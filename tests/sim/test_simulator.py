"""Integration-level tests of the full simulator on generated programs."""

import pytest

from repro.codegen import generate_test_case
from repro.codegen.wrapper import GenerationOptions
from repro.sim import LARGE_CORE, SMALL_CORE, Simulator
from repro.sim.stats import METRIC_KEYS


def _knobs(**overrides):
    base = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1,
                LD=3, LW=1, SD=1, SW=1,
                REG_DIST=4, MEM_SIZE=32, MEM_STRIDE=16,
                MEM_TEMP1=4, MEM_TEMP2=2, B_PATTERN=0.2)
    base.update(overrides)
    return base


def _run(core=SMALL_CORE, instructions=12_000, **overrides):
    program = generate_test_case(_knobs(**overrides))
    return Simulator(core).run(program, instructions=instructions)


class TestBasicContract:
    def test_metrics_complete(self):
        metrics = _run().metrics()
        for key in METRIC_KEYS:
            assert key in metrics

    def test_rates_within_bounds(self):
        stats = _run()
        for rate in (stats.l1i_hit_rate, stats.l1d_hit_rate,
                     stats.l2_hit_rate, stats.mispredict_rate):
            assert 0.0 <= rate <= 1.0

    def test_ipc_bounded_by_width(self):
        stats = _run(core=LARGE_CORE)
        assert 0.0 < stats.ipc <= LARGE_CORE.front_end_width

    def test_deterministic(self):
        a = _run()
        b = _run()
        assert a.ipc == b.ipc
        assert a.l1d_hit_rate == b.l1d_hit_rate

    def test_summary_mentions_core(self):
        assert "[small]" in _run().summary()

    def test_instruction_budget_respected(self):
        stats = _run(instructions=30_000)
        # Measured window excludes warmup but scales with the budget.
        assert 15_000 < stats.instructions <= 30_000


class TestKnobSensitivities:
    """The simulator must respond to knobs the way real cores do —
    these monotone trends are what gradient tuning exploits."""

    def test_footprint_degrades_l1d_hit_rate(self):
        hits = [
            _run(MEM_SIZE=ms, MEM_TEMP1=1, MEM_TEMP2=1).l1d_hit_rate
            for ms in (4, 64, 512)
        ]
        assert hits[0] > hits[1] >= hits[2]

    def test_footprint_degrades_ipc(self):
        small = _run(MEM_SIZE=4).ipc
        large = _run(MEM_SIZE=1024, MEM_TEMP1=1, MEM_TEMP2=1).ipc
        assert small > large

    def test_branch_randomness_raises_mispredicts(self):
        rates = [
            _run(B_PATTERN=bp).mispredict_rate for bp in (0.0, 0.5, 1.0)
        ]
        assert rates[0] < rates[1] <= rates[2] + 0.02

    def test_dependency_distance_raises_ipc(self):
        assert _run(REG_DIST=1).ipc < _run(REG_DIST=8).ipc

    def test_temporal_reuse_raises_hit_rate(self):
        stream = _run(MEM_SIZE=512, MEM_TEMP1=1, MEM_TEMP2=1).l1d_hit_rate
        reuse = _run(MEM_SIZE=512, MEM_TEMP1=8, MEM_TEMP2=8).l1d_hit_rate
        assert reuse > stream

    def test_small_stride_exploits_spatial_locality(self):
        dense = _run(MEM_SIZE=512, MEM_STRIDE=8, MEM_TEMP1=1,
                     MEM_TEMP2=1).l1d_hit_rate
        sparse = _run(MEM_SIZE=512, MEM_STRIDE=64, MEM_TEMP1=1,
                      MEM_TEMP2=1).l1d_hit_rate
        assert dense > sparse

    def test_prefetcher_helps_streaming_on_large_core(self):
        # Line-aligned streaming (stride 64) so the per-PC line stride is
        # integral and the reference-prediction table can confirm it.
        knobs = dict(MEM_SIZE=2048, MEM_STRIDE=64, MEM_TEMP1=1, MEM_TEMP2=1)
        small = _run(core=SMALL_CORE, **knobs)
        large = _run(core=LARGE_CORE, **knobs)
        assert large.l2_hit_rate > small.l2_hit_rate
        assert large.extra["prefetch_hits"] > 0


class TestCrossCoreBehaviour:
    def test_large_core_wins_on_compute(self):
        knobs = dict(MUL=0, FADDD=0, FMULD=0, BEQ=0, BNE=0, LD=0, LW=0,
                     SD=0, SW=0, ADD=10, REG_DIST=10, B_PATTERN=0.0)
        small = _run(core=SMALL_CORE, **knobs)
        large = _run(core=LARGE_CORE, **knobs)
        assert large.ipc > small.ipc * 1.3

    def test_breakdown_components_nonnegative(self):
        stats = _run()
        for key, value in stats.breakdown.items():
            assert value >= 0.0, key
        assert stats.binding_bound


class TestAdaptiveWindow:
    def test_midsize_footprint_extends_iterations(self):
        program = generate_test_case(
            _knobs(MEM_SIZE=256, MEM_TEMP1=1, MEM_TEMP2=1)
        )
        stats = Simulator(SMALL_CORE).run(program, instructions=5_000)
        # 5k instructions is ~10 iterations; covering 256KB needs far more.
        assert stats.extra["iterations"] > 20

    def test_huge_footprint_does_not_explode_budget(self):
        program = generate_test_case(
            _knobs(MEM_SIZE=2048, MEM_TEMP1=1, MEM_TEMP2=1)
        )
        stats = Simulator(SMALL_CORE).run(program, instructions=5_000)
        assert stats.extra["warmup_iterations"] <= Simulator.MAX_WARMUP_ITERATIONS
        assert stats.extra["iterations"] <= Simulator.MAX_MEASURE_ITERATIONS


class TestCodeFootprint:
    def test_big_loop_pressures_icache_on_small_core(self):
        big = generate_test_case(
            _knobs(), GenerationOptions(loop_size=5000)
        )
        small_loop = generate_test_case(_knobs())
        sim = Simulator(SMALL_CORE)
        assert (
            sim.run(big, instructions=12_000).l1i_hit_rate
            < sim.run(small_loop, instructions=12_000).l1i_hit_rate
        )
