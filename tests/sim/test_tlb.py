"""Unit tests for the data TLB."""

import pytest

from repro.sim.tlb import PAGE_BYTES, DataTLB, tlb_for_core


class TestDataTLB:
    def test_cold_miss_then_hit(self):
        tlb = DataTLB(entries=4)
        assert tlb.access(0) is False
        assert tlb.access(64) is True  # same page
        assert tlb.miss_rate == 0.5

    def test_distinct_pages_miss(self):
        tlb = DataTLB(entries=8)
        assert tlb.access(0) is False
        assert tlb.access(PAGE_BYTES) is False
        assert tlb.access(2 * PAGE_BYTES) is False

    def test_lru_eviction(self):
        tlb = DataTLB(entries=2)
        tlb.access(0)                  # page 0
        tlb.access(PAGE_BYTES)         # page 1
        tlb.access(0)                  # page 0 now MRU
        tlb.access(2 * PAGE_BYTES)     # evicts page 1
        assert tlb.access(0) is True
        assert tlb.access(PAGE_BYTES) is False

    def test_capacity_bound(self):
        tlb = DataTLB(entries=16)
        for page in range(100):
            tlb.access(page * PAGE_BYTES)
        assert len(tlb._pages) <= 16

    def test_reset_stats_keeps_translations(self):
        tlb = DataTLB(entries=4)
        tlb.access(0)
        tlb.reset_stats()
        assert tlb.misses == 0
        assert tlb.access(0) is True

    def test_idle_miss_rate_zero(self):
        assert DataTLB().miss_rate == 0.0

    def test_bad_entries_rejected(self):
        with pytest.raises(ValueError):
            DataTLB(entries=0)

    def test_core_sizing(self):
        assert tlb_for_core("large").entries > tlb_for_core("small").entries


class TestSimulatorIntegration:
    def _run(self, mem_size_kb, core=None):
        from repro.codegen import generate_test_case
        from repro.sim import SMALL_CORE, Simulator

        knobs = dict(ADD=4, BEQ=1, LD=3, SD=1, REG_DIST=6,
                     MEM_SIZE=mem_size_kb, MEM_STRIDE=64,
                     MEM_TEMP1=1, MEM_TEMP2=1, B_PATTERN=0.1)
        program = generate_test_case(knobs)
        return Simulator(core or SMALL_CORE).run(program, instructions=10_000)

    def test_metrics_include_dtlb(self):
        stats = self._run(16)
        assert "dtlb_miss_rate" in stats.metrics()
        assert 0.0 <= stats.dtlb_miss_rate <= 1.0

    def test_small_footprint_fits_tlb(self):
        # 16 KB = 4 pages << 48 entries: no steady-state TLB misses.
        assert self._run(16).dtlb_miss_rate < 0.02

    def test_huge_footprint_misses_tlb(self):
        # 2 MB = 512 pages >> 48 entries: the stream walks pages.
        small = self._run(16).dtlb_miss_rate
        huge = self._run(2048).dtlb_miss_rate
        assert huge > small

    def test_tlb_stall_in_breakdown(self):
        stats = self._run(2048)
        assert stats.breakdown["dtlb"] > 0
